"""E10 (extension) — knob assignment vs prior-work leakage techniques.

The paper positions total-leakage-aware Vth/Tox assignment against a
literature of subthreshold-only techniques ([1-7]).  This bench runs the
head-to-head the paper implies: the same 16 KB cache under

* the Section 4 Scheme II optimum (knobs only, no runtime mechanism);
* drowsy retention ([6],[7]) on a mid-grid design;
* gated-Vdd decay ([2]) on a mid-grid design;
* reverse body bias ([1],[5]) on a mid-grid design;

reporting effective leakage plus each technique's architectural costs
(wake latency, decay misses, state loss).  Headline: RBB — the strongest
pre-2005 knob — is floored by gate tunnelling at thin oxide, which is
precisely the paper's case for treating Tox as a first-class knob.
"""

from repro import units
from repro.cache.assignment import Assignment, knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.experiments.report import format_table
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import minimize_leakage
from repro.techniques import DrowsyCache, GatedVddCache, ReverseBodyBias
from repro.techniques.base import NoTechnique


def test_bench_e8_techniques(benchmark):
    def compare():
        model = CacheModel(
            CacheConfig(
                size_bytes=16 * 1024, block_bytes=32, associativity=2,
                name="L1",
            )
        )
        mid = Assignment.uniform(knobs(0.3, 12))
        optimised = minimize_leakage(
            model, Scheme.CELL_VS_PERIPHERY, units.ps(1300)
        ).assignment
        rows = []
        results = {}
        cases = [
            ("mid-grid, no technique", NoTechnique(), mid),
            ("Scheme II optimum (this paper)", NoTechnique(), optimised),
            ("drowsy [6,7]", DrowsyCache(), mid),
            ("gated-Vdd [2]", GatedVddCache(), mid),
            ("RBB [1,5]", ReverseBodyBias(), mid),
            ("RBB at thin oxide",
             ReverseBodyBias(), Assignment.uniform(knobs(0.3, 10))),
        ]
        for label, technique, assignment in cases:
            result = technique.evaluate(model, assignment)
            results[label] = result
            rows.append(
                [
                    label,
                    f"{units.to_mw(result.leakage_power):.4f}",
                    f"{units.to_ps(result.access_time_penalty):.0f}",
                    f"{result.extra_miss_rate:.3f}",
                    "yes" if result.retains_state else "NO",
                ]
            )
        table = format_table(
            ["configuration", "leakage (mW)", "penalty (ps)",
             "extra misses", "state"],
            rows,
        )
        return table, results

    table, results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== E10: knob assignment vs leakage-reduction techniques ===\n")
    print(table)

    baseline = results["mid-grid, no technique"].leakage_power
    optimised = results["Scheme II optimum (this paper)"].leakage_power
    # Knob optimisation alone must be competitive (big win over mid-grid).
    assert optimised < 0.5 * baseline
    # RBB barely helps at thin oxide (the gate floor).
    rbb_thin = results["RBB at thin oxide"].leakage_power
    thin_base = CacheModel(
        CacheConfig(size_bytes=16 * 1024, block_bytes=32, associativity=2)
    ).leakage_power(Assignment.uniform(knobs(0.3, 10)))
    assert rbb_thin > 0.7 * thin_base
    # The state-losing technique is flagged as such.
    assert not results["gated-Vdd [2]"].retains_state
