"""Substrate micro-benchmarks: the costs behind every experiment.

These are conventional timing benchmarks (many rounds) for the three hot
paths: whole-cache evaluation, trace simulation, and form fitting.
"""

import itertools

from repro.archsim.hierarchy import TwoLevelHierarchy
from repro.archsim.workloads import SPEC2000_LIKE, synthetic_trace
from repro.cache.assignment import knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig, l1_config, l2_config
from repro.models.analytical import fit_cache_model


def test_bench_cache_evaluation_cold(benchmark):
    """One cold whole-cache evaluation (all four components)."""
    counter = itertools.count()
    # Distinct Vth values *inside the design box* (a long benchmark run
    # must never walk the threshold past the supply).
    vths = [0.2 + 0.3 * ((i * 7919) % 10_000) / 10_000 for i in range(10_000)]

    def evaluate():
        # A fresh Vth each round defeats the component memoisation so the
        # bench measures real model work.
        model = evaluate.model
        return model.uniform(knobs(vths[next(counter) % len(vths)], 12))

    evaluate.model = CacheModel(
        CacheConfig(size_bytes=16 * 1024, block_bytes=32, associativity=2)
    )
    result = benchmark(evaluate)
    assert result.access_time > 0


def test_bench_cache_evaluation_memoized(benchmark):
    """Repeated evaluation at a seen point (the optimiser's common case)."""
    model = CacheModel(
        CacheConfig(size_bytes=16 * 1024, block_bytes=32, associativity=2)
    )
    point = knobs(0.3, 12)
    model.uniform(point)  # warm the memo

    result = benchmark(lambda: model.uniform(point))
    assert result.leakage_power > 0


def test_bench_simulator_throughput(benchmark):
    """Trace-driven simulation of 20k references through L1+L2."""

    def simulate():
        hierarchy = TwoLevelHierarchy(l1_config(16), l2_config(512))
        return hierarchy.run(
            synthetic_trace(SPEC2000_LIKE, 20_000, seed=1)
        )

    result = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert result.l1.accesses == 20_000


def test_bench_model_fitting(benchmark):
    """Full Section 3 characterisation + fit of a 16 KB cache."""
    model = CacheModel(
        CacheConfig(size_bytes=16 * 1024, block_bytes=32, associativity=2)
    )

    fitted = benchmark.pedantic(
        lambda: fit_cache_model(model), rounds=2, iterations=1
    )
    assert fitted.worst_fit_r_squared() > 0.97
