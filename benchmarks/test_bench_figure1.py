"""E2 — Figure 1 at full grid resolution.

Regenerates the four leakage-vs-access-time curves of the paper's
Figure 1 (16 KB cache; Tox fixed at 10/14 Å, Vth fixed at 0.2/0.4 V) and
checks the three findings the paper reads off the figure.
"""

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.figure1 import run_figure1


def test_bench_e2_figure1(benchmark):
    result = run_and_report(benchmark, run_figure1, rounds=3)
    assert_no_unexpected(result)
    # Axis ranges should land on the paper's Figure 1 axes:
    # access times within ~500-2600 ps, leakage up to tens of mW.
    for xs, ys in result.series.values():
        assert min(xs) > 400 and max(xs) < 2600
        assert max(ys) < 100
