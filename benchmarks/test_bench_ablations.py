"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation switches one modelling ingredient off and measures what the
paper's conclusions would have looked like without it — quantifying why
the ingredient is in the model.
"""

import itertools

import pytest

from repro import units
from repro.cache.assignment import Assignment, COMPONENT_NAMES, knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import (
    component_tables,
    minimize_leakage,
)
from repro.optimize.space import DesignSpace, default_space
from repro.technology.bptm import bptm65
from repro.technology.scaling import ToxScalingRule


def sixteen_k():
    return CacheConfig(
        size_bytes=16 * 1024, block_bytes=32, associativity=2, name="L1"
    )


class TestGateLeakageAblation:
    """Without gate tunnelling (the pre-2005 literature mode), thick
    oxide loses its leakage reward and the optimiser's Tox choice
    collapses — the paper's core 'total leakage' motivation."""

    def test_bench_optimal_tox_shifts(self, benchmark):
        def ablation():
            space = default_space()
            chosen = {}
            for gate_enabled in (True, False):
                model = CacheModel(sixteen_k(), gate_enabled=gate_enabled)
                result = minimize_leakage(
                    model, Scheme.UNIFORM, units.ps(1400), space=space
                )
                chosen[gate_enabled] = result.assignment.array
            return chosen

        chosen = benchmark.pedantic(ablation, rounds=1, iterations=1)
        with_gate, without_gate = chosen[True], chosen[False]
        print(
            f"\nE-abl gate: optimal uniform knobs with gate leakage "
            f"{with_gate.label()}, without {without_gate.label()}"
        )
        # With gate leakage modelled, the optimiser pays delay for thick
        # oxide; without it there is little reason to.
        assert with_gate.tox >= without_gate.tox

    def test_bench_leakage_underestimate(self, benchmark):
        """Ignoring gate leakage underestimates total leakage massively
        at the thin-oxide/high-Vth corner."""

        def ratio():
            full = CacheModel(sixteen_k())
            sub_only = CacheModel(sixteen_k(), gate_enabled=False)
            point = knobs(0.5, 10)
            return (
                full.uniform(point).leakage_power
                / sub_only.uniform(point).leakage_power
            )

        value = benchmark.pedantic(ratio, rounds=1, iterations=1)
        print(f"\nE-abl gate: thin-oxide corner underestimated {value:.0f}x")
        assert value > 10


class TestStackEffectAblation:
    def test_bench_decoder_leakage_delta(self, benchmark):
        def delta():
            with_stack = CacheModel(sixteen_k(), stack_enabled=True)
            without = CacheModel(sixteen_k(), stack_enabled=False)
            point = knobs(0.25, 12)
            a = with_stack.components["decoder"].leakage_power(
                point.vth, point.tox
            )
            b = without.components["decoder"].leakage_power(
                point.vth, point.tox
            )
            return (b - a) / a

        value = benchmark.pedantic(delta, rounds=1, iterations=1)
        print(f"\nE-abl stack: decoder leakage +{100 * value:.1f}% without")
        assert value > 0


class TestToxCouplingAblation:
    """Section 2's Tox -> channel-length/cell-area coupling: without it,
    thick oxide is much cheaper in delay, overstating Tox as a knob."""

    def test_bench_delay_ratio_vs_exponent(self, benchmark):
        def ratios():
            out = {}
            for exponent in (0.0, 0.6, 1.0):
                technology = bptm65()
                rule = ToxScalingRule(
                    technology=technology, length_exponent=exponent
                )
                model = CacheModel(
                    sixteen_k(), technology=technology, rule=rule
                )
                thin = model.uniform(knobs(0.3, 10)).access_time
                thick = model.uniform(knobs(0.3, 14)).access_time
                out[exponent] = thick / thin
            return out

        values = benchmark.pedantic(ratios, rounds=1, iterations=1)
        print(
            "\nE-abl coupling: Tox 10->14 A delay ratio by exponent: "
            + ", ".join(f"{k}: {v:.2f}x" for k, v in values.items())
        )
        assert values[0.0] < values[0.6] < values[1.0]


class TestGridResolutionAblation:
    """The paper discretises 'with small step size'; quantify what a
    coarse grid costs the optimum."""

    def test_bench_step_size_sensitivity(self, benchmark):
        def optima():
            model = CacheModel(sixteen_k())
            out = {}
            for label, space in (
                ("fine", default_space()),
                ("coarse", default_space(vth_step=0.1, tox_step=2.0)),
            ):
                result = minimize_leakage(
                    model,
                    Scheme.CELL_VS_PERIPHERY,
                    units.ps(1300),
                    space=space,
                )
                out[label] = result.leakage_power
            return out

        values = benchmark.pedantic(optima, rounds=1, iterations=1)
        penalty = values["coarse"] / values["fine"] - 1.0
        print(f"\nE-abl grid: coarse grid costs +{100 * penalty:.1f}% leakage")
        assert values["coarse"] >= values["fine"] * (1 - 1e-9)
        assert penalty < 1.0  # coarse is worse but not catastrophic


class TestPruningExactness:
    """Scheme I's Pareto pruning must be exact, not heuristic — verified
    against explicit enumeration on a grid small enough to brute-force."""

    def test_bench_pruned_equals_exhaustive(self, benchmark):
        space = DesignSpace(
            vth_values=(0.2, 0.35, 0.5),
            tox_values_angstrom=(10.0, 12.0, 14.0),
        )
        model = CacheModel(
            CacheConfig(size_bytes=4 * 1024, block_bytes=32, associativity=2)
        )
        constraint = units.ps(1500)

        def pruned():
            return minimize_leakage(
                model, Scheme.PER_COMPONENT, constraint, space=space
            ).leakage_power

        fast_value = benchmark.pedantic(pruned, rounds=1, iterations=1)

        best = None
        for combo in itertools.product(space.point_list(), repeat=4):
            assignment = Assignment.from_mapping(
                dict(zip(COMPONENT_NAMES, combo))
            )
            evaluation = model.evaluate(assignment)
            if evaluation.access_time <= constraint:
                if best is None or evaluation.leakage_power < best:
                    best = evaluation.leakage_power
        print(
            f"\nE-abl pruning: pruned={units.to_mw(fast_value):.4f} mW, "
            f"exhaustive={units.to_mw(best):.4f} mW"
        )
        assert fast_value == pytest.approx(best)
