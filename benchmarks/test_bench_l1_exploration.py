"""E5 — Section 5 L1-size exploration.

Regenerates the L1 experiment: local miss rates are flat from 4 K to
64 K, so the smallest L1 minimises total leakage.
"""

import pytest

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.l1_exploration import run_l1_exploration


@pytest.mark.parametrize("workload", ["spec2000", "specweb"])
def test_bench_e5_l1_exploration(benchmark, workload):
    result = run_and_report(
        benchmark, lambda: run_l1_exploration(workload=workload)
    )
    assert_no_unexpected(result)
    xs, ys = result.series["total leakage vs L1 size"]
    assert ys[0] == min(ys)
