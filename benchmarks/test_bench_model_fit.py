"""E7 — Section 3 model-fit quality at full grid resolution.

Regenerates the implicit validity table behind Section 3: the double-
exponential leakage form and the linear/weak-exponential delay form must
explain every cache component over the whole design grid.
"""

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.model_fit import run_model_fit


def test_bench_e7_model_fit(benchmark):
    result = run_and_report(benchmark, run_model_fit, rounds=2)
    assert_no_unexpected(result)
    # Every component's leakage fit explains >= 98 % of variance.
    for row in result.rows:
        assert float(row[1]) >= 0.98
