"""E11 (extension) — process-corner robustness of the optimised design.

The paper signs off at the typical corner.  This bench re-evaluates the
Section 4 Scheme II optimum across the standard five corners: leakage is
notoriously corner-sensitive (fast-hot silicon leaks an order of
magnitude more), so a leakage budget set at tt can be blown at ff/125 C —
the case for corner-aware knob assignment as future work.
"""

from repro import units
from repro.cache.assignment import Assignment
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.experiments.report import format_table
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import minimize_leakage
from repro.technology.bptm import bptm65
from repro.technology.corners import STANDARD_CORNERS, CornerName, apply_corner
from repro.technology.scaling import ToxScalingRule


def test_bench_e9_corners(benchmark):
    def sweep():
        nominal = bptm65()
        model = CacheModel(
            CacheConfig(
                size_bytes=16 * 1024, block_bytes=32, associativity=2,
                name="L1",
            ),
            technology=nominal,
        )
        optimum = minimize_leakage(
            model, Scheme.CELL_VS_PERIPHERY, units.ps(1300)
        )
        rows = []
        leakage_by_corner = {}
        for corner_name, corner in STANDARD_CORNERS.items():
            technology = apply_corner(nominal, corner)
            corner_model = CacheModel(
                model.config,
                technology=technology,
                rule=ToxScalingRule(technology=technology),
                organization=model.organization,
            )
            evaluation = corner_model.evaluate(optimum.assignment)
            leakage_by_corner[corner_name] = evaluation.leakage_power
            rows.append(
                [
                    corner.name,
                    f"{corner.temperature:.0f}",
                    f"{units.to_ps(evaluation.access_time):.0f}",
                    f"{units.to_mw(evaluation.leakage_power):.4f}",
                ]
            )
        table = format_table(
            ["corner", "T (K)", "access (ps)", "leakage (mW)"], rows
        )
        return table, leakage_by_corner

    table, leakage = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== E11: Scheme II optimum across process corners ===\n")
    print(table)

    typical = leakage[CornerName.TYPICAL]
    fast_hot = leakage[CornerName.FAST_HOT]
    slow_cold = leakage[CornerName.SLOW_COLD]
    # Fast-hot silicon blows the typical budget — but only ~2x, because
    # the optimum is *gate-tunnelling floored* and tunnelling is nearly
    # temperature-insensitive.  A subthreshold-dominated design is far
    # more corner-sensitive (checked below): total-leakage optimisation
    # buys corner robustness for free.
    assert 1.5 * typical < fast_hot < 20 * typical
    assert slow_cold < typical

    nominal = bptm65()
    from repro.cache.assignment import knobs

    low_vth = Assignment.uniform(knobs(0.2, 14))  # subthreshold-dominated
    hot_technology = apply_corner(
        nominal, STANDARD_CORNERS[CornerName.FAST_HOT]
    )
    config = CacheConfig(
        size_bytes=16 * 1024, block_bytes=32, associativity=2, name="L1"
    )
    base_model = CacheModel(config, technology=nominal)
    hot_model = CacheModel(
        config,
        technology=hot_technology,
        rule=ToxScalingRule(technology=hot_technology),
        organization=base_model.organization,
    )
    sub_ratio = hot_model.leakage_power(low_vth) / base_model.leakage_power(
        low_vth
    )
    optimum_ratio = fast_hot / typical
    print(
        f"fast-hot blow-up: optimised (gate-floored) {optimum_ratio:.1f}x "
        f"vs subthreshold-dominated {sub_ratio:.1f}x"
    )
    assert sub_ratio > optimum_ratio
