"""E1 — Section 4 scheme comparison at full grid resolution.

Regenerates the paper's in-text result: leakage of the 16 KB cache under
Schemes I / II / III across a sweep of delay constraints, on the full
25 mV / 0.5 Å design grid.
"""

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.scheme_comparison import run_scheme_comparison


def test_bench_e1_scheme_comparison(benchmark):
    result = run_and_report(benchmark, run_scheme_comparison)
    assert_no_unexpected(result)
    assert len(result.rows) == 6
