"""Extension benches: variability impact and the area price of thick Tox.

* **Variability** — within-die Vth spread makes the cell *population*
  leak more than the nominal cell (lognormal mean).  The bench quantifies
  the understatement and confirms the paper's orderings are
  variability-invariant (the multiplier cancels in any same-sigma
  comparison).
* **Area** — Section 2 notes that Tox scaling grows the cell in both
  dimensions.  The bench prices the paper's "set Tox conservatively
  thick" advice in silicon area.
"""

from repro import units
from repro.cache.assignment import knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.devices.variability import (
    leakage_variability_multiplier,
    vth_sigma,
)
from repro.experiments.report import format_table


def sixteen_k():
    return CacheConfig(
        size_bytes=16 * 1024, block_bytes=32, associativity=2, name="L1"
    )


def test_bench_variability_understatement(benchmark):
    def quantify():
        model = CacheModel(sixteen_k())
        technology = model.technology
        sigma = vth_sigma(
            technology, 1.3 * technology.wmin, technology.lgate_drawn
        )
        multiplier = leakage_variability_multiplier(technology, sigma)
        nominal_sub = model.components["array"].cell.standby_leakage_current(
            0.35, technology.tox_ref, gate_enabled=False
        )
        population_sub = nominal_sub * multiplier
        return sigma, multiplier, nominal_sub, population_sub

    sigma, multiplier, nominal, population = benchmark.pedantic(
        quantify, rounds=1, iterations=1
    )
    print(
        f"\nE-abl variability: sigma_Vth={1000 * sigma:.0f} mV, population "
        f"subthreshold leakage = {multiplier:.2f}x nominal"
    )
    # A 65 nm access-device population should leak tens of percent more.
    assert 1.1 < multiplier < 5.0
    assert population > nominal


def test_bench_area_cost_of_thick_tox(benchmark):
    def price():
        model = CacheModel(sixteen_k())
        rows = []
        base_area = model.area(units.angstrom(10))
        for tox_a in (10, 11, 12, 13, 14):
            area = model.area(units.angstrom(tox_a))
            leakage = model.uniform(knobs(0.35, tox_a)).leakage_power
            rows.append(
                [
                    f"{tox_a}",
                    f"{area * 1e6:.4f}",
                    f"{100 * (area / base_area - 1):.1f}%",
                    f"{units.to_mw(leakage):.3f}",
                ]
            )
        return rows, base_area, model.area(units.angstrom(14))

    rows, thin_area, thick_area = benchmark.pedantic(
        price, rounds=1, iterations=1
    )
    print("\n=== E-abl: the area price of conservative Tox ===\n")
    print(
        format_table(
            ["Tox (A)", "array area (mm^2)", "vs 10 A", "leakage (mW)"],
            rows,
        )
    )
    growth = thick_area / thin_area
    # Sub-linear coupling (exponent 0.6): 14/10 -> (1.4^0.6)^2 = ~1.5x.
    assert 1.2 < growth < 2.2
