"""E6 — Figure 2: the (Tox, Vth) tuple problem.

Regenerates the five total-energy-vs-AMAT Pareto curves of Figure 2 and
checks the paper's orderings.  Uses the trimmed (5 Vth x 3 Tox) grid by
default — the full coarse-grid enumeration is exact but takes minutes;
set ``REPRO_FULL_FIGURE2=1`` in the environment to run it.
"""

import os

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.figure2 import run_figure2


def test_bench_e6_figure2(benchmark):
    full = os.environ.get("REPRO_FULL_FIGURE2") == "1"
    result = run_and_report(benchmark, lambda: run_figure2(fast=not full))
    assert_no_unexpected(result)
    assert len(result.series) == 5
    # Every curve overlaps the paper's 1300-2100 ps AMAT window.
    for xs, _ in result.series.values():
        assert xs[0] < 2100 and xs[-1] > 1300
