"""Extension bench: joint capacity + knob optimisation.

Closes the loop Section 5 stops short of: search (L1 size) x (L2 size) x
(Scheme II knobs for both caches) jointly under an AMAT budget, for both
objectives.  The Section 5 conclusions must *emerge* from the joint
search rather than being imposed: a small L1, a mid-sized L2, and
conservative arrays with aggressive peripheries.
"""

from repro import units
from repro.archsim.missmodel import blended_miss_model
from repro.experiments.report import format_table
from repro.optimize.joint import (
    OBJECTIVE_ENERGY,
    OBJECTIVE_LEAKAGE,
    optimize_memory_system,
)


def test_bench_joint_optimization(benchmark):
    def solve():
        miss_model = blended_miss_model()
        designs = {}
        for objective in (OBJECTIVE_LEAKAGE, OBJECTIVE_ENERGY):
            designs[objective] = optimize_memory_system(
                miss_model,
                amat_budget=units.ps(2800),
                l1_sizes_kb=(4, 8, 16, 32),
                l2_sizes_kb=(256, 512, 1024, 2048),
                objective=objective,
            )
        return designs

    designs = benchmark.pedantic(solve, rounds=1, iterations=1)
    rows = []
    for objective, design in designs.items():
        rows.append(
            [
                objective,
                f"{design.l1_size_kb}K",
                f"{design.l2_size_kb}K",
                f"{units.to_ps(design.amat):.0f}",
                f"{units.to_mw(design.total_leakage):.3f}",
                f"{units.to_pj(design.total_energy):.1f}",
            ]
        )
    print("\n=== joint (L1, L2, knobs) optimisation, blended workload ===\n")
    print(
        format_table(
            ["objective", "L1", "L2", "AMAT (ps)", "leakage (mW)",
             "energy (pJ/ref)"],
            rows,
        )
    )
    for design in designs.values():
        print(f"{design.describe()}")
        print("  L1:"); print(design.l1_assignment.describe())
        print("  L2:"); print(design.l2_assignment.describe())

    leakage_design = designs[OBJECTIVE_LEAKAGE]
    # Section 5's conclusions emerge: small L1 wins.
    assert leakage_design.l1_size_kb <= 8
    # Arrays conservative relative to periphery in both caches.
    for assignment in (
        leakage_design.l1_assignment,
        leakage_design.l2_assignment,
    ):
        assert assignment.array.vth >= assignment["decoder"].vth
    # Energy objective never loses on energy.
    assert (
        designs[OBJECTIVE_ENERGY].total_energy
        <= leakage_design.total_energy * (1 + 1e-9)
    )
