"""E4 — Section 5 L2 exploration with split core/periphery pairs.

Regenerates the second Section 5 experiment: once the L2 cell array and
its periphery get independent (Vth, Tox) pairs, every capacity parks its
array at the conservative corner, speed is bought back in the periphery,
and the smallest L2 wins — the abstract's headline result.
"""

import pytest

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.l2_exploration import run_l2_exploration


@pytest.mark.parametrize("workload", ["spec2000", "tpcc"])
def test_bench_e4_l2_split(benchmark, workload):
    result = run_and_report(
        benchmark, lambda: run_l2_exploration(workload=workload, split=True)
    )
    assert_no_unexpected(result)
    xs, ys = result.series["L2 leakage vs size"]
    # Smallest feasible capacity wins, and leakage rises with size.
    assert ys[0] == min(ys)
    assert ys == sorted(ys)
