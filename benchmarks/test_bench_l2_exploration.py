"""E3 — Section 5 L2-size exploration (single pair per L2).

Regenerates the first Section 5 experiment for all three workload
stand-ins: at a tight iso-AMAT budget, bigger L2s buy conservative knobs
with their miss-rate headroom, but the largest capacities lose to their
own cell count (interior optimum).
"""

import pytest

from benchmarks.conftest import assert_no_unexpected, run_and_report
from repro.experiments.l2_exploration import run_l2_exploration


@pytest.mark.parametrize("workload", ["spec2000", "specweb", "tpcc"])
def test_bench_e3_l2_exploration(benchmark, workload):
    result = run_and_report(
        benchmark, lambda: run_l2_exploration(workload=workload, split=False)
    )
    assert_no_unexpected(result)
    xs, ys = result.series["L2 leakage vs size"]
    assert xs, "at least one feasible capacity expected"
    # The optimum is never the largest swept capacity.
    best_size = xs[ys.index(min(ys))]
    assert best_size < 4096
