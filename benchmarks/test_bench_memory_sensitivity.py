"""Extension bench: Figure 2's orderings vs main-memory latency.

The tuple-problem conclusions depend on how much AMAT leverage the L2's
miss rate has, which scales with the memory latency.  This bench re-runs
the two headline comparisons at 10 / 20 / 40 ns main memory and checks
they are not artifacts of the 20 ns default:

* dual Tox + dual Vth stays within a few percent of 2 Tox + 3 Vth;
* 1 Tox + 2 Vth beats 2 Tox + 1 Vth at relaxed AMAT.
"""

from repro import units
from repro.archsim.missmodel import calibrated_miss_model
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.experiments.figure2 import fast_space
from repro.experiments.report import format_table
from repro.optimize.tuple_problem import TupleBudget, solve_tuple_problem

BUDGETS = (
    TupleBudget(2, 2),
    TupleBudget(2, 3),
    TupleBudget(2, 1),
    TupleBudget(1, 2),
)


def test_bench_memory_latency_sensitivity(benchmark):
    def sweep():
        miss_model = calibrated_miss_model("spec2000")
        l1 = CacheModel(l1_config(16))
        l2 = CacheModel(l2_config(1024))
        out = {}
        for latency_ns in (10.0, 20.0, 40.0):
            memory = MainMemoryModel(latency=latency_ns * 1e-9)
            curves = solve_tuple_problem(
                l1,
                l2,
                miss_model,
                budgets=BUDGETS,
                space=fast_space(),
                memory=memory,
            )
            relaxed = max(curve.amats[-1] for curve in curves.values())
            out[latency_ns] = {
                budget: curve.energy_at(relaxed)
                for budget, curve in curves.items()
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for latency_ns, energies in sorted(results.items()):
        rows.append(
            [f"{latency_ns:.0f}"]
            + [
                f"{units.to_pj(energies[budget]):.1f}"
                for budget in BUDGETS
            ]
        )
    print("\n=== Figure 2 orderings vs main-memory latency ===\n")
    print(
        format_table(
            ["t_mem (ns)"] + [budget.label for budget in BUDGETS], rows
        )
    )
    for latency_ns, energies in results.items():
        # Dual/dual within 5 % of 2T+3V at every latency.
        gap = (
            energies[TupleBudget(2, 2)] / energies[TupleBudget(2, 3)] - 1.0
        )
        assert gap < 0.05, f"dual/dual gap {gap:.2%} at {latency_ns} ns"
        # Vth remains the better second knob at every latency.
        assert (
            energies[TupleBudget(1, 2)] < energies[TupleBudget(2, 1)]
        ), f"Vth-vs-Tox ordering flipped at {latency_ns} ns"
