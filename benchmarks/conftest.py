"""Benchmark-harness helpers.

Every benchmark regenerates one of the paper's tables or figures at full
resolution and prints it (run with ``pytest benchmarks/ --benchmark-only
-s`` to see the artefacts).  Heavy experiments use a single pedantic
round — the artefact, not the nanoseconds, is the point; the timing is a
by-product documenting the cost of each reproduction.
"""

from __future__ import annotations


def run_and_report(benchmark, runner, rounds: int = 1):
    """Benchmark ``runner`` once and print its rendered result."""
    result = benchmark.pedantic(runner, rounds=rounds, iterations=1)
    print()
    print(result.render())
    return result


def assert_no_unexpected(result):
    """Every finding must confirm the paper (no 'UNEXPECTED' markers)."""
    for finding in result.findings:
        assert "UNEXPECTED" not in finding, finding
