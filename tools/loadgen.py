"""Closed-loop load generator for the repro service.

Run against an already-running daemon:

    PYTHONPATH=src python -m repro serve --port 8023 &
    PYTHONPATH=src python tools/loadgen.py --port 8023 \
        --concurrency 8 --requests 25

or fully self-contained (spawns an in-process server on an ephemeral
port):

    PYTHONPATH=src python tools/loadgen.py --self-contained \
        --concurrency 8 --requests 25

Each worker thread owns one keep-alive :class:`ServiceClient` and issues
``--requests`` sweep requests back to back (closed loop: the next
request starts when the previous response lands).  Workers draw their
grids from a small pool of realistic shapes, so concurrent requests for
the same cache structure coalesce in the daemon's batching scheduler.

The report divides the server-side engine-work counter by the request
count — the acceptance metric for the batching PR is
``evaluate_grid_calls_per_request < 1`` at concurrency >= 8.

``--campaign`` switches the workers to whole-campaign submissions drawn
from a pool of overlapping specs; the report then shows fleet-wide unit
dedup (units served per engine pass) instead of sweep batching.

``--cluster`` reads the counters from ``/metrics?scope=cluster`` — the
merged view across every worker of a ``serve --workers N`` deployment —
instead of whichever single worker happens to answer the probe.  Without
it, a multi-worker run under-counts: each request lands on one worker
but the probe only sees one worker's registry.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from typing import Dict, List, Optional

REPO_SRC = "src"
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Campaign specs the ``--campaign`` workers cycle through.  They share
#: calibration settings and cache structures on purpose: units repeated
#: across campaigns are answered from checkpoints, so the fleet-wide
#: engine-pass counter grows much more slowly than the unit counter.
CAMPAIGN_POOL = (
    {
        "name": "loadgen-matrix",
        "workloads": ["spec2000"],
        "policies": ["lru"],
        "calibration": {"n_accesses": 30_000},
        "matrix": {"l1_sizes_kb": [4, 8, 16], "l1_assocs": [1, 2],
                   "l2_sizes_kb": [256], "l2_assocs": [8]},
    },
    {
        "name": "loadgen-sweeps",
        "workloads": ["spec2000"],
        "policies": ["lru"],
        "calibration": {"n_accesses": 30_000},
        "matrix": {"l1_sizes_kb": [4, 8], "l1_assocs": [2],
                   "l2_sizes_kb": [256], "l2_assocs": [8]},
        "sweeps": [
            {"cache": {"size_kb": 16}, "vth": [0.25, 0.3, 0.35],
             "tox": [10.0, 12.0], "components": ["array"]},
            {"cache": {"size_kb": 16}, "vth": [0.3, 0.35, 0.4],
             "tox": [12.0, 14.0], "components": ["array"]},
        ],
    },
    {
        "name": "loadgen-optimize",
        "workloads": ["spec2000"],
        "policies": ["lru"],
        "calibration": {"n_accesses": 30_000},
        "matrix": {"l1_sizes_kb": [4, 8], "l1_assocs": [1],
                   "l2_sizes_kb": [256], "l2_assocs": [8]},
        "optimize": {"caches": [{"size_kb": 16}], "schemes": ["1", "3"],
                     "target_ps": [900.0, 1100.0]},
    },
)

#: Cache structures the workers cycle through (same structure -> shared
#: batches; several structures keeps the model cache honest too).
CACHE_POOL = (
    {"size_kb": 16, "name": "L1-16K"},
    {"size_kb": 32, "name": "L1-32K"},
)

#: Axis shapes the workers cycle through.  All pool entries share many
#: grid points so unions stay small and cache reuse is realistic.
AXIS_POOL = (
    ({"min": 0.2, "max": 0.5, "points": 7}, {"min": 10, "max": 14, "points": 5}),
    ({"min": 0.2, "max": 0.5, "points": 7}, {"min": 10, "max": 14, "points": 3}),
    ({"min": 0.2, "max": 0.44, "points": 5}, {"min": 10, "max": 14, "points": 5}),
)


#: Workers flush their metrics snapshot to the shared board every
#: 0.25 s; waiting two flush periods before the final cluster scrape
#: guarantees every worker's post-run counters have landed.
CLUSTER_FLUSH_WAIT_SECONDS = 0.6


def _scrape_counters(probe: ServiceClient, cluster: bool) -> Dict[str, int]:
    """Read request counters from one worker or the merged fleet view.

    The cluster scrape sleeps out the flush period first so every
    worker's latest snapshot is on the board — both for the *before*
    read (or deltas would over-count traffic still in flight at probe
    time) and for the *after* read (or they would under-count it).
    """
    if cluster:
        time.sleep(CLUSTER_FLUSH_WAIT_SECONDS)
        return probe.metrics(scope="cluster")["merged"]["counters"]
    return probe.metrics()["counters"]


def _worker(
    index: int,
    host: str,
    port: int,
    requests: int,
    latencies: List[float],
    errors: List[str],
    barrier: threading.Barrier,
) -> None:
    client = ServiceClient(host=host, port=port)
    samples = []
    barrier.wait()
    for round_index in range(requests):
        cache = CACHE_POOL[(index + round_index) % len(CACHE_POOL)]
        vth, tox = AXIS_POOL[round_index % len(AXIS_POOL)]
        started = time.perf_counter()
        try:
            client.sweep(cache, vth, tox)
        except ServiceError as error:
            errors.append(f"worker {index}: {error}")
            continue
        samples.append(time.perf_counter() - started)
    client.close()
    latencies.extend(samples)


def generate_load(
    host: str,
    port: int,
    concurrency: int,
    requests: int,
    cluster: bool = False,
) -> Dict[str, object]:
    """Drive the daemon and return the measured report."""
    probe = ServiceClient(host=host, port=port)
    before = _scrape_counters(probe, cluster)
    latencies: List[float] = []
    errors: List[str] = []
    barrier = threading.Barrier(concurrency)
    threads = [
        threading.Thread(
            target=_worker,
            args=(index, host, port, requests, latencies, errors, barrier),
        )
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    after = _scrape_counters(probe, cluster)
    probe.close()

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    total = delta("requests.sweep")
    engine_calls = delta("sweep.evaluate_grid_calls")
    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[
            min(len(latencies) - 1, int(fraction * len(latencies)))
        ]

    return {
        "concurrency": concurrency,
        "requests_per_worker": requests,
        "total_requests": total,
        "errors": errors,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall else 0.0,
        "latency_seconds": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "p50": percentile(0.50),
            "p95": percentile(0.95),
            "max": latencies[-1] if latencies else 0.0,
        },
        "evaluate_grid_calls": engine_calls,
        "evaluate_grid_calls_per_request": (
            engine_calls / total if total else 0.0
        ),
        "engine_grid_evaluations": delta("sweep.engine_grid_evaluations"),
        "coalesced_requests": delta("sweep.coalesced_requests"),
        "batches": delta("sweep.batches"),
        "union_overflows": delta("sweep.union_overflows"),
    }


def _campaign_worker(
    index: int,
    host: str,
    port: int,
    campaigns: int,
    latencies: List[float],
    errors: List[str],
    barrier: threading.Barrier,
) -> None:
    client = ServiceClient(host=host, port=port, timeout=60.0)
    samples = []
    barrier.wait()
    for round_index in range(campaigns):
        spec = CAMPAIGN_POOL[(index + round_index) % len(CAMPAIGN_POOL)]
        started = time.perf_counter()
        try:
            final = client.run_campaign(spec, timeout=300.0)
            if final["status"] != "done":
                errors.append(
                    f"worker {index}: campaign ended {final['status']!r}"
                )
                continue
        except (ServiceError, TimeoutError) as error:
            errors.append(f"worker {index}: {error}")
            continue
        samples.append(time.perf_counter() - started)
    client.close()
    latencies.extend(samples)


def generate_campaign_load(
    host: str,
    port: int,
    concurrency: int,
    campaigns: int,
    cluster: bool = False,
) -> Dict[str, object]:
    """Drive the daemon with concurrent campaigns; return the report."""
    probe = ServiceClient(host=host, port=port)
    before = _scrape_counters(probe, cluster)
    latencies: List[float] = []
    errors: List[str] = []
    barrier = threading.Barrier(concurrency)
    threads = [
        threading.Thread(
            target=_campaign_worker,
            args=(index, host, port, campaigns, latencies, errors, barrier),
        )
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    after = _scrape_counters(probe, cluster)
    probe.close()

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    units_done = delta("campaigns.units_done")
    checkpoint_hits = delta("campaigns.checkpoint_hits")
    engine_passes = delta("campaigns.engine_passes")
    total_units = units_done + checkpoint_hits
    latencies.sort()
    return {
        "concurrency": concurrency,
        "campaigns_per_worker": campaigns,
        "campaigns_completed": delta("campaigns.completed"),
        "campaigns_submitted": delta("campaigns.submitted"),
        "errors": errors,
        "wall_seconds": wall,
        "campaign_seconds": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
        "units_total": total_units,
        "units_executed": units_done,
        "units_from_checkpoints": checkpoint_hits,
        "units_failed": delta("campaigns.units_failed"),
        "engine_passes": engine_passes,
        "units_per_engine_pass": (
            total_units / engine_passes if engine_passes else float("inf")
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="worker threads (default 8)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per worker (default 25); in "
                             "--campaign mode, campaigns per worker "
                             "(consider 2-3)")
    parser.add_argument("--campaign", action="store_true",
                        help="submit whole campaigns instead of single "
                             "sweeps; the report shows fleet-wide unit "
                             "dedup instead of sweep batching")
    parser.add_argument("--cluster", action="store_true",
                        help="measure via /metrics?scope=cluster (merged "
                             "across all workers of a --workers N "
                             "deployment) instead of one worker's view")
    parser.add_argument("--self-contained", action="store_true",
                        help="spawn an in-process server on an ephemeral "
                             "port instead of targeting a running daemon")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    arguments = parser.parse_args(argv)

    server = None
    host, port = arguments.host, arguments.port
    if arguments.self_contained:
        from repro.service import ServiceConfig, create_server

        server = create_server(ServiceConfig(port=0))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = "127.0.0.1", server.bound_port
        print(f"self-contained server on port {port}", file=sys.stderr)

    try:
        if arguments.campaign:
            report = generate_campaign_load(
                host, port, arguments.concurrency, arguments.requests,
                cluster=arguments.cluster,
            )
        else:
            report = generate_load(
                host, port, arguments.concurrency, arguments.requests,
                cluster=arguments.cluster,
            )
    finally:
        if server is not None:
            server.shutdown()
            server.service.shutdown()
            server.server_close()

    if arguments.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif arguments.campaign:
        print(f"campaigns: {report['campaigns_completed']} completed "
              f"of {report['campaigns_submitted']} submitted "
              f"({report['wall_seconds']:.2f} s wall, mean "
              f"{report['campaign_seconds']['mean']:.2f} s each)")
        print(f"units: {report['units_total']} total = "
              f"{report['units_executed']} executed + "
              f"{report['units_from_checkpoints']} from checkpoints "
              f"({report['units_failed']} failed)")
        print(f"dedup: {report['engine_passes']} engine passes for "
              f"{report['units_total']} units "
              f"({report['units_per_engine_pass']:.1f} units per pass)")
        if report["errors"]:
            print(f"errors ({len(report['errors'])}):", file=sys.stderr)
            for line in report["errors"][:10]:
                print(f"  {line}", file=sys.stderr)
            return 1
    else:
        latency = report["latency_seconds"]
        print(f"requests: {report['total_requests']} "
              f"({report['throughput_rps']:.0f} rps, "
              f"{report['wall_seconds']:.2f} s wall)")
        print(f"latency: mean {latency['mean'] * 1e3:.1f} ms, "
              f"p50 {latency['p50'] * 1e3:.1f} ms, "
              f"p95 {latency['p95'] * 1e3:.1f} ms")
        print(f"engine work: {report['evaluate_grid_calls']} "
              f"evaluate_grid calls / {report['total_requests']} requests "
              f"= {report['evaluate_grid_calls_per_request']:.3f} per "
              f"request")
        print(f"coalescing: {report['coalesced_requests']} follower(s) "
              f"across {report['batches']} batch(es)")
        if report["errors"]:
            print(f"errors ({len(report['errors'])}):", file=sys.stderr)
            for line in report["errors"][:10]:
                print(f"  {line}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
