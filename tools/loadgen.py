"""Closed-loop load generator for the repro service.

Run against an already-running daemon:

    PYTHONPATH=src python -m repro serve --port 8023 &
    PYTHONPATH=src python tools/loadgen.py --port 8023 \
        --concurrency 8 --requests 25

or fully self-contained (spawns an in-process server on an ephemeral
port):

    PYTHONPATH=src python tools/loadgen.py --self-contained \
        --concurrency 8 --requests 25

Each worker thread owns one keep-alive :class:`ServiceClient` and issues
``--requests`` sweep requests back to back (closed loop: the next
request starts when the previous response lands).  Workers draw their
grids from a small pool of realistic shapes, so concurrent requests for
the same cache structure coalesce in the daemon's batching scheduler.

The report divides the server-side engine-work counter by the request
count — the acceptance metric for the batching PR is
``evaluate_grid_calls_per_request < 1`` at concurrency >= 8.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from typing import Dict, List, Optional

REPO_SRC = "src"
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Cache structures the workers cycle through (same structure -> shared
#: batches; several structures keeps the model cache honest too).
CACHE_POOL = (
    {"size_kb": 16, "name": "L1-16K"},
    {"size_kb": 32, "name": "L1-32K"},
)

#: Axis shapes the workers cycle through.  All pool entries share many
#: grid points so unions stay small and cache reuse is realistic.
AXIS_POOL = (
    ({"min": 0.2, "max": 0.5, "points": 7}, {"min": 10, "max": 14, "points": 5}),
    ({"min": 0.2, "max": 0.5, "points": 7}, {"min": 10, "max": 14, "points": 3}),
    ({"min": 0.2, "max": 0.44, "points": 5}, {"min": 10, "max": 14, "points": 5}),
)


def _worker(
    index: int,
    host: str,
    port: int,
    requests: int,
    latencies: List[float],
    errors: List[str],
    barrier: threading.Barrier,
) -> None:
    client = ServiceClient(host=host, port=port)
    samples = []
    barrier.wait()
    for round_index in range(requests):
        cache = CACHE_POOL[(index + round_index) % len(CACHE_POOL)]
        vth, tox = AXIS_POOL[round_index % len(AXIS_POOL)]
        started = time.perf_counter()
        try:
            client.sweep(cache, vth, tox)
        except ServiceError as error:
            errors.append(f"worker {index}: {error}")
            continue
        samples.append(time.perf_counter() - started)
    client.close()
    latencies.extend(samples)


def generate_load(
    host: str,
    port: int,
    concurrency: int,
    requests: int,
) -> Dict[str, object]:
    """Drive the daemon and return the measured report."""
    probe = ServiceClient(host=host, port=port)
    before = probe.metrics()["counters"]
    latencies: List[float] = []
    errors: List[str] = []
    barrier = threading.Barrier(concurrency)
    threads = [
        threading.Thread(
            target=_worker,
            args=(index, host, port, requests, latencies, errors, barrier),
        )
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    after = probe.metrics()["counters"]
    probe.close()

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    total = delta("requests.sweep")
    engine_calls = delta("sweep.evaluate_grid_calls")
    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[
            min(len(latencies) - 1, int(fraction * len(latencies)))
        ]

    return {
        "concurrency": concurrency,
        "requests_per_worker": requests,
        "total_requests": total,
        "errors": errors,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall else 0.0,
        "latency_seconds": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "p50": percentile(0.50),
            "p95": percentile(0.95),
            "max": latencies[-1] if latencies else 0.0,
        },
        "evaluate_grid_calls": engine_calls,
        "evaluate_grid_calls_per_request": (
            engine_calls / total if total else 0.0
        ),
        "engine_grid_evaluations": delta("sweep.engine_grid_evaluations"),
        "coalesced_requests": delta("sweep.coalesced_requests"),
        "batches": delta("sweep.batches"),
        "union_overflows": delta("sweep.union_overflows"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="worker threads (default 8)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per worker (default 25)")
    parser.add_argument("--self-contained", action="store_true",
                        help="spawn an in-process server on an ephemeral "
                             "port instead of targeting a running daemon")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    arguments = parser.parse_args(argv)

    server = None
    host, port = arguments.host, arguments.port
    if arguments.self_contained:
        from repro.service import ServiceConfig, create_server

        server = create_server(ServiceConfig(port=0))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = "127.0.0.1", server.bound_port
        print(f"self-contained server on port {port}", file=sys.stderr)

    try:
        report = generate_load(
            host, port, arguments.concurrency, arguments.requests
        )
    finally:
        if server is not None:
            server.shutdown()
            server.service.shutdown()
            server.server_close()

    if arguments.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        latency = report["latency_seconds"]
        print(f"requests: {report['total_requests']} "
              f"({report['throughput_rps']:.0f} rps, "
              f"{report['wall_seconds']:.2f} s wall)")
        print(f"latency: mean {latency['mean'] * 1e3:.1f} ms, "
              f"p50 {latency['p50'] * 1e3:.1f} ms, "
              f"p95 {latency['p95'] * 1e3:.1f} ms")
        print(f"engine work: {report['evaluate_grid_calls']} "
              f"evaluate_grid calls / {report['total_requests']} requests "
              f"= {report['evaluate_grid_calls_per_request']:.3f} per "
              f"request")
        print(f"coalescing: {report['coalesced_requests']} follower(s) "
              f"across {report['batches']} batch(es)")
        if report["errors"]:
            print(f"errors ({len(report['errors'])}):", file=sys.stderr)
            for line in report["errors"][:10]:
                print(f"  {line}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
