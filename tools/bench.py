"""Timing bench for the repro performance PRs.

Run:  PYTHONPATH=src python tools/bench.py --suite archsim   # -> BENCH_2.json
      PYTHONPATH=src python tools/bench.py --suite sweep     # -> BENCH_1.json
      PYTHONPATH=src python tools/bench.py --suite service   # -> BENCH_3.json
      PYTHONPATH=src python tools/bench.py --suite calib     # -> BENCH_6.json
                                                             #  + BENCH_7.json
      PYTHONPATH=src python tools/bench.py --suite campaign  # -> BENCH_8.json
      PYTHONPATH=src python tools/bench.py --suite scale     # -> BENCH_9.json
      PYTHONPATH=src python tools/bench.py --smoke           # CI regression gate

Four suites, one per performance PR:

* ``sweep`` (PR 1) — times every registered experiment, the coarse-grid
  tuple problem, and the cold/warm component-table build.
* ``archsim`` (PR 2) — times the trace engine: vectorized trace
  generation, the array set-associative simulator, stack-distance
  profiling, and the cold/warm disk-memoized ``measure_miss_model``.
* ``service`` (PR 3) — drives an in-process service daemon: cold/warm
  single-sweep latency, a concurrency-8 closed-loop load run (the
  batching acceptance metric is mean evaluate_grid calls per sweep
  request < 1), and a calibration job round trip.
* ``calib`` (PRs 4/5/6) — cold grid calibration at 2 M accesses with the
  legacy one-simulation-per-point engine vs the batched multi-config
  engine, once per replacement policy (acceptance: >= 5x for LRU,
  >= 3x for FIFO and random — the non-LRU kernels give up the
  all-caches MRU guard — curves bit-identical in every case), plus the
  warm disk-cache reload, plus the per-set Mattson profiler
  (``estimator="setdist"``): engine-only best-of-N timings on one
  shared 2 M-access trace for the 12-point default grid vs the batched
  multi-config engine (acceptance: >= 5x, rates bit-identical) and for
  a dense ~200-point (size, assoc) grid (acceptance: <= 1.2x the
  12-point trace pass — the cascade's cost is grid-size independent).
  The calib suite also times the workload profile store (PR 7): a cold
  ``profile_store="always"`` calibration that computes the dense
  (size, assoc) surface, then the warm repeat served entirely from the
  resident surface with zero trace passes (acceptance: >= 50x for the
  12-point default grid, rates bit-identical to a direct multiconfig
  run, compute counter flat on the warm serve).  The profile-store
  section is written to its own report, ``BENCH_7.json``.
* ``campaign`` (PR 8) — runs one >=200-unit declarative campaign on a
  fresh in-process daemon and the same work as a naive serial per-unit
  client loop (fixed 0.25 s job polling) on a second fresh daemon.
  Acceptance: the campaign needs far fewer engine passes than units
  (the dedup ratio in BENCH_8.json) and finishes >= 3x faster.

Each suite writes measurements plus speedups against recorded pre-PR
baselines to a JSON report.  Baselines were measured on this machine at
the respective pre-PR commits with the same interpreter; they are the
denominators of the acceptance criteria (the calib suite measures its
per-point baseline live, so both numbers in BENCH_4.json come from the
same run on the same machine).

``--smoke`` is the CI gate: it profiles a 200k-access trace, exits
non-zero if the wall time regresses beyond 3x the recorded pre-PR
baseline (generous enough to absorb shared-runner noise while still
catching an accidental return to the O(n*d) path), asserts the batched
multi-config engine matches the legacy per-point engine on a small
grid for every replacement policy (lru, fifo, random), asserts the
per-set Mattson estimator (``estimator="setdist"``) reproduces the
multi-config LRU curves bit-identically, and then runs the in-process
service smoke (tools/service_smoke.py) so a broken daemon also fails
the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

#: Pre-PR-1 wall times (seconds), measured at the seed commit.
SWEEP_BASELINE = {
    "experiments": {
        "E1": 0.21,
        "E2": 0.04,
        "E3": 2.63,
        "E4": 2.17,
        "E5": 1.38,
        "E6": 7.90,
        "E7": 0.44,
    },
    "run_all": 14.77,
    "solve_tuple_problem_coarse": 108.94,
    "component_tables_default": 0.2008,
    "component_tables_coarse": 0.0865,
}

#: Pre-PR-2 wall times (seconds), measured at the PR-1 commit: per-record
#: synthetic_trace generation, the object SetAssociativeCache, the
#: O(n*d) list stack-distance scan, and the serial uncached
#: measure_miss_model (300k accesses, default grids).
ARCHSIM_BASELINE = {
    "trace_gen_2m": 4.2127,
    "setassoc_2m": 9.8954,
    "stackdist_200k": 1.7054,
    "stackdist_2m": 46.4826,
    "measure_miss_model_cold": 19.0443,
}

#: CI smoke gate: fail if the 200k-access profile exceeds this multiple
#: of the pre-PR baseline.
SMOKE_FACTOR = 3.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# --------------------------------------------------------------------------
# sweep suite (PR 1)
# --------------------------------------------------------------------------

def bench_experiments() -> dict:
    from repro.experiments.runner import REGISTRY, run_experiment
    from repro.perf import clear_cache

    times = {}
    for experiment_id in sorted(REGISTRY):
        clear_cache()
        seconds, _ = _timed(lambda eid=experiment_id: run_experiment(eid))
        times[experiment_id] = seconds
        baseline = SWEEP_BASELINE["experiments"].get(experiment_id)
        against = f" (baseline {baseline:.2f} s)" if baseline else ""
        print(f"  {experiment_id}: {seconds:.2f} s{against}")
    return times


def bench_tuple_problem() -> float:
    from repro.archsim.missmodel import calibrated_miss_model
    from repro.cache.cache_model import CacheModel
    from repro.cache.config import l1_config, l2_config
    from repro.optimize.space import coarse_space
    from repro.optimize.tuple_problem import solve_tuple_problem
    from repro.perf import clear_cache

    clear_cache()
    l1 = CacheModel(l1_config(16))
    l2 = CacheModel(l2_config(1024))
    miss_model = calibrated_miss_model("spec2000")
    seconds, _ = _timed(
        lambda: solve_tuple_problem(l1, l2, miss_model, space=coarse_space())
    )
    print(f"  solve_tuple_problem (coarse): {seconds:.2f} s (baseline "
          f"{SWEEP_BASELINE['solve_tuple_problem_coarse']:.2f} s)")
    return seconds


def bench_tables() -> dict:
    from repro.cache.cache_model import CacheModel
    from repro.cache.config import l1_config
    from repro.optimize.single_cache import component_tables
    from repro.optimize.space import coarse_space, default_space
    from repro.perf import clear_cache

    model = CacheModel(l1_config(16))
    out = {}
    for label, space in (("default", default_space()),
                         ("coarse", coarse_space())):
        clear_cache()
        cold, _ = _timed(lambda: component_tables(model, space))
        warm, _ = _timed(lambda: component_tables(model, space))
        out[f"component_tables_{label}_cold"] = cold
        out[f"component_tables_{label}_warm"] = warm
        print(f"  component_tables ({label}): cold {cold:.4f} s, "
              f"warm {warm * 1e6:.0f} us")
    return out


def bench_run_all(jobs: int) -> dict:
    from repro.experiments.runner import REGISTRY, run_many
    from repro.perf import clear_cache

    ids = sorted(REGISTRY)
    clear_cache()
    serial, _ = _timed(lambda: run_many(ids, jobs=1))
    parallel, _ = _timed(lambda: run_many(ids, jobs=jobs))
    print(f"  run_all serial {serial:.2f} s "
          f"(baseline {SWEEP_BASELINE['run_all']:.2f} s), "
          f"--jobs {jobs} {parallel:.2f} s")
    return {"run_all": serial, f"run_all_jobs{jobs}": parallel}


def run_sweep_suite(output: str, jobs: int) -> int:
    from repro.perf import cache_info

    print("experiments (isolated: cache cleared per experiment):")
    experiment_times = bench_experiments()
    print("tuple problem:")
    tuple_time = bench_tuple_problem()
    print("evaluation tables:")
    table_times = bench_tables()
    print("run_all:")
    run_all_times = bench_run_all(jobs)
    run_all_time = run_all_times["run_all"]

    report = {
        "baseline": SWEEP_BASELINE,
        "measured": {
            "experiments": experiment_times,
            "solve_tuple_problem_coarse": tuple_time,
            **table_times,
            **run_all_times,
        },
        "speedup": {
            "run_all": SWEEP_BASELINE["run_all"] / run_all_time,
            "solve_tuple_problem_coarse": (
                SWEEP_BASELINE["solve_tuple_problem_coarse"] / tuple_time
            ),
            "component_tables_default_cold": (
                SWEEP_BASELINE["component_tables_default"]
                / table_times["component_tables_default_cold"]
            ),
        },
        "table_cache": {
            "hits": cache_info().hits,
            "misses": cache_info().misses,
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nrun_all: {run_all_time:.2f} s "
          f"({report['speedup']['run_all']:.1f}x vs baseline)")
    print(f"tuple problem: {tuple_time:.2f} s "
          f"({report['speedup']['solve_tuple_problem_coarse']:.1f}x)")
    print(f"report written to {output}")
    return 0


# --------------------------------------------------------------------------
# archsim suite (PR 2)
# --------------------------------------------------------------------------

def bench_archsim(n: int = 2_000_000) -> dict:
    from repro.archsim.missmodel import measure_miss_model
    from repro.archsim.setassoc import ArraySetAssociativeCache
    from repro.archsim.stackdist import stack_distance_profile
    from repro.archsim.workloads import SPEC2000_LIKE, synthetic_trace_buffer

    measured = {}

    gen_seconds, trace = _timed(
        lambda: synthetic_trace_buffer(SPEC2000_LIKE, n, seed=1)
    )
    measured["trace_gen_2m"] = gen_seconds
    print(f"  trace generation ({n:,}): {gen_seconds:.3f} s "
          f"({n / gen_seconds / 1e6:.1f} M acc/s, baseline "
          f"{ARCHSIM_BASELINE['trace_gen_2m']:.2f} s)")

    cache = ArraySetAssociativeCache(32 * 1024, 64, 4)
    sim_seconds, _ = _timed(lambda: cache.run(trace))
    measured["setassoc_2m"] = sim_seconds
    print(f"  set-assoc sim ({n:,}, 32KB/64B/4-way): {sim_seconds:.3f} s "
          f"({n / sim_seconds / 1e6:.1f} M acc/s, baseline "
          f"{ARCHSIM_BASELINE['setassoc_2m']:.2f} s)")

    small = trace.slice(0, 200_000)
    small_seconds, _ = _timed(lambda: stack_distance_profile(small))
    measured["stackdist_200k"] = small_seconds
    dist_seconds, _ = _timed(lambda: stack_distance_profile(trace))
    measured["stackdist_2m"] = dist_seconds
    print(f"  stack distance (200k): {small_seconds:.3f} s (baseline "
          f"{ARCHSIM_BASELINE['stackdist_200k']:.2f} s)")
    print(f"  stack distance ({n:,}): {dist_seconds:.3f} s "
          f"({n / dist_seconds / 1e6:.1f} M acc/s, baseline "
          f"{ARCHSIM_BASELINE['stackdist_2m']:.2f} s)")

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds, cold = _timed(
            lambda: measure_miss_model(SPEC2000_LIKE, cache_dir=cache_dir)
        )
        warm_seconds, warm = _timed(
            lambda: measure_miss_model(SPEC2000_LIKE, cache_dir=cache_dir)
        )
    assert warm == cold
    measured["measure_miss_model_cold"] = cold_seconds
    measured["measure_miss_model_warm"] = warm_seconds
    print(f"  measure_miss_model: cold {cold_seconds:.3f} s (baseline "
          f"{ARCHSIM_BASELINE['measure_miss_model_cold']:.2f} s), "
          f"warm {warm_seconds * 1e3:.1f} ms")
    return measured


def run_archsim_suite(output: str) -> int:
    print("trace engine:")
    measured = bench_archsim()
    speedup = {
        key: ARCHSIM_BASELINE[key] / measured[key]
        for key in ARCHSIM_BASELINE
    }
    speedup["measure_miss_model_warm"] = (
        ARCHSIM_BASELINE["measure_miss_model_cold"]
        / measured["measure_miss_model_warm"]
    )
    report = {
        "baseline": ARCHSIM_BASELINE,
        "measured": measured,
        "speedup": speedup,
        "throughput_accesses_per_second": {
            "trace_gen": 2_000_000 / measured["trace_gen_2m"],
            "setassoc_sim": 2_000_000 / measured["setassoc_2m"],
            "stackdist": 2_000_000 / measured["stackdist_2m"],
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nstack distance 2M: {speedup['stackdist_2m']:.1f}x vs baseline")
    print(f"measure_miss_model: cold "
          f"{speedup['measure_miss_model_cold']:.1f}x, warm "
          f"{speedup['measure_miss_model_warm']:.0f}x vs baseline")
    print(f"report written to {output}")
    return 0


def run_smoke() -> int:
    """CI regression gate: timing + engine equality + service contract."""
    from repro.archsim.missmodel import measure_miss_model
    from repro.archsim.stackdist import stack_distance_profile
    from repro.archsim.workloads import SPEC2000_LIKE, synthetic_trace_buffer

    trace = synthetic_trace_buffer(SPEC2000_LIKE, 200_000, seed=1)
    seconds, profile = _timed(lambda: stack_distance_profile(trace))
    limit = SMOKE_FACTOR * ARCHSIM_BASELINE["stackdist_200k"]
    print(f"smoke: stack_distance_profile(200k) = {seconds:.3f} s "
          f"(limit {limit:.2f} s), {profile.total_accesses:,} accesses")
    if seconds > limit:
        print(f"FAIL: exceeded {SMOKE_FACTOR:.0f}x the recorded "
              f"{ARCHSIM_BASELINE['stackdist_200k']:.2f} s baseline",
              file=sys.stderr)
        return 1

    grids = {"l1_grid_kb": (4, 8), "l2_grid_kb": (128, 256)}
    for policy in ("lru", "fifo", "random"):
        batched = measure_miss_model(
            SPEC2000_LIKE, n_accesses=50_000, use_disk_cache=False,
            engine="multiconfig", policy=policy, **grids,
        )
        legacy = measure_miss_model(
            SPEC2000_LIKE, n_accesses=50_000, use_disk_cache=False,
            engine="array", policy=policy, **grids,
        )
        if batched != legacy:
            print(f"FAIL: multiconfig engine diverged from the per-point "
                  f"engine on a 2x2 grid (policy={policy}):\n"
                  f"  multiconfig: {batched}\n  per-point:   {legacy}",
                  file=sys.stderr)
            return 1
    print("smoke: multiconfig == per-point on the 2x2 calibration grid "
          "for lru, fifo and random")

    setdist = measure_miss_model(
        SPEC2000_LIKE, n_accesses=50_000, use_disk_cache=False,
        estimator="setdist", **grids,
    )
    grid = measure_miss_model(
        SPEC2000_LIKE, n_accesses=50_000, use_disk_cache=False,
        engine="multiconfig", policy="lru", **grids,
    )
    if setdist != grid:
        print(f"FAIL: setdist estimator diverged from the multiconfig "
              f"grid estimator (both must be exact for LRU):\n"
              f"  setdist:     {setdist}\n  multiconfig: {grid}",
              file=sys.stderr)
        return 1
    print("smoke: setdist estimator == multiconfig grid curves (lru)")
    import service_smoke

    try:
        if service_smoke.run_in_process() != 0:
            return 1
    except SystemExit as stop:
        if stop.code:
            return int(stop.code)
    print("OK")
    return 0


# --------------------------------------------------------------------------
# calib suite (PRs 4/5)
# --------------------------------------------------------------------------

#: Acceptance floor for the batched LRU engine: cold grid calibration
#: must be at least this many times faster than one simulation per grid
#: point.
CALIB_SPEEDUP_FLOOR = 5.0

#: Floor for the FIFO and random kernels: the non-LRU policies cannot use
#: the all-caches MRU guard (Mattson set refinement holds only for stack
#: algorithms), so their batched sweep amortises less per access.
NONLRU_CALIB_SPEEDUP_FLOOR = 3.0

#: Acceptance floor for the per-set Mattson profiler: one contraction
#: cascade over a cold 2 M-access LRU trace must beat the batched
#: multi-config sweep of the same 12-point grid by at least this much,
#: engine-only, bit-identical rates.
SETDIST_SPEEDUP_FLOOR = 5.0

#: Grid-size-independence ceiling: profiling a dense ~200-point
#: (size, assoc) grid may cost at most this multiple of the 12-point
#: pass over the same trace.
SETDIST_GRID_RATIO_CEIL = 1.2

#: Acceptance floor for the profile store (BENCH_7): serving the
#: 12-point default grid from a warm dense surface must beat the cold
#: compute-the-surface pass by at least this much.
PROFILE_STORE_WARM_SPEEDUP_FLOOR = 50.0


def _best_of(repeats: int, fn):
    """Best-of-N wall time (engine-only benches: takes the min, not the
    mean, so one scheduler hiccup does not sink an acceptance ratio)."""
    best_seconds, result = _timed(fn)
    for _ in range(repeats - 1):
        seconds, result = _timed(fn)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, result


def bench_profile_store(n: int = 2_000_000) -> dict:
    """Cold dense-surface pass vs warm store serve on the default grid.

    Cold: ``profile_store="always"`` into an empty store — one trace
    pass computes the whole (size, assoc) surface, then slices the
    12-point default grid off it.  Warm: the identical call again — the
    surface is resident in the memory tier, so the grid is a pure slice
    and the store's compute counter must stay flat.  Both are compared
    against ``profile_store="off"`` (direct multiconfig sweep) for
    bit-identity.  The missmodel disk cache is disabled throughout so
    the timings isolate the store tiers.
    """
    from repro.archsim.missmodel import measure_miss_model
    from repro.archsim.workloads import SPEC2000_LIKE
    from repro.perf import clear_profile_stores, profile_store_info

    print(f"profile store ({n:,} accesses, default 12-point grid):")
    clear_profile_stores()
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds, cold = _timed(lambda: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, use_disk_cache=False,
            cache_dir=cache_dir, profile_store="always",
        ))
        print(f"  cold (compute dense surface + slice): "
              f"{cold_seconds:.3f} s")
        before = profile_store_info()
        warm_seconds, warm = _timed(lambda: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, use_disk_cache=False,
            cache_dir=cache_dir, profile_store="always",
        ))
        after = profile_store_info()
        print(f"  warm (memory-tier slice):             "
              f"{warm_seconds * 1e3:.2f} ms")
    direct_seconds, direct = _timed(lambda: measure_miss_model(
        SPEC2000_LIKE, n_accesses=n, use_disk_cache=False,
        profile_store="off",
    ))
    print(f"  direct (store off, multiconfig sweep):  "
          f"{direct_seconds:.3f} s")

    identical = cold == warm == direct
    if not identical:
        print("FAIL: store-served curves diverged from the direct sweep",
              file=sys.stderr)
    computes_flat = after.misses == before.misses
    if not computes_flat:
        print("FAIL: the warm serve recomputed the surface",
              file=sys.stderr)
    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    ok = (identical and computes_flat
          and speedup >= PROFILE_STORE_WARM_SPEEDUP_FLOOR)
    print(f"  warm vs cold: {speedup:.0f}x (floor "
          f"{PROFILE_STORE_WARM_SPEEDUP_FLOOR:.0f}x), curves "
          f"{'identical' if identical else 'DIVERGED'}, computes "
          f"{'flat' if computes_flat else 'GREW'} -> "
          f"{'PASS' if ok else 'FAIL'}")
    return {
        "n_accesses": n,
        "grid_points": 12,
        "cold_surface_pass_seconds": cold_seconds,
        "warm_store_serve_seconds": warm_seconds,
        "direct_multiconfig_seconds": direct_seconds,
        "speedup_warm_vs_cold": speedup,
        "speedup_floor": PROFILE_STORE_WARM_SPEEDUP_FLOOR,
        "rates_bit_identical_to_direct": identical,
        "warm_serve_computes_flat": computes_flat,
        "pass": ok,
    }


def bench_setdist(n: int = 2_000_000) -> dict:
    """Per-set Mattson profiler vs the multi-config engine, engine-only.

    All timings share one pre-materialised trace so trace generation
    (which both estimators pay identically inside
    ``measure_miss_model``) cannot dilute the engine ratio.  The dense
    grid covers every associativity 1..16 at each default L1 set count
    and 1..17 at each L2 set count — every (size, assoc) pair on the
    reference block sizes, ~200 points — to show the cascade's cost
    depends on the trace, not on how many points are read off it.
    """
    from repro.archsim import missmodel
    from repro.archsim.setdist import two_level_profiles
    from repro.archsim.workloads import SPEC2000_LIKE, synthetic_trace_buffer

    trace = synthetic_trace_buffer(SPEC2000_LIKE, n, seed=1)
    points = ([("l1", kb) for kb in missmodel.L1_GRID_KB]
              + [("l2", kb) for kb in missmodel.L2_GRID_KB])
    print(f"setdist estimator ({n:,} accesses, shared trace, "
          f"engine-only):")

    setdist_seconds, setdist_rates = _best_of(
        3, lambda: missmodel._setdist_rates(points, trace))
    print(f"  per-set cascade, {len(points)}-point default grid: "
          f"{setdist_seconds:.3f} s (best of 3)")
    multi_seconds, multi_rates = _best_of(
        2, lambda: missmodel._multiconfig_rates(points, trace))
    print(f"  multiconfig sweep, same grid:          "
          f"{multi_seconds:.3f} s (best of 2)")

    identical = setdist_rates == multi_rates
    if not identical:
        print("FAIL: setdist rates diverged from the multiconfig sweep:\n"
              f"  setdist:     {setdist_rates}\n"
              f"  multiconfig: {multi_rates}", file=sys.stderr)
    speedup = multi_seconds / setdist_seconds if setdist_seconds else 0.0

    l1_sets = [missmodel._point_sets("l1", kb)
               for kb in missmodel.L1_GRID_KB]
    l2_sets = [missmodel._point_sets("l2", kb)
               for kb in missmodel.L2_GRID_KB]
    l1_assocs, l2_assocs = 16, 17
    dense_points = len(l1_sets) * l1_assocs + len(l2_sets) * l2_assocs

    def dense_pass():
        return two_level_profiles(
            trace,
            l1_set_counts=l1_sets,
            l2_set_counts=l2_sets,
            ref_sets=missmodel._point_sets(
                "l1", missmodel.REFERENCE_L1_KB),
            ref_assoc=missmodel.REFERENCE_L1_ASSOC,
            l1_block_bytes=missmodel.REFERENCE_L1_BLOCK,
            l2_block_bytes=missmodel.REFERENCE_L2_BLOCK,
            l1_depth_cap=l1_assocs,
            l2_depth_cap=l2_assocs,
        )

    dense_seconds, (l1_profiles, l2_profiles) = _best_of(3, dense_pass)
    ratio = dense_seconds / setdist_seconds if setdist_seconds else 0.0
    print(f"  per-set cascade, dense {dense_points}-point grid:   "
          f"{dense_seconds:.3f} s (best of 3, {ratio:.2f}x the "
          f"{len(points)}-point pass)")

    # The dense pass subsumes the default grid: reading the 12 default
    # points off its profiles must reproduce the 12-point rates exactly.
    dense_rates = (
        [l1_profiles[s].miss_rate(missmodel.REFERENCE_L1_ASSOC)
         for s in l1_sets]
        + [l2_profiles[s].miss_rate(missmodel.REFERENCE_L2_ASSOC)
           for s in l2_sets]
    )
    contains = dense_rates == setdist_rates
    if not contains:
        print("FAIL: dense-grid profiles disagree with the 12-point pass "
              "at the default points", file=sys.stderr)

    ok = (identical and contains
          and speedup >= SETDIST_SPEEDUP_FLOOR
          and ratio <= SETDIST_GRID_RATIO_CEIL)
    print(f"  speedup vs multiconfig: {speedup:.1f}x (floor "
          f"{SETDIST_SPEEDUP_FLOOR:.0f}x), dense/default ratio "
          f"{ratio:.2f}x (ceiling {SETDIST_GRID_RATIO_CEIL:.1f}x), "
          f"rates {'identical' if identical and contains else 'DIVERGED'}"
          f" -> {'PASS' if ok else 'FAIL'}")
    return {
        "default_grid_points": len(points),
        "dense_grid_points": dense_points,
        "setdist_default_grid_seconds": setdist_seconds,
        "setdist_dense_grid_seconds": dense_seconds,
        "multiconfig_default_grid_seconds": multi_seconds,
        "speedup_setdist_vs_multiconfig": speedup,
        "speedup_floor": SETDIST_SPEEDUP_FLOOR,
        "dense_vs_default_ratio": ratio,
        "dense_ratio_ceiling": SETDIST_GRID_RATIO_CEIL,
        "rates_bit_identical_to_multiconfig": identical,
        "dense_grid_contains_default_points": contains,
        "pass": ok,
    }


def run_calib_suite(
    output: str, n: int = 2_000_000, profile_output: str = "BENCH_7.json"
) -> int:
    """Cold per-point vs batched calibration per policy; equal curves."""
    from repro.archsim.missmodel import measure_miss_model
    from repro.archsim.workloads import SPEC2000_LIKE

    floors = {
        "lru": CALIB_SPEEDUP_FLOOR,
        "fifo": NONLRU_CALIB_SPEEDUP_FLOOR,
        "random": NONLRU_CALIB_SPEEDUP_FLOOR,
    }
    policies = {}
    passed = True
    for policy, floor in floors.items():
        print(f"grid calibration ({n:,} accesses, default grids, "
              f"policy={policy}):")
        # profile_store="off" keeps this an engine measurement — a
        # resident surface would otherwise answer the multiconfig call
        # by slicing (that serving tier is benched separately, BENCH_7).
        legacy_seconds, legacy = _timed(lambda p=policy: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, use_disk_cache=False,
            engine="array", policy=p, profile_store="off",
        ))
        print(f"  per-point engine (legacy): {legacy_seconds:.3f} s")
        batched_seconds, batched = _timed(lambda p=policy: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, use_disk_cache=False,
            engine="multiconfig", policy=p, profile_store="off",
        ))
        print(f"  multiconfig engine:        {batched_seconds:.3f} s")

        identical = batched == legacy
        if not identical:
            print(f"FAIL: engines disagree on the calibrated curves "
                  f"(policy={policy}):\n"
                  f"  multiconfig: {batched}\n  per-point:   {legacy}",
                  file=sys.stderr)
        speedup = legacy_seconds / batched_seconds if batched_seconds else 0.0
        policy_pass = identical and speedup >= floor
        passed = passed and policy_pass
        print(f"  speedup: {speedup:.1f}x (floor {floor:.0f}x, curves "
              f"{'identical' if identical else 'DIVERGED'}, "
              f"{'PASS' if policy_pass else 'FAIL'})")
        policies[policy] = {
            "cold_per_point_seconds": legacy_seconds,
            "cold_multiconfig_seconds": batched_seconds,
            "speedup_multiconfig_vs_per_point": speedup,
            "speedup_floor": floor,
            "curves_bit_identical": identical,
            "pass": policy_pass,
        }

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_seconds, cold = _timed(lambda: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, cache_dir=cache_dir
        ))
        warm_seconds, warm = _timed(lambda: measure_miss_model(
            SPEC2000_LIKE, n_accesses=n, cache_dir=cache_dir
        ))
    assert warm == cold
    print(f"disk-memoized (lru): cold {cold_seconds:.3f} s, "
          f"warm {warm_seconds * 1e3:.1f} ms")

    setdist = bench_setdist(n)
    passed = passed and setdist["pass"]

    profile = bench_profile_store(n)
    passed = passed and profile["pass"]
    with open(profile_output, "w") as handle:
        json.dump(profile, handle, indent=2)
        handle.write("\n")
    print(f"profile-store report written to {profile_output}")

    lru_legacy = policies["lru"]["cold_per_point_seconds"]
    report = {
        "n_accesses": n,
        "policies": policies,
        "setdist": setdist,
        "profile_store": profile,
        "measured": {
            "grid_calibration_cold_disk_store": cold_seconds,
            "grid_calibration_warm_disk_load": warm_seconds,
        },
        "speedup": {
            "warm_vs_per_point": (
                lru_legacy / warm_seconds if warm_seconds else 0.0
            ),
            # Context only (the engine-only setdist numbers above are
            # the acceptance metric): full cold per-point calibration,
            # trace generation included, vs the per-set cascade.
            "per_point_vs_setdist_engine": (
                lru_legacy / setdist["setdist_default_grid_seconds"]
                if setdist["setdist_default_grid_seconds"] else 0.0
            ),
        },
        "acceptance": {
            "pass": passed,
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ncalib suite: {'PASS' if passed else 'FAIL'} "
          f"(" + ", ".join(
              f"{policy} {entry['speedup_multiconfig_vs_per_point']:.1f}x"
              for policy, entry in policies.items())
          + f", setdist {setdist['speedup_setdist_vs_multiconfig']:.1f}x"
          f" @ {setdist['dense_vs_default_ratio']:.2f}x dense ratio, "
          f"profile store {profile['speedup_warm_vs_cold']:.0f}x warm)")
    print(f"report written to {output}")
    return 0 if passed else 1


# --------------------------------------------------------------------------
# service suite (PR 3)
# --------------------------------------------------------------------------

#: Serving the same sweep without the daemon (direct library call at the
#: PR-2 commit): one component_tables build per request, no sharing.
SERVICE_BASELINE = {
    "sweep_cold": 0.2008,          # == component_tables_default cold build
    "sweep_per_request_at_c8": 0.2008,
}


def run_service_suite(output: str) -> int:
    import threading

    import loadgen
    from repro.service import ServiceConfig, ServiceClient, create_server

    server = create_server(ServiceConfig(port=0))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    port = server.bound_port
    print(f"service daemon on port {port}:")
    client = ServiceClient(port=port)
    body_cache = {"size_kb": 16, "name": "L1-16K"}
    vth = {"min": 0.2, "max": 0.5, "points": 7}
    tox = {"min": 10, "max": 14, "points": 5}
    try:
        cold, _ = _timed(lambda: client.sweep(body_cache, vth, tox))
        warm, _ = _timed(lambda: client.sweep(body_cache, vth, tox))
        print(f"  sweep (7x5 grid): cold {cold * 1e3:.1f} ms, "
              f"warm {warm * 1e3:.2f} ms")

        print("  loadgen: concurrency 8 x 25 requests ...")
        load = loadgen.generate_load("127.0.0.1", port, concurrency=8,
                                     requests=25)
        per_request = load["evaluate_grid_calls_per_request"]
        latency = load["latency_seconds"]
        print(f"    {load['total_requests']} requests, "
              f"{load['throughput_rps']:.0f} rps, mean "
              f"{latency['mean'] * 1e3:.1f} ms, p95 "
              f"{latency['p95'] * 1e3:.1f} ms")
        print(f"    engine work: {per_request:.3f} evaluate_grid calls "
              f"per request ({load['coalesced_requests']} coalesced, "
              f"{load['batches']} batches)")

        job_seconds, _ = _timed(lambda: client.wait_for_job(
            client.calibrate(workload="spec2000", n_accesses=100_000,
                             estimator="stackdist")["job_id"],
            timeout=300,
        ))
        print(f"  calibration job (100k, stackdist): "
              f"{job_seconds:.2f} s round trip")
        metrics = client.metrics()
    finally:
        client.close()
        server.shutdown()
        server.service.shutdown()
        server.server_close()

    report = {
        "baseline": SERVICE_BASELINE,
        "measured": {
            "sweep_cold": cold,
            "sweep_warm": warm,
            "calibration_job_roundtrip": job_seconds,
            "loadgen_c8": load,
        },
        "acceptance": {
            "evaluate_grid_calls_per_request": per_request,
            "target": "< 1.0 at concurrency 8",
            "pass": per_request < 1.0,
        },
        "speedup": {
            "sweep_warm_vs_direct_cold": (
                SERVICE_BASELINE["sweep_cold"] / warm if warm else 0.0
            ),
            "engine_work_per_request_vs_unbatched": (
                SERVICE_BASELINE["sweep_per_request_at_c8"]
                / (per_request * cold) if per_request else float("inf")
            ),
        },
        "latency_histograms": metrics["histograms"],
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nbatching acceptance: {per_request:.3f} evaluate_grid calls "
          f"per request ({'PASS' if per_request < 1.0 else 'FAIL'})")
    print(f"report written to {output}")
    return 0 if per_request < 1.0 else 1


# --------------------------------------------------------------------------
# campaign suite (PR 8)
# --------------------------------------------------------------------------

#: Acceptance floor for the campaign subsystem: one declarative campaign
#: must finish at least this many times faster than the same work issued
#: as a naive serial per-unit client loop with fixed 0.25 s job polling.
CAMPAIGN_SPEEDUP_FLOOR = 3.0

#: Fixed polling cadence of the naive loop — the pre-campaign client
#: default that the jittered long-poll replaced.
NAIVE_POLL_SECONDS = 0.25

#: Calibration depth of the campaign bench.
CAMPAIGN_N_ACCESSES = 100_000


def _campaign_bench_spec() -> dict:
    """A >=200-unit campaign covering every unit kind.

    3 workloads x 2 policies over a 22-point (size, assoc) matrix plus
    an AMAT block, 20 knob sweeps over two structures, and a 36-cell
    optimiser block: 230 units total, of which only the profiles, the
    sweep union-grid groups and the optimiser cells cost engine passes.
    """
    base_vths = [0.20, 0.225, 0.25, 0.275, 0.30,
                 0.325, 0.35, 0.375, 0.40, 0.425]
    sweeps = []
    for size_kb in (16, 32):
        for start in range(10):
            sweeps.append({
                "cache": {"size_kb": size_kb},
                "vth": base_vths[start:start + 3] or base_vths[-3:],
                "tox": [10.0, 12.0, 14.0],
                "components": ["array", "decoder"],
            })
    return {
        "name": "bench-campaign",
        "workloads": ["spec2000", "specweb", "tpcc"],
        "policies": ["lru", "fifo"],
        "calibration": {"n_accesses": CAMPAIGN_N_ACCESSES},
        "matrix": {
            "l1_sizes_kb": [4, 8, 16, 32, 64], "l1_assocs": [1, 2, 4],
            "l2_sizes_kb": [128, 256, 512, 1024, 2048, 4096, 8192],
            "l2_assocs": [8],
        },
        "amat": {
            "l1_sizes_kb": [4, 8, 16], "l1_assocs": [1, 2],
            "l2_sizes_kb": [1024], "l2_assocs": [8],
        },
        "constraints": {"max_amat_ps": 6000.0},
        "sweeps": sweeps,
        "optimize": {
            "caches": [{"size_kb": kb} for kb in (8, 16, 32, 64)],
            "schemes": ["1", "2", "3"],
            "target_ps": [900.0, 1200.0, 1500.0],
        },
    }


def _naive_campaign_loop(client, spec: dict) -> int:
    """Issue the campaign's units one request at a time, serially.

    This is the client loop the campaign subsystem replaces: every
    matrix point is its own calibrate job polled at a fixed 0.25 s
    cadence (no long-poll), every sweep and optimiser cell its own
    synchronous request.  Returns the number of requests issued.
    """
    requests = 0
    matrix = spec["matrix"]
    amat = spec["amat"]
    for workload in spec["workloads"]:
        for policy in spec["policies"]:
            for l1_kb in matrix["l1_sizes_kb"]:
                for l1_assoc in matrix["l1_assocs"]:
                    job = client.calibrate(
                        workload=workload, policy=policy,
                        n_accesses=CAMPAIGN_N_ACCESSES,
                        l1_grid_kb=[l1_kb], l1_assocs=[l1_assoc],
                        l2_grid_kb=[matrix["l2_sizes_kb"][0]],
                        l2_assocs=[matrix["l2_assocs"][0]],
                    )
                    requests += 1
                    if job["status"] != "done":
                        client.wait_for_job(
                            job["job_id"], timeout=600.0,
                            poll_interval=NAIVE_POLL_SECONDS,
                            long_poll=False,
                        )
            for l2_kb in matrix["l2_sizes_kb"]:
                for l2_assoc in matrix["l2_assocs"]:
                    job = client.calibrate(
                        workload=workload, policy=policy,
                        n_accesses=CAMPAIGN_N_ACCESSES,
                        l1_grid_kb=[matrix["l1_sizes_kb"][0]],
                        l1_assocs=[matrix["l1_assocs"][0]],
                        l2_grid_kb=[l2_kb], l2_assocs=[l2_assoc],
                    )
                    requests += 1
                    if job["status"] != "done":
                        client.wait_for_job(
                            job["job_id"], timeout=600.0,
                            poll_interval=NAIVE_POLL_SECONDS,
                            long_poll=False,
                        )
            for l1_kb in amat["l1_sizes_kb"]:
                for l1_assoc in amat["l1_assocs"]:
                    for l2_kb in amat["l2_sizes_kb"]:
                        for l2_assoc in amat["l2_assocs"]:
                            client.amat(
                                workload=workload, policy=policy,
                                l1_size_kb=l1_kb, l1_assoc=l1_assoc,
                                l2_size_kb=l2_kb, l2_assoc=l2_assoc,
                            )
                            requests += 1
    for sweep in spec["sweeps"]:
        client.sweep(sweep["cache"], sweep["vth"], sweep["tox"],
                     components=sweep["components"])
        requests += 1
    optimize = spec["optimize"]
    for cache in optimize["caches"]:
        for scheme in optimize["schemes"]:
            for target_ps in optimize["target_ps"]:
                client.optimize(cache, scheme, target_ps)
                requests += 1
    return requests


def _fresh_service(cache_dir: str):
    import threading

    from repro.service import ServiceConfig, create_server

    server = create_server(ServiceConfig(
        port=0, cache_dir=cache_dir, batch_window_seconds=0.005,
    ))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def run_campaign_suite(output: str) -> int:
    """One declarative campaign vs the naive per-unit client loop.

    Both sides get their own in-process daemon with a fresh cache
    directory, so neither inherits calibration state from the other.
    """
    import os

    from repro.service import ServiceClient

    spec = _campaign_bench_spec()
    print("campaign suite (fresh daemon + cache dir per side):")

    with tempfile.TemporaryDirectory() as scratch:
        server = _fresh_service(os.path.join(scratch, "campaign"))
        client = ServiceClient(port=server.bound_port, timeout=120.0)
        try:
            before = client.metrics()["counters"]
            campaign_seconds, final = _timed(
                lambda: client.run_campaign(spec, timeout=1200.0))
            after = client.metrics()["counters"]
        finally:
            client.close()
            server.shutdown()
            server.service.shutdown()
            server.server_close()
        if final["status"] != "done":
            print(f"FAIL: campaign ended {final['status']!r}: "
                  f"{final.get('failures')}", file=sys.stderr)
            return 1
        units = final["units"]
        engine_passes = final["engine_passes"]
        checkpoint_hits = (after.get("campaigns.checkpoint_hits", 0)
                           - before.get("campaigns.checkpoint_hits", 0))
        dedup_ratio = (units["total"] / engine_passes
                       if engine_passes else float("inf"))
        print(f"  campaign: {units['total']} units -> {engine_passes} "
              f"engine passes ({dedup_ratio:.1f} units per pass) in "
              f"{campaign_seconds:.2f} s")

        server = _fresh_service(os.path.join(scratch, "naive"))
        client = ServiceClient(port=server.bound_port, timeout=120.0)
        try:
            naive_seconds, naive_requests = _timed(
                lambda: _naive_campaign_loop(client, spec))
        finally:
            client.close()
            server.shutdown()
            server.service.shutdown()
            server.server_close()
        print(f"  naive loop: {naive_requests} serial requests "
              f"(fixed {NAIVE_POLL_SECONDS:.2f} s polling) in "
              f"{naive_seconds:.2f} s")

    speedup = naive_seconds / campaign_seconds if campaign_seconds else 0.0
    units_ok = units["total"] >= 200
    dedup_ok = engine_passes < units["total"]
    speed_ok = speedup >= CAMPAIGN_SPEEDUP_FLOOR
    passed = units_ok and dedup_ok and speed_ok
    print(f"  speedup: {speedup:.1f}x vs naive "
          f"(floor {CAMPAIGN_SPEEDUP_FLOOR:.0f}x) -> "
          f"{'PASS' if passed else 'FAIL'}")

    report = {
        "spec_name": spec["name"],
        "n_accesses": CAMPAIGN_N_ACCESSES,
        "units_total": units["total"],
        "units_done": units["done"],
        "units_failed": units["failed"],
        "units_reused": units["reused"],
        "units_deduped_in_spec": units["deduped"],
        "checkpoint_hits": checkpoint_hits,
        "engine_passes": engine_passes,
        "dedup_ratio_units_per_engine_pass": dedup_ratio,
        "campaign_wall_seconds": campaign_seconds,
        "naive_requests": naive_requests,
        "naive_poll_seconds": NAIVE_POLL_SECONDS,
        "naive_wall_seconds": naive_seconds,
        "speedup_campaign_vs_naive": speedup,
        "speedup_floor": CAMPAIGN_SPEEDUP_FLOOR,
        "acceptance": {
            "at_least_200_units": units_ok,
            "engine_passes_below_unit_count": dedup_ok,
            "speedup_at_floor": speed_ok,
            "pass": passed,
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ncampaign acceptance: {units['total']} units, "
          f"{engine_passes} engine passes, {speedup:.1f}x vs naive "
          f"({'PASS' if passed else 'FAIL'})")
    print(f"report written to {output}")
    return 0 if passed else 1


# --------------------------------------------------------------------------
# nodes suite (PR 10)
# --------------------------------------------------------------------------

#: Acceptance floor (PR 10): a node-sweep campaign served by the
#: evaluation-table cache must beat naive per-node recompute by >= 2x.
NODES_MIN_SPEEDUP = 2.0


def run_nodes_suite(output: str, smoke: bool = False) -> int:
    """Technology-node sweep: table-cache amortisation across the family.

    A node campaign prices every (node, style) grid several times — the
    scheme optimisers, the sweep endpoint, and the figure experiments
    all consume the same component tables.  The suite times two full
    passes over the family, once with the evaluation-table cache
    disabled (naive per-node recompute) and once enabled, and checks the
    amortised run wins by >= 2x.  It also asserts cache-key hygiene: one
    real engine evaluation per (node, style) member — never fewer, which
    would mean two nodes collided on one cache entry.
    """
    from repro.cache.cache_model import CacheModel
    from repro.cache.config import l1_config
    from repro.optimize.single_cache import component_tables
    from repro.optimize.space import default_space
    from repro.perf import cache_info, clear_cache
    from repro.technology.nodes import NODES, SCALING_STYLES, node_technology

    nodes = (65, 22, 8) if smoke else NODES
    styles = ("itrs",) if smoke else SCALING_STYLES
    # 65 nm is the shared anchor: both styles yield the same Technology
    # there, so the distinct-member count collapses the duplicate.
    members = []
    for style in styles:
        for node in nodes:
            technology = node_technology(node, style)
            if all(technology is not existing for _, _, existing in members):
                members.append((node, style, technology))
    # A campaign prices each grid at least thrice: the three scheme
    # optimisations alone share one table set, before sweeps/figures.
    passes = 3

    def one_pass(use_cache: bool) -> None:
        for node, style, technology in members:
            model = CacheModel(l1_config(16), technology=technology)
            space = default_space(technology=technology)
            component_tables(model, space, use_cache=use_cache)

    label = "nodes smoke" if smoke else "nodes suite"
    print(f"{label}: {len(members)} distinct (node, style) members, "
          f"{passes} passes")
    clear_cache()
    naive, _ = _timed(lambda: [one_pass(False) for _ in range(passes)])
    print(f"  naive per-node recompute: {naive:.2f} s")
    clear_cache()
    cached, _ = _timed(lambda: [one_pass(True) for _ in range(passes)])
    info = cache_info()
    print(f"  table-cache amortised:    {cached:.2f} s "
          f"({info.misses} misses, {info.hits} hits)")

    speedup = naive / cached
    distinct_ok = info.misses == len(members)
    passed = speedup >= NODES_MIN_SPEEDUP and distinct_ok
    report = {
        "members": [
            {"node": node, "style": style} for node, style, _ in members
        ],
        "passes": passes,
        "measured": {
            "naive_per_node_recompute_s": naive,
            "table_cache_amortised_s": cached,
        },
        "table_cache": {"hits": info.hits, "misses": info.misses},
        "speedup": speedup,
        "min_speedup": NODES_MIN_SPEEDUP,
        "distinct_entries_per_member": distinct_ok,
        "passed": passed,
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\n{label}: {'PASS' if passed else 'FAIL'} "
          f"({speedup:.1f}x vs naive, floor {NODES_MIN_SPEEDUP:.0f}x; "
          f"one cache entry per member: {distinct_ok})")
    print(f"report written to {output}")
    return 0 if passed else 1


# --------------------------------------------------------------------------
# scale suite (PR 9)
# --------------------------------------------------------------------------

#: Single-process service throughput at concurrency 8 recorded in
#: BENCH_3.json at the PR-3 commit — the rate the multi-worker
#: deployment must beat.
SCALE_BASELINE = {
    "single_process_rps": 169.7583,
    "source": "BENCH_3.json loadgen_c8 (PR 3, c8 x 25 sweep mix)",
}

#: Acceptance floor: the 4-worker deployment's steady-state rate on the
#: same closed-loop sweep mix must be at least this multiple of the
#: recorded single-process baseline.
SCALE_SPEEDUP_FLOOR = 2.5

#: Deployment sizes the full suite measures.
SCALE_WORKER_COUNTS = (1, 2, 4)


def _spawn_deployment(workers: int, scratch: str, timeout: float = 60.0):
    """Start ``serve --workers N`` as a subprocess; return (process, port)."""
    import os
    import subprocess

    port_file = os.path.join(scratch, f"port-{workers}")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = "src" + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", str(workers), "--port", "0",
         "--port-file", port_file,
         "--cache-dir", os.path.join(scratch, f"cache-{workers}")],
        env=environment,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + timeout
    while not os.path.exists(port_file):
        if process.poll() is not None:
            raise RuntimeError(
                f"deployment exited early:\n{process.stdout.read()}"
            )
        if time.time() > deadline:
            process.kill()
            process.wait()
            raise RuntimeError("deployment never wrote its port file")
        time.sleep(0.05)
    with open(port_file) as handle:
        return process, int(handle.read().strip())


def _drain_deployment(process) -> bool:
    """SIGTERM the deployment; True iff it drained to exit code 0."""
    import signal
    import subprocess

    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=20)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        return False
    return process.returncode == 0


def run_scale_suite(output: str, smoke: bool = False) -> int:
    """Forked multi-worker deployments vs the recorded single process.

    For each worker count the suite spawns the real supervisor
    (``serve --workers N``), runs the BENCH_3 sweep mix once cold (each
    worker pays its own in-memory table builds — the price of process
    isolation) and once at steady state, reading the merged
    ``/metrics?scope=cluster`` counters so work is counted no matter
    which worker served it, then SIGTERMs the fleet and requires a
    clean coordinated drain.

    This box has one core, so the headline is *not* CPU parallelism.
    It is (a) the sweep response cache — identical sweeps at steady
    state never re-enter the batcher — and (b) sidestepping the
    single-process handler-thread convoy: one worker serves the fully
    cached mix at ~190 rps while two forked workers serve it at
    ~1000 rps on the same core.  Both rates are reported honestly
    against the recorded single-process baseline.
    """
    import loadgen
    from repro.service.client import ServiceClient

    worker_counts = (2,) if smoke else SCALE_WORKER_COUNTS
    concurrency = 4 if smoke else 8
    requests = 5 if smoke else 25
    label = "scale smoke" if smoke else "scale suite"
    print(f"{label}: worker counts {worker_counts}, closed loop "
          f"c{concurrency} x {requests} per pass (cold + steady state):")

    measurements = {}
    drains_clean = True
    with tempfile.TemporaryDirectory() as scratch:
        for workers in worker_counts:
            process, port = _spawn_deployment(workers, scratch)
            probe = ServiceClient(port=port, timeout=30.0,
                                  connect_retries=8)
            probe.healthz()
            probe.close()
            cluster = workers > 1
            cold = loadgen.generate_load(
                "127.0.0.1", port, concurrency, requests, cluster=cluster
            )
            steady = loadgen.generate_load(
                "127.0.0.1", port, concurrency, requests, cluster=cluster
            )
            drained = _drain_deployment(process)
            drains_clean = drains_clean and drained
            measurements[workers] = {
                "cold": cold,
                "steady": steady,
                "drained_clean": drained,
            }
            print(f"  {workers} worker(s): cold "
                  f"{cold['throughput_rps']:.0f} rps "
                  f"({cold['evaluate_grid_calls_per_request']:.2f} "
                  f"engine calls/request), steady "
                  f"{steady['throughput_rps']:.0f} rps "
                  f"({steady['evaluate_grid_calls_per_request']:.2f} "
                  f"calls/request), drain "
                  f"{'clean' if drained else 'DIRTY'}")
            if cold["errors"] or steady["errors"]:
                print(f"FAIL: loadgen errors at {workers} workers: "
                      f"{(cold['errors'] + steady['errors'])[:3]}",
                      file=sys.stderr)
                return 1

    headline_workers = max(worker_counts)
    headline = measurements[headline_workers]
    expected = concurrency * requests
    complete = all(
        m[pass_name]["total_requests"] == expected
        for m in measurements.values()
        for pass_name in ("cold", "steady")
    )
    # Cold, every worker pays the engine once per unique body, so the
    # per-request rate only drops below 1.0 once the run is long enough
    # to amortise it (the full c8 x 25 shape is; the smoke shape is
    # not).  Steady state must be amortised at any shape.
    engine_ok = headline["steady"]["evaluate_grid_calls_per_request"] < 1.0
    if not smoke:
        engine_ok = (engine_ok and
                     headline["cold"]["evaluate_grid_calls_per_request"]
                     < 1.0)
    speedup = (headline["steady"]["throughput_rps"]
               / SCALE_BASELINE["single_process_rps"])

    if smoke:
        passed = complete and engine_ok and drains_clean
        print(f"scale smoke: {headline_workers}-worker round trip "
              f"{'PASS' if passed else 'FAIL'} "
              f"(requests complete: {complete}, engine amortised: "
              f"{engine_ok}, drains clean: {drains_clean})")
        if passed:
            print("OK")
        return 0 if passed else 1

    speed_ok = speedup >= SCALE_SPEEDUP_FLOOR
    passed = complete and engine_ok and drains_clean and speed_ok
    report = {
        "baseline": SCALE_BASELINE,
        "speedup_floor": SCALE_SPEEDUP_FLOOR,
        "load_shape": {"concurrency": concurrency,
                       "requests_per_worker_thread": requests,
                       "mix": "loadgen CACHE_POOL x AXIS_POOL sweeps"},
        "measured": {
            str(workers): measurement
            for workers, measurement in measurements.items()
        },
        "acceptance": {
            "headline_workers": headline_workers,
            "steady_rps": headline["steady"]["throughput_rps"],
            "speedup_vs_single_process": speedup,
            "speedup_at_floor": speed_ok,
            "engine_calls_per_request_below_one": engine_ok,
            "all_requests_served": complete,
            "drains_clean": drains_clean,
            "pass": passed,
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nscale acceptance: {headline_workers} workers steady at "
          f"{headline['steady']['throughput_rps']:.0f} rps = "
          f"{speedup:.1f}x the recorded single-process "
          f"{SCALE_BASELINE['single_process_rps']:.0f} rps "
          f"(floor {SCALE_SPEEDUP_FLOOR:.1f}x) -> "
          f"{'PASS' if passed else 'FAIL'}")
    print(f"report written to {output}")
    return 0 if passed else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="archsim",
                        choices=("archsim", "sweep", "service", "calib",
                                 "campaign", "scale", "nodes"),
                        help="which benchmark suite to run")
    parser.add_argument("--output", default=None,
                        help="JSON report path (default BENCH_2.json for "
                             "archsim, BENCH_1.json for sweep, BENCH_3.json "
                             "for service, BENCH_6.json for calib)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the sweep parallel-runner "
                             "bench")
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI regression gate; exits non-zero on "
                             "a >3x stack-distance regression.  With "
                             "--suite scale, runs the quick 2-worker "
                             "deployment round trip instead")
    arguments = parser.parse_args(argv)

    if arguments.smoke:
        if arguments.suite == "scale":
            return run_scale_suite(arguments.output or "BENCH_9.json",
                                   smoke=True)
        if arguments.suite == "nodes":
            return run_nodes_suite(arguments.output or "BENCH_10.json",
                                   smoke=True)
        return run_smoke()
    if arguments.suite == "scale":
        return run_scale_suite(arguments.output or "BENCH_9.json")
    if arguments.suite == "nodes":
        return run_nodes_suite(arguments.output or "BENCH_10.json")
    if arguments.suite == "sweep":
        return run_sweep_suite(arguments.output or "BENCH_1.json",
                               arguments.jobs)
    if arguments.suite == "service":
        return run_service_suite(arguments.output or "BENCH_3.json")
    if arguments.suite == "calib":
        return run_calib_suite(arguments.output or "BENCH_6.json")
    if arguments.suite == "campaign":
        return run_campaign_suite(arguments.output or "BENCH_8.json")
    return run_archsim_suite(arguments.output or "BENCH_2.json")


if __name__ == "__main__":
    sys.exit(main())
