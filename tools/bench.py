"""Timing bench for the vectorized sweep engine PR.

Run:  PYTHONPATH=src python tools/bench.py [--output BENCH_1.json] [--jobs N]

Times every registered experiment (E1..E7, serially, warm table cache
cleared first so each experiment pays its own grids), the coarse-grid
tuple problem, and the cold/warm component-table build, then writes the
measurements plus the speedups against the recorded pre-PR baselines to a
JSON report.

The baselines were measured on this machine at the seed commit, with the
same interpreter, before any vectorization: they are the denominator of
the PR's acceptance criteria (>= 5x on solve_tuple_problem, >= 3x on
run_all()).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.archsim.missmodel import calibrated_miss_model
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.experiments.runner import REGISTRY, run_experiment, run_many
from repro.optimize.single_cache import component_tables
from repro.optimize.space import coarse_space, default_space
from repro.optimize.tuple_problem import solve_tuple_problem
from repro.perf import cache_info, clear_cache

#: Pre-PR wall times (seconds), measured at the seed commit.
BASELINE = {
    "experiments": {
        "E1": 0.21,
        "E2": 0.04,
        "E3": 2.63,
        "E4": 2.17,
        "E5": 1.38,
        "E6": 7.90,
        "E7": 0.44,
    },
    "run_all": 14.77,
    "solve_tuple_problem_coarse": 108.94,
    "component_tables_default": 0.2008,
    "component_tables_coarse": 0.0865,
}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_experiments() -> dict:
    times = {}
    for experiment_id in sorted(REGISTRY):
        clear_cache()
        seconds, _ = _timed(lambda eid=experiment_id: run_experiment(eid))
        times[experiment_id] = seconds
        print(f"  {experiment_id}: {seconds:.2f} s "
              f"(baseline {BASELINE['experiments'][experiment_id]:.2f} s)")
    return times


def bench_tuple_problem() -> float:
    clear_cache()
    l1 = CacheModel(l1_config(16))
    l2 = CacheModel(l2_config(1024))
    miss_model = calibrated_miss_model("spec2000")
    seconds, _ = _timed(
        lambda: solve_tuple_problem(l1, l2, miss_model, space=coarse_space())
    )
    print(f"  solve_tuple_problem (coarse): {seconds:.2f} s "
          f"(baseline {BASELINE['solve_tuple_problem_coarse']:.2f} s)")
    return seconds


def bench_tables() -> dict:
    model = CacheModel(l1_config(16))
    out = {}
    for label, space in (("default", default_space()), ("coarse", coarse_space())):
        clear_cache()
        cold, _ = _timed(lambda: component_tables(model, space))
        warm, _ = _timed(lambda: component_tables(model, space))
        out[f"component_tables_{label}_cold"] = cold
        out[f"component_tables_{label}_warm"] = warm
        print(f"  component_tables ({label}): cold {cold:.4f} s, "
              f"warm {warm * 1e6:.0f} us")
    return out


def bench_run_all(jobs: int) -> dict:
    """Time run_all() serially (one process, shared warm table cache, as
    run_all really executes) and fanned out over workers."""
    ids = sorted(REGISTRY)
    clear_cache()
    serial, _ = _timed(lambda: run_many(ids, jobs=1))
    parallel, _ = _timed(lambda: run_many(ids, jobs=jobs))
    print(f"  run_all serial {serial:.2f} s "
          f"(baseline {BASELINE['run_all']:.2f} s), "
          f"--jobs {jobs} {parallel:.2f} s")
    return {"run_all": serial, f"run_all_jobs{jobs}": parallel}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_1.json",
                        help="JSON report path (default BENCH_1.json)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the parallel-runner bench")
    arguments = parser.parse_args(argv)

    print("experiments (isolated: cache cleared per experiment):")
    experiment_times = bench_experiments()
    print("tuple problem:")
    tuple_time = bench_tuple_problem()
    print("evaluation tables:")
    table_times = bench_tables()
    print("run_all:")
    run_all_times = bench_run_all(arguments.jobs)
    run_all_time = run_all_times["run_all"]

    report = {
        "baseline": BASELINE,
        "measured": {
            "experiments": experiment_times,
            "solve_tuple_problem_coarse": tuple_time,
            **table_times,
            **run_all_times,
        },
        "speedup": {
            "run_all": BASELINE["run_all"] / run_all_time,
            "solve_tuple_problem_coarse": (
                BASELINE["solve_tuple_problem_coarse"] / tuple_time
            ),
            "component_tables_default_cold": (
                BASELINE["component_tables_default"]
                / table_times["component_tables_default_cold"]
            ),
        },
        "table_cache": {
            "hits": cache_info().hits,
            "misses": cache_info().misses,
        },
    }
    with open(arguments.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nrun_all: {run_all_time:.2f} s "
          f"({report['speedup']['run_all']:.1f}x vs baseline)")
    print(f"tuple problem: {tuple_time:.2f} s "
          f"({report['speedup']['solve_tuple_problem_coarse']:.1f}x vs baseline)")
    print(f"report written to {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
