"""One-time calibration: measure miss-rate tables for the standard workloads.

Run:  PYTHONPATH=src python tools/calibrate_missmodel.py
Paste the printed CALIBRATED_TABLES body into repro/archsim/missmodel.py.

Uses the vectorized trace generator + the batched multi-configuration
engine (the same path ``measure_miss_model`` defaults to), which sweeps
the whole (level, size) grid in one pass over the trace — a full
2 M-access calibration of all three suites takes a few seconds.
"""
import argparse
import time

from repro.archsim.missmodel import measure_miss_model
from repro.archsim.workloads import STANDARD_WORKLOADS

N = 2_000_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-accesses", type=int, default=N)
    parser.add_argument("--jobs", type=int, default=None,
                        help="fan calibration points over N worker processes")
    parser.add_argument("--engine", default="multiconfig",
                        choices=("multiconfig", "array", "object"))
    parser.add_argument("--estimator", default="grid",
                        choices=("grid", "stackdist", "setdist"),
                        help="'grid' simulates every point; 'setdist' "
                             "answers the whole LRU grid bit-identically "
                             "from one per-set stack-distance pass; "
                             "'stackdist' is the fully-associative "
                             "approximation")
    parser.add_argument("--policy", default="lru",
                        choices=("lru", "fifo", "random"),
                        help="replacement policy at both levels (the "
                             "committed tables are LRU)")
    arguments = parser.parse_args()

    t0 = time.time()
    print("CALIBRATED_TABLES: Dict[str, MissRateModel] = {")
    for name, spec in STANDARD_WORKLOADS.items():
        model = measure_miss_model(
            spec,
            n_accesses=arguments.n_accesses,
            seed=1,
            jobs=arguments.jobs,
            engine=arguments.engine,
            estimator=arguments.estimator,
            policy=arguments.policy,
            use_disk_cache=False,
        )
        print(f'    "{name}": MissRateModel(')
        print(f'        workload="{name}",')
        print(f'        l1_curve=(')
        for size, rate in model.l1_curve:
            print(f'            ({size}, {rate:.5f}),')
        print(f'        ),')
        print(f'        l2_curve=(')
        for size, rate in model.l2_curve:
            print(f'            ({size}, {rate:.5f}),')
        print(f'        ),')
        print(f'    ),')
    print("}")
    print(f"# measured with n_accesses={arguments.n_accesses}, seed=1, "
          f"engine={arguments.engine}, estimator={arguments.estimator}, "
          f"policy={arguments.policy}, in {time.time()-t0:.0f}s")


if __name__ == "__main__":
    main()
