"""One-time calibration: measure miss-rate tables for the standard workloads.

Run:  PYTHONPATH=src python tools/calibrate_missmodel.py
Paste the printed CALIBRATED_TABLES body into repro/archsim/missmodel.py.

Uses the vectorized trace generator + the batched multi-configuration
engine (the same path ``measure_miss_model`` defaults to), which sweeps
the whole (level, size) grid in one pass over the trace — a full
2 M-access calibration of all three suites takes a few seconds.
"""
import argparse
import time

from repro.archsim.missmodel import measure_miss_model
from repro.archsim.workloads import STANDARD_WORKLOADS

N = 2_000_000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-accesses", type=int, default=N)
    parser.add_argument("--jobs", type=int, default=None,
                        help="fan calibration points over N worker processes")
    parser.add_argument("--engine", default="multiconfig",
                        choices=("multiconfig", "array", "object"))
    parser.add_argument("--estimator", default="grid",
                        choices=("grid", "stackdist", "setdist"),
                        help="'grid' simulates every point; 'setdist' "
                             "answers the whole LRU grid bit-identically "
                             "from one per-set stack-distance pass; "
                             "'stackdist' is the fully-associative "
                             "approximation")
    parser.add_argument("--policy", default="lru",
                        choices=("lru", "fifo", "random"),
                        help="replacement policy at both levels (the "
                             "committed tables are LRU)")
    parser.add_argument("--l1-assocs", default=None, metavar="A,A,...",
                        help="comma-separated L1 associativities to measure "
                             "alongside the reference shape (powers of two)")
    parser.add_argument("--l2-assocs", default=None, metavar="A,A,...",
                        help="comma-separated L2 associativities to measure "
                             "alongside the reference shape (powers of two)")
    arguments = parser.parse_args()

    def _assoc_axis(raw):
        if raw is None:
            return None
        return tuple(int(value) for value in raw.split(",") if value.strip())

    l1_assocs = _assoc_axis(arguments.l1_assocs)
    l2_assocs = _assoc_axis(arguments.l2_assocs)

    t0 = time.time()
    print("CALIBRATED_TABLES: Dict[str, MissRateModel] = {")
    for name, spec in STANDARD_WORKLOADS.items():
        model = measure_miss_model(
            spec,
            n_accesses=arguments.n_accesses,
            seed=1,
            jobs=arguments.jobs,
            engine=arguments.engine,
            estimator=arguments.estimator,
            policy=arguments.policy,
            l1_assocs=l1_assocs,
            l2_assocs=l2_assocs,
            use_disk_cache=False,
        )
        print(f'    "{name}": MissRateModel(')
        print(f'        workload="{name}",')
        print(f'        l1_curve=(')
        for size, rate in model.l1_curve:
            print(f'            ({size}, {rate:.5f}),')
        print(f'        ),')
        print(f'        l2_curve=(')
        for size, rate in model.l2_curve:
            print(f'            ({size}, {rate:.5f}),')
        print(f'        ),')
        for label, curves in (
            ("l1_assoc_curves", model.l1_assoc_curves),
            ("l2_assoc_curves", model.l2_assoc_curves),
        ):
            if not curves:
                continue
            print(f'        {label}=(')
            for assoc, curve in curves:
                print(f'            ({assoc}, (')
                for size, rate in curve:
                    print(f'                ({size}, {rate:.5f}),')
                print(f'            )),')
            print(f'        ),')
        print(f'    ),')
    print("}")
    print(f"# measured with n_accesses={arguments.n_accesses}, seed=1, "
          f"engine={arguments.engine}, estimator={arguments.estimator}, "
          f"policy={arguments.policy}, "
          f"l1_assocs={l1_assocs}, l2_assocs={l2_assocs}, "
          f"in {time.time()-t0:.0f}s")


if __name__ == "__main__":
    main()
