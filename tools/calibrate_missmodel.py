"""One-time calibration: measure miss-rate tables for the standard workloads.

Run:  python tools/calibrate_missmodel.py
Paste the printed CALIBRATED_TABLES body into repro/archsim/missmodel.py.
"""
import time
from repro.archsim.missmodel import measure_miss_model
from repro.archsim.workloads import STANDARD_WORKLOADS

N = 2_000_000
t0 = time.time()
print("CALIBRATED_TABLES: Dict[str, MissRateModel] = {")
for name, spec in STANDARD_WORKLOADS.items():
    model = measure_miss_model(spec, n_accesses=N, seed=1)
    print(f'    "{name}": MissRateModel(')
    print(f'        workload="{name}",')
    print(f'        l1_curve=(')
    for size, rate in model.l1_curve:
        print(f'            ({size}, {rate:.5f}),')
    print(f'        ),')
    print(f'        l2_curve=(')
    for size, rate in model.l2_curve:
        print(f'            ({size}, {rate:.5f}),')
    print(f'        ),')
    print(f'    ),')
print("}")
print(f"# measured with n_accesses={N}, seed=1, in {time.time()-t0:.0f}s")
