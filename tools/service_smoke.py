"""End-to-end smoke test of the service daemon — the CI gate.

Default mode spawns the real thing as a subprocess:

    PYTHONPATH=src python tools/service_smoke.py

It starts ``python -m repro serve`` on an ephemeral port, waits for the
port file, then asserts the service contract:

* ``/healthz`` answers,
* a burst of concurrent identical sweeps is coalesced into fewer engine
  calls than requests (the ``sweep.coalesced_requests`` counter is
  positive and ``evaluate_grid_calls_per_request < 1``),
* malformed and out-of-range bodies get structured 4xx envelopes and the
  daemon stays alive,
* a small FIFO-policy calibration job round-trips: the snapshot and
  result carry the policy label and the curves come back non-empty,
* a calibrate carrying an associativity axis computes the dense profile
  surface once (``served_from: "engine"``); a repeat over a sub-grid is
  answered synchronously from the profile store (``"status": "done"``
  on submission, ``served_from: "profile_store"``) with bit-identical
  rates,
* a campaign round-trips: submit -> long-poll progress -> cancel ->
  resubmit; the resubmission resumes from the cancelled run's
  checkpoints (``units.reused`` covers everything the first run
  completed) and finishes, an over-budget spec gets a structured 400
  naming the offending axis product, and the campaign counters appear
  in ``/metrics``,
* SIGTERM produces a graceful exit (code 0, jobs drained).

``--workers N`` runs the same contract against a forked multi-worker
deployment (``serve --workers N``): every counter assertion switches to
the merged ``/metrics?scope=cluster`` view (a single worker's registry
only sees the slice of traffic the kernel handed it), the cluster view
must show all N workers alive, and the SIGTERM check covers the
supervisor's coordinated drain.

``--in-process`` runs the same checks against an in-process server (no
subprocess, no signals) — this is the variant ``tools/bench.py --smoke``
embeds.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_SRC = "src"
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.service.client import ServiceClient, ServiceError  # noqa: E402

#: Concurrent identical sweeps fired to exercise the batcher.
BURST = 8


#: Workers flush snapshots to the cluster board every 0.25 s; cluster
#: counter scrapes wait out two flush periods first.
CLUSTER_FLUSH_WAIT_SECONDS = 0.6


def _fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _counters(client: ServiceClient, cluster: bool) -> dict:
    """One worker's counters, or the settled merged fleet counters."""
    if cluster:
        time.sleep(CLUSTER_FLUSH_WAIT_SECONDS)
        return client.metrics(scope="cluster")["merged"]["counters"]
    return client.metrics()["counters"]


def check_service(host: str, port: int, workers: int = 1) -> None:
    """Assert the service contract against a live daemon."""
    cluster = workers > 1
    client = ServiceClient(host=host, port=port, timeout=30.0,
                           connect_retries=4)

    health = client.healthz()
    if health.get("status") != "ok":
        _fail(f"/healthz returned {health}")
    print("  healthz: ok")

    if cluster:
        # Workers appear on the board at their first 0.25 s flush, so
        # give a freshly-booted fleet a moment to publish itself.
        deadline = time.time() + 10.0
        while True:
            view = client.metrics(scope="cluster")
            alive = [worker_id
                     for worker_id, record in view["workers"].items()
                     if record.get("alive")]
            if len(alive) >= workers:
                break
            if time.time() > deadline:
                _fail(f"cluster view shows {len(alive)} live workers, "
                      f"expected {workers}: {sorted(view['workers'])}")
            time.sleep(0.1)
        print(f"  cluster: {len(alive)} live workers on the board, "
              f"served by {view['served_by']}")

    # Concurrent identical sweeps must coalesce into one engine call.
    before = _counters(client, cluster)
    body = {
        "cache": {"size_kb": 16},
        "vth": {"min": 0.2, "max": 0.5, "points": 7},
        "tox": {"min": 10, "max": 14, "points": 5},
    }
    results, failures = [], []
    barrier = threading.Barrier(BURST)

    def fire():
        worker = ServiceClient(host=host, port=port, timeout=30.0,
                               connect_retries=4)
        barrier.wait()
        try:
            results.append(worker.request("POST", "/v1/sweep", body))
        except Exception as error:  # noqa: BLE001 - report, don't die
            failures.append(repr(error))
        finally:
            worker.close()

    threads = [threading.Thread(target=fire) for _ in range(BURST)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        _fail(f"sweep burst had failures: {failures[:3]}")
    first = json.dumps(results[0], sort_keys=True)
    if any(json.dumps(result, sort_keys=True) != first
           for result in results[1:]):
        _fail("coalesced sweeps returned different payloads")
    after = _counters(client, cluster)
    coalesced = (after.get("sweep.coalesced_requests", 0)
                 - before.get("sweep.coalesced_requests", 0))
    cache_hits = (after.get("sweep.response_cache_hits", 0)
                  - before.get("sweep.response_cache_hits", 0))
    requests = (after.get("requests.sweep", 0)
                - before.get("requests.sweep", 0))
    calls = (after.get("sweep.evaluate_grid_calls", 0)
             - before.get("sweep.evaluate_grid_calls", 0))
    batches = (after.get("sweep.batches", 0)
               - before.get("sweep.batches", 0))
    if requests != BURST:
        _fail(f"expected {BURST} sweep requests, metrics saw {requests}")
    if coalesced + cache_hits < 1:
        _fail(f"no coalescing observed across {BURST} concurrent sweeps")
    # One batch execution costs one evaluate_grid call per component
    # (4 for an unrestricted sweep); unbatched, every request would pay
    # all 4.  A single process folds the whole burst into ~1 batch; a
    # fleet pays at most one batch per worker the kernel spread the
    # burst across, so the cluster bound is per-batch, not per-request.
    calls_ceiling = 4 * batches if cluster else requests
    if batches >= requests or calls > calls_ceiling:
        _fail(f"{calls} evaluate_grid calls in {batches} batches for "
              f"{requests} requests — batching is not amortising "
              f"engine work")
    print(f"  batching: {requests} concurrent sweeps -> {batches} "
          f"batches, {calls} evaluate_grid calls ({coalesced} "
          f"coalesced, {cache_hits} response-cache hits)")

    # Malformed input: structured 4xx, daemon survives.
    bad_bodies = [
        ("not json at all", None),
        ("bad vth", {"cache": {"size_kb": 16}, "vth": [9.9], "tox": [12]}),
        ("unknown field", {"cache": {"size_kb": 16}, "vth": [0.3],
                           "tox": [12], "surprise": 1}),
    ]
    for label, payload in bad_bodies:
        try:
            if payload is None:
                import http.client

                connection = http.client.HTTPConnection(host, port, timeout=10)
                connection.request(
                    "POST", "/v1/sweep", body=b"{nope",
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                status = response.status
                envelope = json.loads(response.read())
                connection.close()
            else:
                client.request("POST", "/v1/sweep", payload)
                _fail(f"{label}: expected a 4xx, got a 2xx")
        except ServiceError as error:
            status, envelope = error.status, error.envelope
        if not 400 <= status < 500:
            _fail(f"{label}: expected 4xx, got {status}")
        if "error" not in envelope or "message" not in envelope["error"]:
            _fail(f"{label}: missing structured envelope: {envelope}")
    if client.healthz().get("status") != "ok":
        _fail("daemon unhealthy after malformed-input barrage")
    print(f"  validation: {len(bad_bodies)} malformed bodies -> structured "
          f"4xx, daemon alive")

    # A non-LRU calibration job must round-trip with its policy label.
    job = client.calibrate(workload="spec2000", n_accesses=20_000,
                           policy="fifo", l1_grid_kb=[4, 8],
                           l2_grid_kb=[128])
    done = client.wait_for_job(job["job_id"], timeout=120)
    if done.get("status") != "done":
        _fail(f"fifo calibration job ended {done.get('status')!r}: {done}")
    if done.get("policy") != "fifo":
        _fail(f"job snapshot lost its policy label: {done}")
    result = done.get("result", {})
    if result.get("policy") != "fifo":
        _fail(f"calibration result lost its policy label: {result}")
    if not result.get("l1_curve") or not result.get("l2_curve"):
        _fail(f"fifo calibration returned empty curves: {result}")
    print(f"  calibrate: fifo job done, policy label on snapshot and "
          f"result, {len(result['l1_curve'])}-point L1 curve")

    # Profile store: a calibrate with an assoc axis computes the dense
    # (size, assoc) surface once; a repeat over any sub-grid must then
    # be served synchronously from the store with identical rates.
    first = client.calibrate(workload="spec2000", n_accesses=20_000,
                             l1_grid_kb=[4, 8], l2_grid_kb=[128, 256],
                             l1_assocs=[1, 2], l2_assocs=[8])
    first_done = client.wait_for_job(first["job_id"], timeout=120)
    if first_done.get("status") != "done":
        _fail(f"assoc calibration job ended "
              f"{first_done.get('status')!r}: {first_done}")
    if first_done.get("served_from") != "engine":
        _fail(f"first assoc calibrate should have run the engine: "
              f"{first_done}")
    second = client.calibrate(workload="spec2000", n_accesses=20_000,
                              l1_grid_kb=[8], l2_grid_kb=[256],
                              l1_assocs=[1], l2_assocs=[8])
    if second.get("status") != "done":
        _fail(f"warm-store calibrate was not served synchronously: "
              f"{second}")
    second_done = client.job(second["job_id"])
    if second_done.get("served_from") != "profile_store":
        _fail(f"warm-store calibrate not labelled as store-served: "
              f"{second_done}")
    warm = second_done.get("result", {})
    if not warm.get("l1_assoc_curves"):
        _fail(f"store-served result lost its assoc curves: {warm}")
    cold_l1 = {size: rate
               for size, rate in first_done["result"]["l1_curve"]}
    for size, rate in warm.get("l1_curve", []):
        if cold_l1.get(size) != rate:
            _fail(f"store-served L1 rate diverged at {size} B: "
                  f"{rate} != {cold_l1.get(size)}")
    print("  profile store: assoc calibrate ran the engine once; repeat "
          "sub-grid served synchronously, rates identical")

    check_node_round_trip(client)
    check_campaigns(client, cluster=cluster)
    client.close()


def check_node_round_trip(client: ServiceClient) -> None:
    """Non-default technology node: sweep + optimize round trip.

    The same cache geometry at 22 nm must be served from the scaled
    node's technology (faster than 65 nm, never from a 65 nm cache
    entry), the optimum must land inside the 22 nm design box, and an
    unknown node must draw a structured 400 naming the family.
    """
    at_65 = client.request("POST", "/v1/sweep", {
        "cache": {"size_kb": 16}, "vth": [0.25], "tox": [10.5],
        "components": ["array"],
    })
    at_22 = client.request("POST", "/v1/sweep", {
        "cache": {"size_kb": 16}, "vth": [0.25], "tox": [10.5],
        "components": ["array"], "node": 22, "scaling_style": "cons",
    })
    if at_22.get("node") != 22 or at_22.get("scaling_style") != "cons":
        _fail(f"sweep response lost its node labels: {at_22}")
    delay_65 = at_65["components"]["array"]["delay_ps"][0][0]
    delay_22 = at_22["components"]["array"]["delay_ps"][0][0]
    if not delay_22 < delay_65:
        _fail(f"22 nm sweep not faster than 65 nm: "
              f"{delay_22} ps vs {delay_65} ps")

    optimum = client.request("POST", "/v1/optimize", {
        "cache": {"size_kb": 16}, "scheme": "2", "target_ps": 250,
        "node": 22, "scaling_style": "cons",
    })
    if optimum.get("node") != 22:
        _fail(f"optimize response lost its node label: {optimum}")
    for component, knob in optimum["assignment"].items():
        if not 8.5 - 1e-9 <= knob["tox_angstrom"] <= 11.9 + 1e-9:
            _fail(f"optimize {component} Tox {knob['tox_angstrom']} Å "
                  "outside the 22 nm cons box [8.5, 11.9]")

    try:
        client.request("POST", "/v1/sweep", {
            "cache": {"size_kb": 16}, "vth": [0.25], "tox": [10.5],
            "node": 14,
        })
        _fail("unknown node 14 was accepted")
    except ServiceError as error:
        if error.status != 400 or "65" not in str(error):
            _fail(f"unknown node: expected a 400 naming the family, "
                  f"got {error.status}: {error}")
    print(f"  nodes: 22 nm sweep {delay_22:.1f} ps < 65 nm "
          f"{delay_65:.1f} ps, optimum inside the 22 nm box, "
          "unknown node -> structured 400")


def check_campaigns(client: ServiceClient, cluster: bool = False) -> None:
    """Campaign round trip: submit -> progress -> cancel -> resume."""
    # An over-budget spec must be rejected up front with a structured
    # 400 naming the axis product, before any work is scheduled.
    fat = {
        "workloads": ["spec2000", "specweb", "tpcc"],
        "policies": ["lru", "fifo", "random"],
        "matrix": {},  # defaults: full L1/L2 grids
        "max_units": 50,
    }
    try:
        client.submit_campaign(fat)
        _fail("over-budget campaign was accepted")
    except ServiceError as error:
        if error.status != 400:
            _fail(f"over-budget campaign: expected 400, got {error.status}")
        message = error.envelope.get("error", {}).get("message", "")
        if "expands to" not in message or "limit" not in message:
            _fail(f"budget 400 does not name the expansion: {message!r}")

    spec = {
        "name": "smoke-campaign",
        "workloads": ["spec2000", "specweb"],
        "policies": ["lru"],
        "calibration": {"n_accesses": 60_000},
        "matrix": {"l1_sizes_kb": [4, 8, 16], "l1_assocs": [1, 2],
                   "l2_sizes_kb": [256], "l2_assocs": [8]},
        "optimize": {"caches": [{"size_kb": 16}], "schemes": ["1", "3"],
                     "target_ps": [900.0, 1100.0]},
    }
    first = client.submit_campaign(spec)
    campaign_id = first["campaign_id"]
    total = first["units"]["total"]
    if first["status"] not in ("running", "done"):
        _fail(f"campaign submission returned {first['status']!r}")
    # One long-poll progress read, then cancel mid-flight.
    progress = client.campaign(campaign_id, wait=0.2, results=False)
    if "units" not in progress or "results" in progress:
        _fail(f"progress snapshot malformed: {sorted(progress)}")
    cancelled = client.cancel_campaign(campaign_id)
    if cancelled["status"] not in ("cancelled", "done"):
        _fail(f"cancel left the campaign {cancelled['status']!r}")
    finished = cancelled["units"]["done"]

    # The resubmitted identical spec must resume from the cancelled
    # run's checkpoints: everything the first run completed comes back
    # as a reused unit, and the campaign runs to done.
    second = client.submit_campaign(spec)
    final = client.wait_for_campaign(second["campaign_id"], timeout=180.0)
    if final["status"] != "done":
        _fail(f"resubmitted campaign ended {final['status']!r}: "
              f"{final.get('failures')}")
    if final["units"]["total"] != total:
        _fail(f"resubmission changed the unit count: "
              f"{final['units']['total']} != {total}")
    if final["units"]["reused"] < finished:
        _fail(f"resubmission reused {final['units']['reused']} units but "
              f"the cancelled run had checkpointed {finished}")
    counters = _counters(client, cluster)
    for name in ("campaigns.submitted", "campaigns.units_done",
                 "campaigns.engine_passes"):
        if counters.get(name, 0) < 1:
            _fail(f"campaign counter {name} missing from /metrics")
    print(f"  campaigns: over-budget spec rejected with a structured 400; "
          f"cancel after {finished}/{total} units; resubmission reused "
          f"{final['units']['reused']} checkpointed units and finished "
          f"with {final['engine_passes']} engine passes")


def run_in_process() -> int:
    from repro.service import ServiceConfig, create_server

    # A scratch cache dir keeps the fresh-then-served profile-store
    # assertions deterministic: the default disk cache would hand the
    # first assoc calibrate a surface left over from an earlier run.
    with tempfile.TemporaryDirectory() as scratch:
        server = create_server(ServiceConfig(
            port=0, cache_dir=os.path.join(scratch, "cache")
        ))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"service smoke (in-process, port {server.bound_port}):")
        try:
            check_service("127.0.0.1", server.bound_port)
        finally:
            server.shutdown()
            summary = server.service.shutdown()
            server.server_close()
    print(f"  shutdown: drained={summary['drained']} "
          f"cancelled={summary['cancelled']}")
    print("OK")
    return 0


def run_subprocess(timeout: float = 60.0, workers: int = 1) -> int:
    with tempfile.TemporaryDirectory() as scratch:
        port_file = os.path.join(scratch, "port")
        environment = dict(os.environ)
        environment["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH") else ""
        )
        command = [sys.executable, "-m", "repro", "serve", "--port", "0",
                   "--port-file", port_file,
                   "--cache-dir", os.path.join(scratch, "cache")]
        if workers > 1:
            command += ["--workers", str(workers)]
        process = subprocess.Popen(
            command,
            env=environment,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.time() + timeout
            while not os.path.exists(port_file):
                if process.poll() is not None:
                    _fail(f"daemon exited early:\n{process.stdout.read()}")
                if time.time() > deadline:
                    _fail("daemon never wrote its port file")
                time.sleep(0.05)
            with open(port_file) as handle:
                port = int(handle.read().strip())
            label = (f"supervisor pid {process.pid}, {workers} workers"
                     if workers > 1 else f"subprocess pid {process.pid}")
            print(f"service smoke ({label}, port {port}):")
            check_service("127.0.0.1", port, workers=workers)
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                _fail("daemon did not exit within 15 s of SIGTERM")
            output = process.stdout.read()
            if process.returncode != 0:
                _fail(f"daemon exited {process.returncode} on SIGTERM:\n"
                      f"{output}")
            if "shutdown complete" not in output:
                _fail(f"no graceful-shutdown line in daemon output:\n"
                      f"{output}")
            print("  sigterm: exit 0, graceful shutdown confirmed")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--in-process", action="store_true",
                        help="run against an in-process server (no "
                             "subprocess, no SIGTERM check)")
    parser.add_argument("--workers", type=int, default=1,
                        help="run the subprocess daemon with this many "
                             "forked workers and assert the contract "
                             "through the cluster metrics view "
                             "(default 1; incompatible with "
                             "--in-process)")
    arguments = parser.parse_args(argv)
    if arguments.in_process:
        if arguments.workers > 1:
            parser.error("--workers requires the subprocess mode")
        return run_in_process()
    return run_subprocess(workers=arguments.workers)


if __name__ == "__main__":
    sys.exit(main())
