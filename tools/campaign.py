"""Submit, watch and cancel declarative DSE campaigns from the shell.

Run against an already-running daemon:

    PYTHONPATH=src python -m repro serve --port 8023 &
    PYTHONPATH=src python tools/campaign.py examples/campaign.yaml \
        --port 8023

or fully self-contained (spawns an in-process server on an ephemeral
port, runs the campaign, and shuts the server down):

    PYTHONPATH=src python tools/campaign.py spec.json --self-contained

The spec file may be JSON or a small YAML subset (see
``parse_spec_text``): indentation-based mappings, ``- `` list items
(list-item mappings continue two columns past the dash), inline
``[a, b, c]`` lists, JSON scalars, and full-line ``#`` comments.  Other
modes:

    tools/campaign.py --status <id>    one progress snapshot
    tools/campaign.py --cancel <id>    cancel and print the snapshot

While waiting, the tool long-polls ``GET /v1/campaigns/<id>?wait=`` and
prints a progress line whenever the unit counts move.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Tuple

REPO_SRC = "src"
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


# --------------------------------------------------------------------------
# YAML-subset parsing (no external dependencies)
# --------------------------------------------------------------------------

def parse_spec_text(text: str) -> dict:
    """Parse a campaign spec: JSON, or an indentation-based YAML subset.

    The subset covers what campaign specs need and nothing more:
    ``key: value`` mappings nested by indentation, ``- item`` lists
    (a ``- key: value`` item opens a mapping whose further keys sit two
    columns past the dash), inline ``[a, b, c]`` lists, JSON scalars
    (numbers, ``true``/``false``/``null``, quoted strings), bare strings,
    and full-line ``#`` comments.  Tabs and inline comments are not
    supported.
    """
    stripped = text.lstrip()
    if not stripped:
        raise ValueError("empty spec file")
    if stripped.startswith("{"):
        return json.loads(text)
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        if "\t" in raw:
            raise ValueError("tabs are not supported; indent with spaces")
        lines.append((len(raw) - len(raw.lstrip(" ")), raw.strip()))
    value, index = _parse_block(lines, 0)
    if index != len(lines):
        raise ValueError(f"could not parse line: {lines[index][1]!r}")
    if not isinstance(value, dict):
        raise ValueError("a campaign spec must be a mapping at top level")
    return value


def _parse_block(lines, index):
    indent = lines[index][0]
    if lines[index][1] == "-" or lines[index][1].startswith("- "):
        return _parse_list(lines, index, indent)
    return _parse_dict(lines, index, indent)


def _parse_list(lines, index, indent):
    items = []
    while index < len(lines) and lines[index][0] == indent:
        text = lines[index][1]
        if not (text == "-" or text.startswith("- ")):
            break
        rest = text[1:].strip()
        if not rest:
            index += 1
            if index < len(lines) and lines[index][0] > indent:
                value, index = _parse_block(lines, index)
            else:
                value = None
            items.append(value)
        elif ":" in rest and not rest.startswith(("[", "{", '"', "'")):
            # "- key: ..." opens a mapping; splice the remainder back in
            # as a virtual line two columns deeper and parse it there.
            lines[index] = (indent + 2, rest)
            value, index = _parse_dict(lines, index, indent + 2)
            items.append(value)
        else:
            items.append(_parse_scalar(rest))
            index += 1
    return items, index


def _parse_dict(lines, index, indent):
    out = {}
    while index < len(lines) and lines[index][0] == indent:
        text = lines[index][1]
        if text == "-" or text.startswith("- "):
            break
        key, sep, value_text = text.partition(":")
        if not sep:
            raise ValueError(f"expected 'key: value', got {text!r}")
        key = key.strip().strip("'\"")
        value_text = value_text.strip()
        index += 1
        if value_text:
            out[key] = _parse_scalar(value_text)
        elif index < len(lines) and lines[index][0] > indent:
            out[key], index = _parse_block(lines, index)
        else:
            out[key] = None
    return out, index


def _parse_scalar(token: str):
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part.strip()) for part in inner.split(",")]
    try:
        return json.loads(token)
    except ValueError:
        return token.strip("'\"")


# --------------------------------------------------------------------------
# progress / report rendering
# --------------------------------------------------------------------------

def _progress_line(snapshot: dict) -> str:
    units = snapshot["units"]
    return (f"  [{snapshot['status']}] "
            f"{units['done']}/{units['total']} units done "
            f"({units['reused']} reused, {units['running']} running, "
            f"{units['failed']} failed), "
            f"{snapshot['engine_passes']} engine passes")


def print_report(snapshot: dict) -> None:
    units = snapshot["units"]
    passes = snapshot["engine_passes"]
    print(f"campaign {snapshot['campaign_id']} ({snapshot['name']}): "
          f"{snapshot['status']}")
    print(f"  units: {units['total']} total, {units['done']} done, "
          f"{units['failed']} failed, {units['cancelled']} cancelled")
    print(f"  reuse: {units['reused']} from checkpoints, "
          f"{units['deduped']} deduplicated in-spec")
    if passes:
        print(f"  engine passes: {passes} "
              f"({units['total'] / passes:.1f} units per pass)")
    else:
        print("  engine passes: 0 (served entirely from checkpoints)")
    summary = snapshot.get("summary") or {}
    best = summary.get("best_amat")
    if best:
        print(f"  best AMAT: {best['amat_ps']:.1f} ps at "
              f"L1 {best['l1_size_kb']:g}K/{best['l1_assoc']}-way, "
              f"L2 {best['l2_size_kb']:g}K/{best['l2_assoc']}-way "
              f"({best['workload']}/{best['policy']}, "
              f"{best['total_leakage_mw']:.3f} mW leakage)")
    for kind, entries in sorted((snapshot.get("results") or {}).items()):
        print(f"  results[{kind}]: {len(entries)} entries")
    for unit_id, message in sorted(
            (snapshot.get("failures") or {}).items()):
        print(f"  FAILED {unit_id}: {message}", file=sys.stderr)


def watch(client: ServiceClient, campaign_id: str, timeout: float) -> dict:
    """Long-poll until terminal, printing a line whenever counts move."""
    deadline = time.monotonic() + timeout
    last = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"campaign {campaign_id} still running after "
                f"{timeout:.0f} s")
        snapshot = client.campaign(
            campaign_id, wait=min(10.0, remaining), results=False)
        line = _progress_line(snapshot)
        if line != last:
            print(line)
            last = line
        if snapshot["status"] in ("done", "failed", "cancelled"):
            return client.campaign(campaign_id)


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spec", nargs="?",
                        help="campaign spec file (JSON or YAML subset); "
                             "'-' reads stdin")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument("--self-contained", action="store_true",
                        help="spawn an in-process server on an ephemeral "
                             "port instead of targeting a running daemon")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for completion (default 600)")
    parser.add_argument("--no-wait", action="store_true",
                        help="submit and print the campaign id, don't wait")
    parser.add_argument("--status", metavar="ID",
                        help="print one progress snapshot and exit")
    parser.add_argument("--cancel", metavar="ID",
                        help="cancel a campaign and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit the final snapshot as JSON on stdout")
    arguments = parser.parse_args(argv)

    modes = [bool(arguments.spec), bool(arguments.status),
             bool(arguments.cancel)]
    if sum(modes) != 1:
        parser.error("give exactly one of: a spec file, --status, --cancel")
    if arguments.self_contained and not arguments.spec:
        parser.error("--self-contained only makes sense with a spec file")

    server = None
    host, port = arguments.host, arguments.port
    if arguments.self_contained:
        import tempfile
        import threading

        from repro.service import ServiceConfig, create_server

        scratch = tempfile.mkdtemp(prefix="repro-campaign-")
        server = create_server(ServiceConfig(port=0, cache_dir=scratch))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = "127.0.0.1", server.bound_port
        print(f"self-contained server on port {port}", file=sys.stderr)

    client = ServiceClient(host=host, port=port, timeout=60.0)
    try:
        if arguments.status:
            snapshot = client.campaign(arguments.status)
        elif arguments.cancel:
            snapshot = client.cancel_campaign(arguments.cancel)
        else:
            if arguments.spec == "-":
                text = sys.stdin.read()
            else:
                with open(arguments.spec) as handle:
                    text = handle.read()
            spec = parse_spec_text(text)
            submitted = client.submit_campaign(spec)
            print(f"submitted {submitted['campaign_id']}: "
                  f"{submitted['units']['total']} units "
                  f"({submitted['units']['reused']} already checkpointed)",
                  file=sys.stderr)
            if arguments.no_wait and not arguments.self_contained:
                snapshot = submitted
            elif submitted["status"] in ("done", "failed", "cancelled"):
                snapshot = client.campaign(submitted["campaign_id"])
            else:
                snapshot = watch(client, submitted["campaign_id"],
                                 arguments.timeout)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        detail = error.envelope.get("error", {})
        if detail.get("type"):
            print(f"  type: {detail['type']}", file=sys.stderr)
        return 1
    finally:
        client.close()
        if server is not None:
            server.shutdown()
            server.service.shutdown()
            server.server_close()

    if arguments.json:
        json.dump(snapshot, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print_report(snapshot)
    return 0 if snapshot.get("status") in ("done", "running", "queued",
                                           "cancelled") else 1


if __name__ == "__main__":
    sys.exit(main())
