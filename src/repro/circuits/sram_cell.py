"""The 6T SRAM storage cell.

A standard six-transistor cell: cross-coupled inverters (two NMOS
pull-downs, two PMOS pull-ups) plus two NMOS access transistors.  The cell
is the paper's protagonist — "a large number of potentially high-leakage
cross-coupled inverters integrated in great numbers" — so its standby
leakage is modelled transistor-by-transistor for a stored bit with the bit
lines precharged high:

==================  =========  ==============================  ===========
device              state      subthreshold                    gate tunnel
==================  =========  ==============================  ===========
pull-down ('1' nd)  ON         none (channel on)               full area
pull-down ('0' nd)  OFF        Vds = Vdd                       edge only
pull-up   ('0' nd)  OFF        Vds = Vdd (hole branch)         edge only
pull-up   ('1' nd)  ON         none                            full (PMOS)
access    ('0' nd)  OFF        Vds = Vdd (bit line high)       edge only
access    ('1' nd)  OFF        Vds ~ 0 -> negligible           edge only
==================  =========  ==============================  ===========

Cell transistor widths follow the Tox co-scaling rule (Section 2): thicker
oxide means longer channels, and cell widths scale proportionally to keep
the read-stability beta ratio, so the cell grows in both dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.devices.mosfet import Mosfet, Polarity
from repro.devices import delay as _delay

#: Classic 6T width ratios in units of the minimum width.
PULL_DOWN_RATIO = 2.0
ACCESS_RATIO = 1.3
PULL_UP_RATIO = 1.0

#: Series de-rating of the read current through access + pull-down.
READ_SERIES_FACTOR = 0.7


@dataclass(frozen=True)
class SramCell:
    """A 6T cell bound to a technology and Tox-scaling rule.

    The cell itself is knob-free; every query takes the (Vth, Tox)
    assignment so one cell object can be evaluated across the whole design
    grid.
    """

    technology: Technology
    rule: ToxScalingRule

    def _devices(self, vth: float, tox: float):
        """Return the six sized transistors at the given knobs."""
        geometry = self.rule.geometry(tox)
        tech = self.technology
        scale = geometry.width_scale

        def nmos(ratio: float) -> Mosfet:
            return Mosfet(
                polarity=Polarity.NMOS,
                width=ratio * tech.wmin * scale,
                lgate=geometry.lgate_drawn,
                leff=geometry.leff,
                vth=vth,
                tox=tox,
            )

        def pmos(ratio: float) -> Mosfet:
            return Mosfet(
                polarity=Polarity.PMOS,
                width=ratio * tech.wmin * scale,
                lgate=geometry.lgate_drawn,
                leff=geometry.leff,
                vth=vth,
                tox=tox,
            )

        return {
            "pull_down": nmos(PULL_DOWN_RATIO),
            "pull_up": pmos(PULL_UP_RATIO),
            "access": nmos(ACCESS_RATIO),
        }

    # -- leakage ----------------------------------------------------------

    def standby_leakage_current(
        self, vth: float, tox: float, gate_enabled: bool = True
    ) -> float:
        """Return total standby leakage current (A) of one stored bit."""
        tech = self.technology
        d = self._devices(vth, tox)
        total = 0.0
        # OFF pull-down on the '0' node.
        total += d["pull_down"].total_standby_leakage(
            tech, conducting=False, gate_enabled=gate_enabled
        )
        # ON pull-down on the '1' node: gate tunnelling only.
        total += d["pull_down"].total_standby_leakage(
            tech, conducting=True, gate_enabled=gate_enabled
        )
        # OFF pull-up, ON pull-up.
        total += d["pull_up"].total_standby_leakage(
            tech, conducting=False, gate_enabled=gate_enabled
        )
        total += d["pull_up"].total_standby_leakage(
            tech, conducting=True, gate_enabled=gate_enabled
        )
        # Access on the '0' node: full drain bias from the precharged bit line.
        total += d["access"].total_standby_leakage(
            tech, conducting=False, gate_enabled=gate_enabled
        )
        # Access on the '1' node: Vds ~ 0, only edge gate tunnelling.
        total += d["access"].gate_leakage(
            tech, conducting=False, gate_enabled=gate_enabled
        )
        return total

    def standby_leakage_power(
        self, vth: float, tox: float, gate_enabled: bool = True
    ) -> float:
        """Return standby leakage power (W) of one stored bit."""
        return (
            self.standby_leakage_current(vth, tox, gate_enabled=gate_enabled)
            * self.technology.vdd
        )

    # -- read path --------------------------------------------------------

    def read_current(self, vth: float, tox: float) -> float:
        """Return the bit-line discharge current (A) during a read.

        The series access + pull-down pair is de-rated from the weaker
        device's saturation current.
        """
        tech = self.technology
        d = self._devices(vth, tox)
        i_access = d["access"].on_current(tech)
        i_pull_down = d["pull_down"].on_current(tech)
        return READ_SERIES_FACTOR * np.minimum(i_access, i_pull_down)

    # -- loads presented to the array -------------------------------------

    def wordline_load(self, tox: float, vth: float = None) -> float:
        """Return the word-line capacitance (F) contributed by one cell.

        Two access-transistor gates.  ``vth`` is accepted for signature
        symmetry but unused — gate capacitance has no Vth dependence.
        """
        geometry = self.rule.geometry(tox)
        width = ACCESS_RATIO * self.technology.wmin * geometry.width_scale
        return 2.0 * _delay.gate_capacitance(
            self.technology, width, geometry.lgate_drawn, tox
        )

    def bitline_load(self, tox: float) -> float:
        """Return the bit-line capacitance (F) contributed by one cell.

        One access-transistor junction plus the wire running past the cell.
        """
        geometry = self.rule.geometry(tox)
        width = ACCESS_RATIO * self.technology.wmin * geometry.width_scale
        junction = _delay.junction_capacitance(self.technology, width)
        wire = self.technology.wire_cap_per_m * geometry.cell_height
        return junction + wire

    # -- geometry ----------------------------------------------------------

    def area(self, tox: float) -> float:
        """Return the cell footprint (m^2) at the given oxide thickness."""
        return self.rule.cell_area(tox)

    def height(self, tox: float) -> float:
        """Return the cell height (m) — the bit-line pitch per row."""
        return self.rule.geometry(tox).cell_height

    def width(self, tox: float) -> float:
        """Return the cell width (m) — the word-line pitch per column."""
        return self.rule.geometry(tox).cell_width

    def validate(self) -> None:
        """Sanity-check that the size ratios give a stable cell.

        Read stability requires the pull-down to be stronger than the
        access device (beta ratio > 1); writability requires the access to
        be stronger than the pull-up.
        """
        if PULL_DOWN_RATIO <= ACCESS_RATIO:
            raise CircuitError("6T cell is read-unstable: beta ratio <= 1")
        if ACCESS_RATIO <= PULL_UP_RATIO:
            raise CircuitError("6T cell is unwritable: access weaker than pull-up")
