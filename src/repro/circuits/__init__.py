"""Circuit-level substrate: the four cache components of Section 3.

The paper decomposes a cache into four components — memory cell array with
sense amplifiers, row decoder, address bus drivers, and data bus drivers —
and models each one's total leakage and delay independently.  This package
implements those components structurally (transistor populations sized in
units of the minimum width, evaluated under any (Vth, Tox) assignment) on
top of :mod:`repro.devices`:

* :mod:`~repro.circuits.logical_effort` — RC stage chains and geometric
  buffer-chain sizing for delay estimation;
* :mod:`~repro.circuits.wires` — distributed-RC metal wires (Elmore);
* :mod:`~repro.circuits.sram_cell` — the 6T storage cell;
* :mod:`~repro.circuits.sense_amp` — latch-type sense amplifier;
* :mod:`~repro.circuits.decoder` — predecode + word-line driver row decoder;
* :mod:`~repro.circuits.drivers` — address/data bus driver chains.

Every block answers the same three questions at a given (Vth, Tox):
standby leakage power (W), critical-path delay contribution (s), and
switched energy per access (J).
"""

from repro.circuits.logical_effort import (
    RcStage,
    chain_delay,
    optimal_buffer_chain,
    BufferChain,
)
from repro.circuits.wires import Wire
from repro.circuits.sram_cell import SramCell
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.decoder import RowDecoder
from repro.circuits.drivers import BusDriver

__all__ = [
    "RcStage",
    "chain_delay",
    "optimal_buffer_chain",
    "BufferChain",
    "Wire",
    "SramCell",
    "SenseAmplifier",
    "RowDecoder",
    "BusDriver",
]
