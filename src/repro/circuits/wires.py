"""Distributed-RC metal wire model.

Word lines, bit lines and buses are modelled as uniform RC lines with the
per-unit-length parasitics of the technology's mid-level metal.  The delay
of a driver R_d pushing a signal through a distributed line of total
resistance R_w and capacitance C_w into a lumped far-end load C_l follows
the Elmore form::

    t = 0.69 * (R_d * (C_w + C_l) + R_w * (C_w / 2 + C_l))

Wires are Tox-*independent* — their parasitics are set by metal geometry,
not by the transistor oxide.  That independence is what dilutes the Tox
delay sensitivity of wire-dominated paths relative to gate-dominated ones,
and it contributes to the near-linear Tox-delay trend the paper fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.circuits.logical_effort import ELMORE_LN2


@dataclass(frozen=True)
class Wire:
    """A uniform RC wire of a given length.

    Attributes
    ----------
    length:
        Physical length (m).
    res_per_m / cap_per_m:
        Per-unit-length parasitics (ohm/m, F/m).
    """

    length: float
    res_per_m: float
    cap_per_m: float

    def __post_init__(self) -> None:
        if self.length < 0:
            raise CircuitError(f"wire length must be >= 0, got {self.length}")
        if self.res_per_m < 0 or self.cap_per_m < 0:
            raise CircuitError(
                "wire parasitics must be non-negative, got "
                f"r={self.res_per_m}, c={self.cap_per_m}"
            )

    @classmethod
    def from_technology(cls, technology: Technology, length: float) -> "Wire":
        """Build a wire with the technology's mid-level metal parasitics."""
        return cls(
            length=length,
            res_per_m=technology.wire_res_per_m,
            cap_per_m=technology.wire_cap_per_m,
        )

    @property
    def resistance(self) -> float:
        """Total wire resistance (ohm)."""
        return self.res_per_m * self.length

    @property
    def capacitance(self) -> float:
        """Total wire capacitance (F)."""
        return self.cap_per_m * self.length

    def elmore_delay(self, driver_resistance: float, load_capacitance: float) -> float:
        """Return the 50 %-point delay (s) through this wire.

        Parameters
        ----------
        driver_resistance:
            Effective resistance (ohm) of the gate driving the near end.
        load_capacitance:
            Lumped load (F) at the far end.
        """
        if not isinstance(driver_resistance, np.ndarray) and not isinstance(load_capacitance, np.ndarray):
            if driver_resistance < 0 or load_capacitance < 0:
                raise CircuitError(
                    "driver resistance and load capacitance must be >= 0, got "
                    f"R={driver_resistance}, C={load_capacitance}"
                )
        elif np.any(np.less(driver_resistance, 0)) or np.any(
            np.less(load_capacitance, 0)
        ):
            raise CircuitError(
                "driver resistance and load capacitance must be >= 0, got "
                f"R={driver_resistance}, C={load_capacitance}"
            )
        return ELMORE_LN2 * (
            driver_resistance * (self.capacitance + load_capacitance)
            + self.resistance * (0.5 * self.capacitance + load_capacitance)
        )
