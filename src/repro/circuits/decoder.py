"""Row decoder: predecoders, row NAND gates and word-line drivers.

The decoder turns ``log2(n_rows)`` address bits into a one-hot word-line
pulse.  Structure (the standard CACTI-style organisation):

1. **Predecode** — address bits are grouped in pairs (last group may be a
   triple) and each group drives a bank of NAND gates producing
   ``2^group`` one-hot predecode lines.
2. **Row gates** — every row has a NAND combining one line from each
   predecode group.
3. **Word-line driver** — a geometric buffer chain per row sized to drive
   the word-line wire plus the access-gate load of every cell in the row.

Leakage notes: in standby exactly one input pattern is absent, so *all*
row NANDs idle with their series NMOS stacks OFF — the decoder is where
the stack effect (:mod:`repro.devices.stack`) pays off, and the ablation
bench quantifies it.  The driver chains are sized for speed and dominate
the decoder's gate-tunnelling budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.units import is_power_of_two, log2_int
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.devices.mosfet import Mosfet, Polarity
from repro.devices import delay as _delay
from repro.circuits.logical_effort import ELMORE_LN2, optimal_buffer_chain
from repro.circuits.wires import Wire

#: NAND transistor width in units of minimum width (series devices are
#: upsized to compensate stack resistance).
NAND_NMOS_RATIO = 2.0
NAND_PMOS_RATIO = 2.0


def predecode_groups(n_bits: int) -> List[int]:
    """Split ``n_bits`` address bits into predecode group sizes (2s and 3s).

    >>> predecode_groups(7)
    [2, 2, 3]
    >>> predecode_groups(4)
    [2, 2]
    >>> predecode_groups(1)
    [1]
    """
    if n_bits < 1:
        raise CircuitError(f"decoder needs at least 1 address bit, got {n_bits}")
    groups: List[int] = []
    remaining = n_bits
    while remaining > 0:
        if remaining == 3 or remaining == 1:
            groups.append(remaining)
            remaining = 0
        else:
            groups.append(2)
            remaining -= 2
    return groups


@dataclass(frozen=True)
class DecoderCost:
    """Evaluation of a decoder at one knob point."""

    delay: float
    leakage_current: float
    dynamic_energy: float
    transistor_count: int


@dataclass(frozen=True)
class RowDecoder:
    """A row decoder for one sub-array.

    Parameters
    ----------
    technology / rule:
        Process node and Tox co-scaling rule.
    n_rows:
        Number of word lines (power of two).
    wordline_wire:
        The word-line RC wire spanning the sub-array width.
    wordline_cell_load:
        Summed access-gate capacitance (F) hanging on one word line.  This
        is Tox-dependent, so the caller (the cache component layer)
        recomputes it per evaluation point and passes it in.
    stack_enabled / gate_enabled:
        Ablation switches for the stack effect and gate tunnelling.
    """

    technology: Technology
    rule: ToxScalingRule
    n_rows: int
    wordline_wire: Wire
    wordline_cell_load: float
    stack_enabled: bool = True
    gate_enabled: bool = True

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n_rows):
            raise CircuitError(f"n_rows must be a power of two, got {self.n_rows}")
        if self.wordline_cell_load < 0:
            raise CircuitError(
                f"word-line cell load must be >= 0, got {self.wordline_cell_load}"
            )

    @property
    def address_bits(self) -> int:
        return max(1, log2_int(self.n_rows))

    @property
    def groups(self) -> List[int]:
        return predecode_groups(self.address_bits)

    # -- helpers ------------------------------------------------------------

    def _nand(self, fan_in: int, vth: float, tox: float) -> Tuple[Mosfet, Mosfet]:
        """Return (series NMOS, parallel PMOS) devices of a NAND gate."""
        geometry = self.rule.geometry(tox)
        tech = self.technology
        nmos = Mosfet(
            polarity=Polarity.NMOS,
            width=NAND_NMOS_RATIO * tech.wmin * max(fan_in, 1) / 2.0,
            lgate=geometry.lgate_drawn,
            leff=geometry.leff,
            vth=vth,
            tox=tox,
        )
        pmos = Mosfet(
            polarity=Polarity.PMOS,
            width=NAND_PMOS_RATIO * tech.wmin,
            lgate=geometry.lgate_drawn,
            leff=geometry.leff,
            vth=vth,
            tox=tox,
        )
        return nmos, pmos

    def _nand_leakage(self, fan_in: int, vth: float, tox: float) -> float:
        """Standby leakage (A) of one idle NAND gate (stack suppressed)."""
        tech = self.technology
        nmos, pmos = self._nand(fan_in, vth, tox)
        sub = nmos.off_subthreshold(
            tech, stack_depth=max(fan_in, 1), stack_enabled=self.stack_enabled
        )
        # PMOS devices in parallel: with inputs idle-high the PMOS bank is
        # OFF; count them individually (no stack help in parallel).
        sub_p = fan_in * pmos.off_subthreshold(tech)
        gate = nmos.gate_leakage(
            tech, conducting=False, gate_enabled=self.gate_enabled
        ) * fan_in + fan_in * pmos.gate_leakage(
            tech, conducting=True, gate_enabled=self.gate_enabled
        )
        # Idle-high inputs keep NMOS gates at Vdd over an ON channel region
        # for the devices nearer ground; approximate half the stack as
        # conducting for tunnelling purposes.
        gate_on = 0.5 * fan_in * nmos.gate_leakage(
            tech, conducting=True, gate_enabled=self.gate_enabled
        )
        return sub + 0.3 * sub_p + gate + gate_on

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, vth: float, tox: float) -> DecoderCost:
        """Return delay / leakage / energy of the decoder at (vth, tox)."""
        tech = self.technology
        geometry = self.rule.geometry(tox)
        groups = self.groups
        n_groups = len(groups)

        # ---- delay: predecode NAND -> row NAND -> word-line driver chain.
        delay = 0.0
        # Predecode stage: a NAND of the group size driving the predecode
        # line, loaded by (n_rows / 2^group) row-NAND inputs -> approximate
        # fanout n_rows / 2^min(group).
        pre_fan_in = max(groups)
        pre_nmos, _ = self._nand(pre_fan_in, vth, tox)
        row_nmos, row_pmos = self._nand(n_groups, vth, tox)
        row_input_cap = row_nmos.input_capacitance(tech) + row_pmos.input_capacitance(
            tech
        )
        rows_per_line = self.n_rows / (2 ** max(groups))
        predecode_load = max(rows_per_line, 1.0) * row_input_cap
        r_pre = pre_nmos.resistance(tech) * pre_fan_in  # series stack resistance
        delay += ELMORE_LN2 * r_pre * (
            predecode_load + pre_nmos.drain_capacitance(tech)
        )

        # Row NAND driving the word-line driver chain input.
        wordline_load = self.wordline_wire.capacitance + self.wordline_cell_load
        chain = optimal_buffer_chain(
            tech,
            load_capacitance=wordline_load,
            leff=geometry.leff,
            lgate=geometry.lgate_drawn,
            vth=vth,
            tox=tox,
            gate_enabled=self.gate_enabled,
        )
        r_row = row_nmos.resistance(tech) * n_groups
        delay += ELMORE_LN2 * r_row * (
            chain.input_capacitance + row_nmos.drain_capacitance(tech)
        )
        # Driver chain internal delay (its last stage drives the lumped
        # word-line load; replace that lumped estimate with the Elmore
        # wire delay for the final stage).
        last = chain.inverters[-1]
        # Match the chain's own accounting (N/P average) so the final
        # lumped term is subtracted exactly before the distributed model
        # replaces it.
        r_last = 0.5 * (
            _delay.effective_resistance(tech, last.wn, geometry.leff, vth, tox)
            + _delay.effective_resistance(
                tech, last.wp, geometry.leff, vth, tox, p_type=True
            )
        )
        wire_delay = self.wordline_wire.elmore_delay(
            r_last, self.wordline_cell_load
        )
        # chain.delay already charged r_last * wordline_load lumped; keep
        # the chain's internal stages and use the distributed estimate for
        # the final hop.
        internal = chain.delay - ELMORE_LN2 * r_last * (
            wordline_load
            + _delay.junction_capacitance(tech, last.total_width)
        )
        delay += np.maximum(internal, 0.0) + wire_delay

        # ---- leakage: predecode banks + every row NAND + every driver chain.
        leakage = 0.0
        for group in groups:
            leakage += (2 ** group) * self._nand_leakage(group, vth, tox)
        leakage += self.n_rows * self._nand_leakage(n_groups, vth, tox)
        leakage += self.n_rows * (
            chain.subthreshold_leakage + chain.gate_leakage
        )

        # ---- dynamic energy per access: one predecode line per group
        # swings, one row NAND fires, one word line swings full rail.
        energy = 0.0
        vdd = tech.vdd
        energy += n_groups * predecode_load * vdd * vdd
        energy += (row_input_cap + row_nmos.drain_capacitance(tech)) * vdd * vdd
        energy += chain.switched_capacitance * vdd * vdd

        # ---- transistor count.
        count = 0
        for group in groups:
            count += (2 ** group) * (2 * group)  # NAND: group NMOS + group PMOS
        count += self.n_rows * (2 * n_groups)
        count += self.n_rows * (2 * chain.stage_count)

        return DecoderCost(
            delay=delay,
            leakage_current=leakage,
            dynamic_energy=energy,
            transistor_count=count,
        )
