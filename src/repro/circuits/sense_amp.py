"""Latch-type sense amplifier.

One sense amplifier per bit-line pair: a clocked cross-coupled latch (two
NMOS, two PMOS) plus an enable footer and two column-mux pass gates.  Its
two delay contributions are

* **bit-line development**: the selected cell must discharge the bit line
  by the amplifier's required input swing ``dV = swing_fraction * Vdd``
  before the latch can fire — ``t_dev = C_bitline * dV / I_read`` — and
* **regeneration**: once enabled, the latch amplifies exponentially with
  time constant ``tau = C_internal / g_m``; resolving a dV input to full
  rail takes ``tau * ln(Vdd / dV)``.

The development term couples the *cell's* (Vth, Tox) to the array delay
(weak cells develop slowly) while regeneration couples the *peripheral*
knobs, so the sense path sees both knob groups — as in the paper, where
the array + sense amplifier form one component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.devices.mosfet import Mosfet, Polarity
from repro.devices import delay as _delay

#: Required differential input swing as a fraction of Vdd.
SWING_FRACTION = 0.10

#: Latch transistor width in units of minimum width.
LATCH_RATIO = 2.0

#: Number of transistors in one sense-amp slice (latch 4 + footer 1 +
#: precharge/equalise 3 + column mux 2).
TRANSISTORS_PER_AMP = 10

#: Effective number of OFF minimum-ratio devices leaking in standby.
#: The latch idles with both internal nodes precharged high: the two NMOS
#: latch devices are off with full drain bias, the footer is off (stacked
#: with them), and the mux gates are off.
OFF_DEVICE_EQUIVALENT = 3.0


@dataclass(frozen=True)
class SenseAmplifier:
    """A sense-amp slice bound to a technology and scaling rule."""

    technology: Technology
    rule: ToxScalingRule

    def _latch_nmos(self, vth: float, tox: float) -> Mosfet:
        geometry = self.rule.geometry(tox)
        return Mosfet(
            polarity=Polarity.NMOS,
            width=LATCH_RATIO * self.technology.wmin,
            lgate=geometry.lgate_drawn,
            leff=geometry.leff,
            vth=vth,
            tox=tox,
        )

    def required_swing(self) -> float:
        """Return the differential input swing (V) needed to fire reliably."""
        return SWING_FRACTION * self.technology.vdd

    def development_delay(
        self, bitline_capacitance: float, cell_read_current: float
    ) -> float:
        """Return the bit-line development time (s).

        Parameters
        ----------
        bitline_capacitance:
            Total bit-line capacitance (F) seen by the selected cell.
        cell_read_current:
            The cell's read (discharge) current (A).
        """
        if np.any(np.less(bitline_capacitance, 0)):
            raise CircuitError(
                f"bit-line capacitance must be >= 0, got {bitline_capacitance}"
            )
        if not isinstance(cell_read_current, np.ndarray):
            if cell_read_current <= 0:
                raise CircuitError(
                    f"cell read current must be positive, got {cell_read_current}"
                )
        elif np.any(np.less_equal(cell_read_current, 0)):
            raise CircuitError(
                f"cell read current must be positive, got {cell_read_current}"
            )
        return bitline_capacitance * self.required_swing() / cell_read_current

    def regeneration_delay(self, vth: float, tox: float) -> float:
        """Return the latch regeneration time (s) at the peripheral knobs.

        ``tau = C_node / gm`` with ``gm ~ Idsat / (Vdd - Vth)`` (alpha-power
        small-signal estimate), amplified from the input swing to the rail.
        """
        tech = self.technology
        latch = self._latch_nmos(vth, tox)
        geometry = self.rule.geometry(tox)
        c_node = _delay.gate_capacitance(
            tech, 2.0 * latch.width, geometry.lgate_drawn, tox
        ) + _delay.junction_capacitance(tech, 2.0 * latch.width)
        gm = latch.on_current(tech) / np.maximum(tech.vdd - vth, 1e-3)
        tau = c_node / gm
        gain_needed = tech.vdd / self.required_swing()
        return tau * math.log(gain_needed)

    def standby_leakage_current(
        self, vth: float, tox: float, gate_enabled: bool = True
    ) -> float:
        """Return standby leakage (A) of one sense-amp slice."""
        tech = self.technology
        latch = self._latch_nmos(vth, tox)
        off = latch.total_standby_leakage(
            tech, conducting=False, gate_enabled=gate_enabled
        )
        # Gate tunnelling of the precharge PMOS devices held ON in standby.
        on_gate = latch.with_knobs().gate_leakage(
            tech, conducting=True, gate_enabled=gate_enabled
        )
        return OFF_DEVICE_EQUIVALENT * off + 2.0 * on_gate * 0.1

    def standby_leakage_power(
        self, vth: float, tox: float, gate_enabled: bool = True
    ) -> float:
        """Return standby leakage power (W) of one sense-amp slice."""
        return (
            self.standby_leakage_current(vth, tox, gate_enabled=gate_enabled)
            * self.technology.vdd
        )

    def sense_energy(self, bitline_capacitance: float, tox: float) -> float:
        """Return switched energy (J) of one sense operation.

        The bit line swings by the input swing (not full rail — that is the
        point of sensing) and the internal latch nodes swing full rail.
        """
        tech = self.technology
        geometry = self.rule.geometry(tox)
        c_internal = 2.0 * (
            _delay.gate_capacitance(
                tech, 2.0 * LATCH_RATIO * tech.wmin, geometry.lgate_drawn, tox
            )
            + _delay.junction_capacitance(tech, 2.0 * LATCH_RATIO * tech.wmin)
        )
        bitline_energy = bitline_capacitance * self.required_swing() * tech.vdd
        latch_energy = c_internal * tech.vdd * tech.vdd
        return bitline_energy + latch_energy
