"""Address and data bus drivers.

The paper's third and fourth cache components: the drivers that move the
address into the array (one driver per address bit) and the read data out
to the cache port (one per output bit).  Each line is a geometric buffer
chain pushing a long bus wire whose length is set by the physical extent
of the array — so both the wire load and the drivers themselves grow when
thicker oxide inflates the cell footprint.

Bus wires are the most wire-dominated structures in the cache, which makes
the drivers the component whose delay is *least* sensitive to Tox (the
wire doesn't care about the oxide) and whose optimal assignment is the most
aggressive — exactly the Scheme II behaviour the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.devices import delay as _delay
from repro.circuits.logical_effort import ELMORE_LN2, optimal_buffer_chain
from repro.circuits.wires import Wire


@dataclass(frozen=True)
class DriverCost:
    """Evaluation of a driver bank at one knob point."""

    delay: float
    leakage_current: float
    dynamic_energy: float
    transistor_count: int


@dataclass(frozen=True)
class BusDriver:
    """A bank of ``n_lines`` identical bus-line drivers.

    Parameters
    ----------
    n_lines:
        Number of bus lines (address bits or data-out bits).
    wire:
        The RC wire of one line.
    far_end_load:
        Lumped capacitance (F) at the receiving end of each line.
    activity:
        Fraction of lines that toggle on a typical access (address buses
        toggle a low-order subset; data buses approach 0.5 random data).
    """

    technology: Technology
    rule: ToxScalingRule
    n_lines: int
    wire: Wire
    far_end_load: float
    activity: float = 0.5
    gate_enabled: bool = True

    def __post_init__(self) -> None:
        if self.n_lines < 1:
            raise CircuitError(f"driver bank needs >= 1 line, got {self.n_lines}")
        if not 0.0 <= self.activity <= 1.0:
            raise CircuitError(f"activity must be in [0, 1], got {self.activity}")
        if self.far_end_load < 0:
            raise CircuitError(
                f"far-end load must be >= 0, got {self.far_end_load}"
            )

    def evaluate(self, vth: float, tox: float) -> DriverCost:
        """Return delay / leakage / energy of the bank at (vth, tox)."""
        tech = self.technology
        geometry = self.rule.geometry(tox)
        line_load = self.wire.capacitance + self.far_end_load

        chain = optimal_buffer_chain(
            tech,
            load_capacitance=line_load,
            leff=geometry.leff,
            lgate=geometry.lgate_drawn,
            vth=vth,
            tox=tox,
            gate_enabled=self.gate_enabled,
        )

        # Delay: chain internal stages + distributed wire for the final hop.
        last = chain.inverters[-1]
        # Match the chain's own accounting (N/P average) so the final
        # lumped term is subtracted exactly before the distributed model
        # replaces it.
        r_last = 0.5 * (
            _delay.effective_resistance(tech, last.wn, geometry.leff, vth, tox)
            + _delay.effective_resistance(
                tech, last.wp, geometry.leff, vth, tox, p_type=True
            )
        )
        internal = chain.delay - ELMORE_LN2 * r_last * (
            line_load + _delay.junction_capacitance(tech, last.total_width)
        )
        wire_delay = self.wire.elmore_delay(r_last, self.far_end_load)
        delay = np.maximum(internal, 0.0) + wire_delay

        # Leakage: every line's chain leaks whether or not it toggles.
        leakage = self.n_lines * (
            chain.subthreshold_leakage + chain.gate_leakage
        )

        # Dynamic energy: toggling lines switch their chain + wire + load.
        vdd = tech.vdd
        energy = (
            self.activity
            * self.n_lines
            * chain.switched_capacitance
            * vdd
            * vdd
        )

        count = self.n_lines * 2 * chain.stage_count
        return DriverCost(
            delay=delay,
            leakage_current=leakage,
            dynamic_energy=energy,
            transistor_count=count,
        )
