"""RC stage chains and buffer-chain sizing.

Delay estimation throughout the circuit layer uses the RC abstraction: a
path is a sequence of :class:`RcStage` objects (driver resistance charging
a lumped load) whose delays add.  Drivers that must cross a large fanout
(word lines, bus wires) are sized as geometric buffer chains — the
logical-effort result that a chain of inverters each ``rho ~ 4`` times
larger than the last minimises total delay.

The chain builder also reports the *leakage* and *input capacitance* of
the buffers it creates, so sizing choices made for speed automatically show
up in the leakage budget — the coupling at the heart of the paper's
trade-off study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.devices import delay as _delay
from repro.devices import subthreshold as _sub
from repro.devices import gate_leakage as _gate

#: Target stage effort of buffer chains (FO4-style sizing).
STAGE_EFFORT = 4.0

#: Elmore switching coefficient for a step input, ln(2).
ELMORE_LN2 = 0.69

#: P:N width ratio of the standard inverter.
PN_RATIO = 2.0


@dataclass(frozen=True)
class RcStage:
    """One RC delay stage: ``delay = 0.69 * R * C``.

    Attributes
    ----------
    label:
        Where the stage came from (for delay-budget reports).
    resistance:
        Driver effective resistance (ohm).
    capacitance:
        Total lumped load (F).
    """

    label: str
    resistance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.resistance < 0 or self.capacitance < 0:
            raise CircuitError(
                f"stage {self.label!r} has negative R or C: "
                f"R={self.resistance}, C={self.capacitance}"
            )

    @property
    def delay(self) -> float:
        """Stage delay in seconds."""
        return ELMORE_LN2 * self.resistance * self.capacitance


def chain_delay(stages: List[RcStage]) -> float:
    """Return the summed delay (s) of a stage list."""
    return sum(stage.delay for stage in stages)


@dataclass(frozen=True)
class InverterSizing:
    """Widths of one inverter in a chain (m)."""

    wn: float
    wp: float

    @property
    def total_width(self) -> float:
        return self.wn + self.wp


@dataclass(frozen=True)
class BufferChain:
    """A sized geometric buffer chain with its delay and power summary.

    Attributes
    ----------
    inverters:
        The per-stage sizings, input first.
    delay:
        Total chain delay (s), including driving the final load.
    input_capacitance:
        Gate capacitance (F) presented to whatever drives the chain.
    subthreshold_leakage:
        Summed standby subthreshold current (A) of the chain; a static
        CMOS inverter always has exactly one OFF device, and the model
        averages the N-off / P-off states.
    gate_leakage:
        Summed gate-tunnelling current (A).
    switched_capacitance:
        Total capacitance (F) toggled when the chain fires once.
    """

    inverters: tuple
    delay: float
    input_capacitance: float
    subthreshold_leakage: float
    gate_leakage: float
    switched_capacitance: float

    @property
    def stage_count(self) -> int:
        return len(self.inverters)

    def leakage_power(self, vdd: float) -> float:
        """Return standby leakage power (W) at supply ``vdd``."""
        return (self.subthreshold_leakage + self.gate_leakage) * vdd

    def dynamic_energy(self, vdd: float) -> float:
        """Return switched energy (J) for one transition pair at ``vdd``."""
        return self.switched_capacitance * vdd * vdd


def _inverter_metrics(
    technology: Technology,
    sizing: InverterSizing,
    leff: float,
    lgate: float,
    vth: float,
    tox: float,
    gate_enabled: bool = True,
):
    """Return (R_drive, C_in, C_self, I_sub, I_gate) of one inverter."""
    r_n = _delay.effective_resistance(technology, sizing.wn, leff, vth, tox)
    r_p = _delay.effective_resistance(
        technology, sizing.wp, leff, vth, tox, p_type=True
    )
    r_drive = 0.5 * (r_n + r_p)
    c_in = _delay.gate_capacitance(technology, sizing.total_width, lgate, tox)
    c_self = _delay.junction_capacitance(technology, sizing.total_width)
    # Standby: average of input-low (NMOS off) and input-high (PMOS off).
    i_sub_n = _sub.subthreshold_current(
        technology, sizing.wn, leff, vth, tox, vgs=0.0, vds=technology.vdd
    )
    i_sub_p = _sub.subthreshold_current(
        technology, sizing.wp, leff, vth, tox, vgs=0.0, vds=technology.vdd,
        p_type=True,
    )
    i_sub = 0.5 * (i_sub_n + i_sub_p)
    if gate_enabled:
        # The conducting device tunnels over its full area; the off device
        # contributes only edge tunnelling.  Average over the two states.
        i_g_on_p = _gate.gate_tunnel_current(
            technology, sizing.wp, lgate, tox, conducting=True, p_type=True
        )
        i_g_on_n = _gate.gate_tunnel_current(
            technology, sizing.wn, lgate, tox, conducting=True
        )
        i_g_off_p = _gate.gate_tunnel_current(
            technology, sizing.wp, lgate, tox, conducting=False, p_type=True
        )
        i_g_off_n = _gate.gate_tunnel_current(
            technology, sizing.wn, lgate, tox, conducting=False
        )
        i_gate = 0.5 * ((i_g_on_n + i_g_off_p) + (i_g_on_p + i_g_off_n))
    else:
        i_gate = 0.0
    return r_drive, c_in, c_self, i_sub, i_gate


def optimal_buffer_chain(
    technology: Technology,
    load_capacitance: float,
    leff: float,
    lgate: float,
    vth: float,
    tox: float,
    input_width: float = None,
    stage_effort: float = STAGE_EFFORT,
    gate_enabled: bool = True,
) -> BufferChain:
    """Size a geometric buffer chain to drive ``load_capacitance``.

    Parameters
    ----------
    load_capacitance:
        The final load (F) the chain must drive.
    leff, lgate:
        Channel lengths (m) — already Tox-co-scaled by the caller.
    vth, tox:
        The knob assignment the chain is evaluated under.
    input_width:
        NMOS width (m) of the first inverter; defaults to minimum width.
    stage_effort:
        Capacitance ratio between successive stages (default 4).

    Notes
    -----
    The stage count is ``ceil(log_rho(C_load / C_in))``, at least one.  The
    per-stage ratio is then re-balanced so stages have exactly equal
    effort, which is both the delay-optimal and the conventional layout.
    """
    if load_capacitance <= 0:
        raise CircuitError(f"load capacitance must be positive, got {load_capacitance}")
    if stage_effort <= 1.0:
        raise CircuitError(f"stage effort must exceed 1, got {stage_effort}")
    wn0 = technology.wmin if input_width is None else input_width
    if wn0 <= 0:
        raise CircuitError(f"input width must be positive, got {wn0}")

    first = InverterSizing(wn=wn0, wp=PN_RATIO * wn0)
    c_in0 = _delay.gate_capacitance(technology, first.total_width, lgate, tox)
    total_effort = load_capacitance / c_in0
    if total_effort <= 1.0:
        n_stages = 1
        rho = max(total_effort, 1.0)
    else:
        n_stages = max(1, math.ceil(math.log(total_effort) / math.log(stage_effort)))
        rho = total_effort ** (1.0 / n_stages)

    inverters = tuple(
        InverterSizing(wn=wn0 * rho**i, wp=PN_RATIO * wn0 * rho**i)
        for i in range(n_stages)
    )

    delay = 0.0
    i_sub_total = 0.0
    i_gate_total = 0.0
    c_switched = 0.0
    for index, sizing in enumerate(inverters):
        r_drive, c_in, c_self, i_sub, i_gate = _inverter_metrics(
            technology, sizing, leff, lgate, vth, tox, gate_enabled=gate_enabled
        )
        if index + 1 < len(inverters):
            next_sizing = inverters[index + 1]
            c_load = _delay.gate_capacitance(
                technology, next_sizing.total_width, lgate, tox
            )
        else:
            c_load = load_capacitance
        delay += ELMORE_LN2 * r_drive * (c_load + c_self)
        i_sub_total += i_sub
        i_gate_total += i_gate
        c_switched += c_in + c_self

    return BufferChain(
        inverters=inverters,
        delay=delay,
        input_capacitance=c_in0,
        subthreshold_leakage=i_sub_total,
        gate_leakage=i_gate_total,
        switched_capacitance=c_switched + load_capacitance,
    )
