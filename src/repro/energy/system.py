"""The L1 + L2 + main-memory system metric (Section 5 / Figure 2).

:class:`MemorySystem` bundles two cache models (structural or fitted —
anything with the ``evaluate(assignment)`` interface) with a workload's
miss-rate model and a main-memory model, and evaluates a *system design
point* — a knob assignment per cache — into the two coordinates Figure 2
plots:

* **AMAT** = t_L1 + m_L1 (t_L2 + m_L2 t_mem), and
* **total energy per reference** = dynamic energy (all levels, including
  miss traffic) + (P_leak,L1 + P_leak,L2) x AMAT.

The leakage x AMAT term is what couples the circuit knobs to the
architecture: slowing a cache down to save leakage power stretches the
very interval over which all caches keep leaking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archsim.amat import amat_two_level
from repro.archsim.missmodel import MissRateModel
from repro.cache.assignment import Assignment
from repro.energy.dynamic import DynamicEnergyModel, MainMemoryModel
from repro.energy.leakage_budget import leakage_energy


@dataclass(frozen=True)
class SystemEvaluation:
    """One system design point, fully evaluated.

    All energies in joules, times in seconds, powers in watts.
    """

    l1_assignment: Assignment
    l2_assignment: Assignment
    l1_access_time: float
    l2_access_time: float
    l1_miss_rate: float
    l2_local_miss_rate: float
    amat: float
    dynamic_energy: float
    leakage_power: float

    @property
    def leakage_energy_per_access(self) -> float:
        """Leakage burned during one average access interval (J)."""
        return leakage_energy(self.leakage_power, self.amat)

    @property
    def total_energy(self) -> float:
        """The Figure 2 y-coordinate: dynamic + leakage energy (J)."""
        return self.dynamic_energy + self.leakage_energy_per_access


class MemorySystem:
    """Two cache models + miss statistics + main memory.

    Parameters
    ----------
    l1_model / l2_model:
        Anything exposing ``evaluate(assignment) -> CacheEvaluation`` and a
        ``config`` attribute (:class:`~repro.cache.cache_model.CacheModel`
        or :class:`~repro.models.analytical.FittedCacheModel`).
    miss_model:
        Local miss-rate curves of the driving workload.
    memory:
        Main-memory latency/energy model.
    """

    def __init__(
        self,
        l1_model,
        l2_model,
        miss_model: MissRateModel,
        memory: MainMemoryModel = MainMemoryModel(),
    ) -> None:
        self.l1_model = l1_model
        self.l2_model = l2_model
        self.miss_model = miss_model
        self.memory = memory
        self.l1_miss_rate = miss_model.l1_miss_rate(l1_model.config.size_bytes)
        self.l2_local_miss_rate = miss_model.l2_local_miss_rate(
            l2_model.config.size_bytes
        )

    def evaluate(
        self, l1_assignment: Assignment, l2_assignment: Assignment
    ) -> SystemEvaluation:
        """Evaluate one (L1 knobs, L2 knobs) system design point."""
        l1_eval = self.l1_model.evaluate(l1_assignment)
        l2_eval = self.l2_model.evaluate(l2_assignment)
        amat = amat_two_level(
            l1_hit_time=l1_eval.access_time,
            l1_miss_rate=self.l1_miss_rate,
            l2_hit_time=l2_eval.access_time,
            l2_local_miss_rate=self.l2_local_miss_rate,
            memory_latency=self.memory.latency,
        )
        dynamic_model = DynamicEnergyModel(
            l1_access_energy=l1_eval.dynamic_read_energy,
            l2_access_energy=l2_eval.dynamic_read_energy,
            memory=self.memory,
        )
        dynamic = dynamic_model.energy_per_reference(
            self.l1_miss_rate, self.l2_local_miss_rate
        )
        return SystemEvaluation(
            l1_assignment=l1_assignment,
            l2_assignment=l2_assignment,
            l1_access_time=l1_eval.access_time,
            l2_access_time=l2_eval.access_time,
            l1_miss_rate=self.l1_miss_rate,
            l2_local_miss_rate=self.l2_local_miss_rate,
            amat=amat,
            dynamic_energy=dynamic,
            leakage_power=l1_eval.leakage_power + l2_eval.leakage_power,
        )

    def amat_of(self, l1_access_time: float, l2_access_time: float) -> float:
        """AMAT (s) for given hit times under this system's miss rates."""
        return amat_two_level(
            l1_hit_time=l1_access_time,
            l1_miss_rate=self.l1_miss_rate,
            l2_hit_time=l2_access_time,
            l2_local_miss_rate=self.l2_local_miss_rate,
            memory_latency=self.memory.latency,
        )
