"""Energy accounting for the L1 + L2 + main-memory system.

Section 5 optimises the *total energy* of the whole processor memory
system: dynamic energy of every access at every level (including the
misses — "our studies also account for the dynamic power expended as a
result of cache misses") plus the leakage of both caches integrated over
the time the access stream occupies.

* :mod:`~repro.energy.dynamic` — per-access dynamic energy composition;
* :mod:`~repro.energy.leakage_budget` — leakage power x time integration;
* :mod:`~repro.energy.system` — the per-access total-energy metric of
  Figure 2 and the :class:`MemorySystem` object bundling both cache
  models with a workload's miss statistics.
"""

from repro.energy.dynamic import DynamicEnergyModel, MainMemoryModel
from repro.energy.leakage_budget import LeakageBudget, leakage_energy
from repro.energy.system import MemorySystem, SystemEvaluation

__all__ = [
    "DynamicEnergyModel",
    "MainMemoryModel",
    "LeakageBudget",
    "leakage_energy",
    "MemorySystem",
    "SystemEvaluation",
]
