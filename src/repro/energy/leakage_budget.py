"""Leakage power integrated over time.

Leakage is a *power*: it burns whether or not the cache is accessed.  The
paper's per-access total-energy metric charges each reference the leakage
burned during its average service interval (the AMAT), which is how a
slow, low-leakage design can still lose to a fast, leakier one — the
trade-off at the heart of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def leakage_energy(leakage_power: float, interval: float) -> float:
    """Return leakage energy (J) burned at ``leakage_power`` over ``interval``.

    Trivial by design — it exists so call sites say what they mean and the
    argument order is type-checked by name at review time.
    """
    if leakage_power < 0:
        raise ConfigurationError(
            f"leakage power must be >= 0, got {leakage_power}"
        )
    if interval < 0:
        raise ConfigurationError(f"interval must be >= 0, got {interval}")
    return leakage_power * interval


@dataclass(frozen=True)
class LeakageBudget:
    """Leakage accounting of a whole program run.

    Attributes
    ----------
    l1_power / l2_power:
        Standby leakage (W) of each cache under its assignment.
    runtime:
        Program runtime (s).
    """

    l1_power: float
    l2_power: float
    runtime: float

    def __post_init__(self) -> None:
        for label in ("l1_power", "l2_power"):
            if getattr(self, label) < 0:
                raise ConfigurationError(f"{label} must be >= 0")
        if self.runtime < 0:
            raise ConfigurationError(
                f"runtime must be >= 0, got {self.runtime}"
            )

    @property
    def total_power(self) -> float:
        """Combined cache leakage power (W)."""
        return self.l1_power + self.l2_power

    @property
    def total_energy(self) -> float:
        """Leakage energy (J) over the run."""
        return leakage_energy(self.total_power, self.runtime)

    def per_access(self, n_accesses: int) -> float:
        """Leakage energy (J) amortised per access."""
        if n_accesses <= 0:
            raise ConfigurationError(
                f"n_accesses must be positive, got {n_accesses}"
            )
        return self.total_energy / n_accesses
