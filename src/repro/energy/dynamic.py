"""Dynamic (switched) energy composition per memory reference.

Every reference pays the L1 read energy; an L1 miss additionally pays the
L2 read energy plus an L1 line fill (modelled as one more L1 access); an
L2 miss pays the main-memory access energy plus an L2 line fill.  The
"dynamic power expended as a result of cache misses" the abstract calls
out is exactly these conditional terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: 2005-era DDR/DDR2 access: tens of ns and a couple of nJ per burst; the
#: per-reference values below assume the paper's pJ-scale accounting
#: (energy of moving one cache line on the bus, amortised).
DEFAULT_MEMORY_LATENCY = 20e-9
DEFAULT_MEMORY_ENERGY = 2e-9


@dataclass(frozen=True)
class MainMemoryModel:
    """Main memory as seen by the L2: a flat latency and access energy.

    Off-chip DRAM leakage is not billed to the processor's budget (the
    paper optimises the on-chip knobs; memory enters through miss latency
    and miss energy only).
    """

    latency: float = DEFAULT_MEMORY_LATENCY
    energy_per_access: float = DEFAULT_MEMORY_ENERGY

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ConfigurationError(
                f"memory latency must be positive, got {self.latency}"
            )
        if self.energy_per_access < 0:
            raise ConfigurationError(
                f"memory energy must be >= 0, got {self.energy_per_access}"
            )


@dataclass(frozen=True)
class DynamicEnergyModel:
    """Per-reference dynamic energy of the two-level system.

    Parameters
    ----------
    l1_access_energy / l2_access_energy:
        Switched energy (J) of one access at each level, as produced by
        :meth:`repro.cache.cache_model.CacheModel.dynamic_read_energy`.
    memory:
        The main-memory model.
    fill_factor:
        Energy multiplier of a line fill relative to a read access at the
        same level (a fill writes a whole line; 1.0 is the conservative
        default).
    """

    l1_access_energy: float
    l2_access_energy: float
    memory: MainMemoryModel = MainMemoryModel()
    fill_factor: float = 1.0

    def __post_init__(self) -> None:
        for label in ("l1_access_energy", "l2_access_energy"):
            if getattr(self, label) < 0:
                raise ConfigurationError(f"{label} must be >= 0")
        if self.fill_factor < 0:
            raise ConfigurationError(
                f"fill_factor must be >= 0, got {self.fill_factor}"
            )

    def energy_per_reference(
        self, l1_miss_rate: float, l2_local_miss_rate: float
    ) -> float:
        """Return expected dynamic energy (J) of one CPU reference."""
        for label, rate in (
            ("l1_miss_rate", l1_miss_rate),
            ("l2_local_miss_rate", l2_local_miss_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {rate}"
                )
        l1 = self.l1_access_energy
        l2 = self.l2_access_energy
        fill_l1 = self.fill_factor * l1
        fill_l2 = self.fill_factor * l2
        miss_to_l2 = l2 + fill_l1
        miss_to_memory = self.memory.energy_per_access + fill_l2
        return l1 + l1_miss_rate * (
            miss_to_l2 + l2_local_miss_rate * miss_to_memory
        )
