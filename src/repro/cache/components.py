"""The paper's four cache components.

Section 3 decomposes a cache into the memory cell array with its sense
amplifiers, the row decoder, the address bus drivers and the data bus
drivers, and assumes each contributes independently to total leakage and
delay.  Each class here answers the same queries at a given (Vth, Tox):

* ``leakage_power(vth, tox)`` — standby leakage (W) of the whole component;
* ``delay(vth, tox)`` — its contribution (s) to the access critical path;
* ``dynamic_energy(vth, tox)`` — switched energy (J) per access;
* ``transistor_count(tox)`` — population size, for reports.

All Tox-dependent geometry (cell footprint, wire lengths, channel lengths)
is recomputed per evaluation point through the
:class:`~repro.technology.scaling.ToxScalingRule`, so the co-scaling cost
of thick oxide (bigger cells -> longer lines) is visible to every
component automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.devices import delay as _delay
from repro.circuits.sram_cell import SramCell
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.decoder import RowDecoder
from repro.circuits.drivers import BusDriver
from repro.circuits.wires import Wire
from repro.cache.geometry import ArrayOrganization

#: Lumped receiver load (F) at the far end of a data bus line.
DATA_PORT_LOAD = 20e-15

#: Fraction of address lines toggling on a typical access.
ADDRESS_ACTIVITY = 0.3

#: Fraction of data lines toggling on a typical access.
DATA_ACTIVITY = 0.5

#: Both bit lines of a pair are precharged and one discharges: the
#: effective switched bit-line energy multiplier (precharge + evaluate).
BITLINE_ENERGY_FACTOR = 2.0


@dataclass(frozen=True)
class ComponentCost:
    """One component evaluated at one (Vth, Tox) point."""

    delay: float
    leakage_power: float
    dynamic_energy: float
    transistor_count: int


class _ComponentBase:
    """Shared memoisation: components are pure functions of (vth, tox)."""

    def __init__(self) -> None:
        self._memo: Dict[Tuple[float, float], ComponentCost] = {}

    def evaluate(self, vth: float, tox: float) -> ComponentCost:
        key = (vth, tox)
        if key not in self._memo:
            self._memo[key] = self._evaluate(vth, tox)
        return self._memo[key]

    def _evaluate(self, vth: float, tox: float) -> ComponentCost:
        raise NotImplementedError

    def evaluate_grid(self, vths, toxes) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch-evaluate the component over a (Vth, Tox) grid.

        Parameters
        ----------
        vths, toxes:
            1-D sequences of threshold voltages (V) and oxide thicknesses
            (m) spanning the grid axes.

        Returns
        -------
        (delays, leakages, energies):
            Three ``(len(vths), len(toxes))`` arrays, where element
            ``[i, j]`` equals the scalar ``evaluate(vths[i], toxes[j])``
            result for that quantity.

        The sweep vectorizes along the Vth axis: buffer-chain structure
        and all geometry depend only on Tox, so each Tox column is one
        broadcast evaluation of the underlying device models over the
        whole Vth vector.
        """
        vths = np.atleast_1d(np.asarray(vths, dtype=float))
        toxes = np.atleast_1d(np.asarray(toxes, dtype=float))
        shape = (vths.size, toxes.size)
        delays = np.empty(shape)
        leakages = np.empty(shape)
        energies = np.empty(shape)
        for j in range(toxes.size):
            cost = self._evaluate(vths, float(toxes[j]))
            delays[:, j] = cost.delay
            leakages[:, j] = cost.leakage_power
            energies[:, j] = cost.dynamic_energy
        return delays, leakages, energies

    # Convenience accessors.
    def delay(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).delay

    def leakage_power(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).leakage_power

    def dynamic_energy(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).dynamic_energy


class ArrayComponent(_ComponentBase):
    """Memory cell array + sense amplifiers (the paper's first component).

    Leakage is dominated by the cell population — every stored bit leaks
    around the clock — plus one sense-amp slice per physical column.
    Delay is the bit-line development time (cell drive vs bit-line load)
    plus sense-amp regeneration.
    """

    def __init__(
        self,
        technology: Technology,
        rule: ToxScalingRule,
        organization: ArrayOrganization,
        gate_enabled: bool = True,
    ) -> None:
        super().__init__()
        self.technology = technology
        self.rule = rule
        self.organization = organization
        self.gate_enabled = gate_enabled
        self.cell = SramCell(technology=technology, rule=rule)
        self.sense_amp = SenseAmplifier(technology=technology, rule=rule)

    def bitline_capacitance(self, tox: float) -> float:
        """Total bit-line capacitance (F) of one column at ``tox``."""
        organization = self.organization
        per_cell = self.cell.bitline_load(tox)
        return organization.rows_per_subarray * per_cell

    def write_energy(self, vth: float, tox: float) -> float:
        """Switched energy (J) of one *write* into the array.

        Writes drive the bit lines rail to rail through the write drivers
        (no sensing, no small-swing saving), so a write costs more than a
        read on the bit lines but skips the sense amps.  ``vth`` is
        accepted for protocol symmetry (CV^2 energy has no Vth term).
        """
        tech = self.technology
        bl_cap = self.bitline_capacitance(tox)
        per_column = bl_cap * tech.vdd * tech.vdd
        # Cell-internal node flip: two inverter nodes swing full rail
        # (same order as the cell's gate load on the word line).
        flip = 2.0 * self.cell.wordline_load(tox)
        return self.organization.active_cols * (per_column + flip)

    def _evaluate(self, vth: float, tox: float) -> ComponentCost:
        organization = self.organization
        tech = self.technology

        cell_leak = self.cell.standby_leakage_power(
            vth, tox, gate_enabled=self.gate_enabled
        )
        sa_leak = self.sense_amp.standby_leakage_power(
            vth, tox, gate_enabled=self.gate_enabled
        )
        leakage = (
            organization.total_cells * cell_leak
            + organization.n_sense_amps * sa_leak
        )

        bl_cap = self.bitline_capacitance(tox)
        i_read = self.cell.read_current(vth, tox)
        develop = self.sense_amp.development_delay(bl_cap, i_read)
        regen = self.sense_amp.regeneration_delay(vth, tox)
        delay = develop + regen

        per_column = (
            BITLINE_ENERGY_FACTOR
            * bl_cap
            * self.sense_amp.required_swing()
            * tech.vdd
        )
        sense = self.sense_amp.sense_energy(bl_cap, tox)
        energy = organization.active_cols * (per_column + sense)

        count = organization.total_cells * 6 + organization.n_sense_amps * 10
        return ComponentCost(
            delay=delay,
            leakage_power=leakage,
            dynamic_energy=energy,
            transistor_count=count,
        )


class DecoderComponent(_ComponentBase):
    """Row decoders + word-line drivers (the paper's second component)."""

    def __init__(
        self,
        technology: Technology,
        rule: ToxScalingRule,
        organization: ArrayOrganization,
        stack_enabled: bool = True,
        gate_enabled: bool = True,
    ) -> None:
        super().__init__()
        self.technology = technology
        self.rule = rule
        self.organization = organization
        self.stack_enabled = stack_enabled
        self.gate_enabled = gate_enabled
        self.cell = SramCell(technology=technology, rule=rule)

    def _decoder_at(self, vth: float, tox: float) -> RowDecoder:
        organization = self.organization
        wordline_length = organization.subarray_width(self.cell.width(tox))
        wire = Wire.from_technology(self.technology, wordline_length)
        cell_load = organization.cols_per_subarray * self.cell.wordline_load(tox)
        return RowDecoder(
            technology=self.technology,
            rule=self.rule,
            n_rows=max(organization.decoder_rows, 2),
            wordline_wire=wire,
            wordline_cell_load=cell_load,
            stack_enabled=self.stack_enabled,
            gate_enabled=self.gate_enabled,
        )

    def _evaluate(self, vth: float, tox: float) -> ComponentCost:
        organization = self.organization
        tech = self.technology
        decoder = self._decoder_at(vth, tox)
        cost = decoder.evaluate(vth, tox)
        leakage = cost.leakage_current * tech.vdd * organization.n_decoders
        energy = cost.dynamic_energy * organization.active_subarrays
        count = cost.transistor_count * organization.n_decoders
        return ComponentCost(
            delay=cost.delay,
            leakage_power=leakage,
            dynamic_energy=energy,
            transistor_count=count,
        )


class _BusDriverComponent(_ComponentBase):
    """Shared machinery for the two bus-driver components."""

    def __init__(
        self,
        technology: Technology,
        rule: ToxScalingRule,
        organization: ArrayOrganization,
        n_lines: int,
        far_end_load: float,
        activity: float,
        gate_enabled: bool = True,
    ) -> None:
        super().__init__()
        if n_lines < 1:
            raise CircuitError(f"bus needs at least one line, got {n_lines}")
        self.technology = technology
        self.rule = rule
        self.organization = organization
        self.n_lines = n_lines
        self.far_end_load = far_end_load
        self.activity = activity
        self.gate_enabled = gate_enabled
        self.cell = SramCell(technology=technology, rule=rule)

    def _bus_at(self, tox: float) -> BusDriver:
        organization = self.organization
        length = organization.bus_length(
            self.cell.width(tox), self.cell.height(tox)
        )
        wire = Wire.from_technology(self.technology, length)
        return BusDriver(
            technology=self.technology,
            rule=self.rule,
            n_lines=self.n_lines,
            wire=wire,
            far_end_load=self.far_end_load,
            activity=self.activity,
            gate_enabled=self.gate_enabled,
        )

    def _evaluate(self, vth: float, tox: float) -> ComponentCost:
        cost = self._bus_at(tox).evaluate(vth, tox)
        return ComponentCost(
            delay=cost.delay,
            leakage_power=cost.leakage_current * self.technology.vdd,
            dynamic_energy=cost.dynamic_energy,
            transistor_count=cost.transistor_count,
        )


class AddressDriverComponent(_BusDriverComponent):
    """Address bus drivers (the paper's third component)."""

    def __init__(
        self,
        technology: Technology,
        rule: ToxScalingRule,
        organization: ArrayOrganization,
        gate_enabled: bool = True,
    ) -> None:
        # Far end: the decoder's predecode gate inputs, replicated per
        # sub-array stripe.  Estimated as a handful of 3x-minimum gates.
        far_end = 4.0 * _delay.gate_capacitance(
            technology,
            3.0 * technology.wmin,
            technology.lgate_drawn,
            technology.tox_ref,
        ) * max(organization.ndbl, 1)
        super().__init__(
            technology=technology,
            rule=rule,
            organization=organization,
            n_lines=organization.config.address_bits,
            far_end_load=far_end,
            activity=ADDRESS_ACTIVITY,
            gate_enabled=gate_enabled,
        )


class DataDriverComponent(_BusDriverComponent):
    """Data-out bus drivers (the paper's fourth component)."""

    def __init__(
        self,
        technology: Technology,
        rule: ToxScalingRule,
        organization: ArrayOrganization,
        gate_enabled: bool = True,
    ) -> None:
        super().__init__(
            technology=technology,
            rule=rule,
            organization=organization,
            n_lines=organization.config.output_bits,
            far_end_load=DATA_PORT_LOAD,
            activity=DATA_ACTIVITY,
            gate_enabled=gate_enabled,
        )
