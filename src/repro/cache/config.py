"""User-facing cache configuration.

A :class:`CacheConfig` pins down the architectural shape of one cache —
capacity, block size, associativity, port width — and derives the address
breakdown (tag / index / offset bits).  It is deliberately independent of
any process knob: the same configuration is evaluated across the whole
(Vth, Tox) design grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import is_power_of_two, log2_int, to_kb

#: Address width of the 2005-era machine the paper models.
DEFAULT_ADDRESS_BITS = 32

#: Status bits per cache block (valid + dirty).
STATUS_BITS = 2


@dataclass(frozen=True)
class CacheConfig:
    """Architectural parameters of one cache.

    Attributes
    ----------
    size_bytes:
        Total data capacity in bytes (power of two).
    block_bytes:
        Line size in bytes (power of two).
    associativity:
        Number of ways (power of two; 1 = direct-mapped).
    output_bits:
        Width of the read port in bits (64 for an L1 word port, wider for
        an L2 feeding a line buffer).
    address_bits:
        Physical address width.
    name:
        Optional label used in reports (e.g. ``"L1"``).
    """

    size_bytes: int
    block_bytes: int = 64
    associativity: int = 2
    output_bits: int = 64
    address_bits: int = DEFAULT_ADDRESS_BITS
    name: str = "cache"

    def __post_init__(self) -> None:
        for attribute in ("size_bytes", "block_bytes", "associativity"):
            value = getattr(self, attribute)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{attribute} must be a positive power of two, got {value}"
                )
        if self.block_bytes > self.size_bytes:
            raise ConfigurationError(
                f"block ({self.block_bytes} B) larger than cache "
                f"({self.size_bytes} B)"
            )
        if self.associativity > self.n_blocks:
            raise ConfigurationError(
                f"associativity {self.associativity} exceeds the number of "
                f"blocks {self.n_blocks}"
            )
        if self.output_bits < 8:
            raise ConfigurationError(
                f"output port must be at least a byte, got {self.output_bits} bits"
            )
        if self.address_bits < self.offset_bits + self.index_bits + 1:
            raise ConfigurationError(
                f"address_bits={self.address_bits} leaves no tag bits for "
                f"{self.size_bytes}-byte cache"
            )

    # -- derived shape -------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.size_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        """Block-offset bits of the address."""
        return log2_int(self.block_bytes)

    @property
    def index_bits(self) -> int:
        """Set-index bits of the address."""
        return log2_int(self.n_sets) if self.n_sets > 1 else 0

    @property
    def tag_bits(self) -> int:
        """Tag bits stored with every block."""
        return self.address_bits - self.index_bits - self.offset_bits

    @property
    def bits_per_way(self) -> int:
        """Data + tag + status bits stored for one way of one set."""
        return self.block_bytes * 8 + self.tag_bits + STATUS_BITS

    @property
    def total_storage_bits(self) -> int:
        """All SRAM bits in the cache, tags and status included."""
        return self.n_sets * self.associativity * self.bits_per_way

    @property
    def size_kb(self) -> float:
        """Capacity in KiB (for labels)."""
        return to_kb(self.size_bytes)

    def describe(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            f"{self.name}: {self.size_kb:g} KB, {self.block_bytes}-byte blocks, "
            f"{self.associativity}-way, {self.n_sets} sets, "
            f"{self.tag_bits}-bit tags"
        )


def l1_config(
    size_kb: float = 16, name: str = "L1", associativity: int = 2
) -> CacheConfig:
    """Return a typical L1 configuration at the given capacity."""
    return CacheConfig(
        size_bytes=int(size_kb * 1024),
        block_bytes=32,
        associativity=associativity,
        output_bits=64,
        name=name,
    )


def l2_config(
    size_kb: float = 1024, name: str = "L2", associativity: int = 8
) -> CacheConfig:
    """Return a typical unified-L2 configuration at the given capacity."""
    return CacheConfig(
        size_bytes=int(size_kb * 1024),
        block_bytes=64,
        associativity=associativity,
        output_bits=256,
        name=name,
    )
