"""Whole-cache power / delay model — the library's main entry point.

A :class:`CacheModel` binds a :class:`~repro.cache.config.CacheConfig` to
a technology, fixes the array organisation once (the paper fixes its
netlists before sweeping knobs), builds the four components of Section 3,
and evaluates any :class:`~repro.cache.assignment.Assignment`:

* total **access time** = sum of component delays (the paper's additive
  independence assumption);
* total **leakage power** = sum of component leakage;
* **dynamic read energy** = sum of component switched energy per access.

Example
-------
>>> from repro.cache import CacheModel, CacheConfig, Assignment
>>> from repro.cache.assignment import knobs
>>> model = CacheModel(CacheConfig(size_bytes=16 * 1024, name="L1"))
>>> fast = Assignment.uniform(knobs(0.2, 10))
>>> slow = Assignment.uniform(knobs(0.5, 14))
>>> model.access_time(fast) < model.access_time(slow)
True
>>> model.leakage_power(fast) > model.leakage_power(slow)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.technology.bptm import Technology, bptm65
from repro.technology.scaling import ToxScalingRule
from repro.cache.assignment import Assignment, COMPONENT_NAMES, Knobs
from repro.cache.components import (
    AddressDriverComponent,
    ArrayComponent,
    ComponentCost,
    DecoderComponent,
    DataDriverComponent,
)
from repro.cache.config import CacheConfig
from repro.cache.geometry import ArrayOrganization, organize


@dataclass(frozen=True)
class CacheEvaluation:
    """A cache evaluated under one complete assignment."""

    assignment: Assignment
    by_component: Dict[str, ComponentCost]

    @property
    def access_time(self) -> float:
        """Total access time (s)."""
        return sum(cost.delay for cost in self.by_component.values())

    @property
    def leakage_power(self) -> float:
        """Total standby leakage (W)."""
        return sum(cost.leakage_power for cost in self.by_component.values())

    @property
    def dynamic_read_energy(self) -> float:
        """Switched energy per read access (J)."""
        return sum(cost.dynamic_energy for cost in self.by_component.values())

    @property
    def transistor_count(self) -> int:
        return sum(cost.transistor_count for cost in self.by_component.values())


class CacheModel:
    """The four-component cache model of Section 3.

    Parameters
    ----------
    config:
        Architectural cache parameters.
    technology:
        Process node; defaults to the BPTM-style 65 nm node.
    rule:
        Tox co-scaling rule; defaults to proportional scaling.
    organization:
        Pre-chosen array organisation; defaults to the CACTI-style search
        of :func:`repro.cache.geometry.organize`.
    stack_enabled / gate_enabled:
        Ablation switches (stack effect in decoders; gate tunnelling
        everywhere).
    """

    def __init__(
        self,
        config: CacheConfig,
        technology: Optional[Technology] = None,
        rule: Optional[ToxScalingRule] = None,
        organization: Optional[ArrayOrganization] = None,
        stack_enabled: bool = True,
        gate_enabled: bool = True,
    ) -> None:
        self.config = config
        self.technology = technology if technology is not None else bptm65()
        self.rule = (
            rule if rule is not None else ToxScalingRule(technology=self.technology)
        )
        if self.rule.technology is not self.technology:
            raise ConfigurationError(
                "scaling rule is bound to a different technology object"
            )
        self.organization = (
            organization
            if organization is not None
            else organize(config, self.technology, self.rule)
        )
        self.stack_enabled = stack_enabled
        self.gate_enabled = gate_enabled
        self.components = {
            "address_drivers": AddressDriverComponent(
                self.technology, self.rule, self.organization,
                gate_enabled=gate_enabled,
            ),
            "decoder": DecoderComponent(
                self.technology, self.rule, self.organization,
                stack_enabled=stack_enabled, gate_enabled=gate_enabled,
            ),
            "array": ArrayComponent(
                self.technology, self.rule, self.organization,
                gate_enabled=gate_enabled,
            ),
            "data_drivers": DataDriverComponent(
                self.technology, self.rule, self.organization,
                gate_enabled=gate_enabled,
            ),
        }

    # -- evaluation -----------------------------------------------------

    def evaluate(self, assignment: Assignment) -> CacheEvaluation:
        """Evaluate the cache under a complete component assignment."""
        by_component = {
            name: self.components[name].evaluate(point.vth, point.tox)
            for name, point in assignment.components()
        }
        return CacheEvaluation(assignment=assignment, by_component=by_component)

    def access_time(self, assignment: Assignment) -> float:
        """Return total access time (s) under ``assignment``."""
        return self.evaluate(assignment).access_time

    def leakage_power(self, assignment: Assignment) -> float:
        """Return total standby leakage power (W) under ``assignment``."""
        return self.evaluate(assignment).leakage_power

    def dynamic_read_energy(self, assignment: Assignment) -> float:
        """Return switched energy (J) of one read under ``assignment``."""
        return self.evaluate(assignment).dynamic_read_energy

    def dynamic_write_energy(self, assignment: Assignment) -> float:
        """Return switched energy (J) of one write under ``assignment``.

        A write re-uses the address path and decoder but drives the bit
        lines rail to rail instead of sensing a small swing — this is the
        energy a miss *fill* pays at this level.
        """
        evaluation = self.evaluate(assignment)
        array_point = assignment.array
        array_write = self.components["array"].write_energy(
            array_point.vth, array_point.tox
        )
        non_array = sum(
            cost.dynamic_energy
            for name, cost in evaluation.by_component.items()
            if name != "array"
        )
        return non_array + array_write

    def uniform(self, point: Knobs) -> CacheEvaluation:
        """Evaluate with one (Vth, Tox) pair on all components (Scheme III)."""
        return self.evaluate(Assignment.uniform(point))

    # -- geometry -----------------------------------------------------------

    def area(self, tox: float = None) -> float:
        """Return the cell-array silicon area (m^2) at oxide thickness ``tox``."""
        if tox is None:
            tox = self.technology.tox_ref
        cell = self.components["array"].cell
        return self.organization.array_area(cell.width(tox), cell.height(tox))

    def describe(self) -> str:
        """Return a multi-line summary of the model's fixed structure."""
        return "\n".join(
            [
                self.config.describe(),
                self.organization.describe(),
                f"components: {', '.join(COMPONENT_NAMES)}",
            ]
        )
