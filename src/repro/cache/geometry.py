"""CACTI-style array organisation.

A cache's SRAM bits are physically split into sub-arrays to keep word
lines and bit lines short.  Following CACTI's nomenclature:

* ``ndwl`` — number of word-line divisions (columns of sub-arrays);
* ``ndbl`` — number of bit-line divisions (rows of sub-arrays).

One logical row (a whole set: all ways, data + tags + status) spans the
``ndwl`` sub-arrays of one horizontal stripe, so an access activates one
stripe: ``ndwl`` sub-arrays, each asserting one word line of
``cols_per_subarray`` cells.

The organisation is chosen **once per configuration** at the nominal
process point (the paper fixes the netlist before sweeping knobs) by
minimising an RC estimate of word-line + bit-line delay with a mild
replication penalty — the same trade CACTI's exhaustive loop makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import GeometryError
from repro.units import is_power_of_two
from repro.technology.bptm import Technology
from repro.technology.scaling import ToxScalingRule
from repro.circuits.sram_cell import SramCell
from repro.cache.config import CacheConfig

#: Largest sub-array dimensions the organiser will consider.
MAX_ROWS_PER_SUBARRAY = 1024
MAX_COLS_PER_SUBARRAY = 2048

#: Weight of the replication (area/energy) penalty in the organisation
#: cost function, relative to the RC delay term.
REPLICATION_WEIGHT = 0.40


@dataclass(frozen=True)
class ArrayOrganization:
    """A realised physical organisation of one cache's storage.

    Attributes
    ----------
    config:
        The architectural configuration this organisation realises.
    ndwl / ndbl:
        Word-line / bit-line divisions (powers of two).
    rows_per_subarray / cols_per_subarray:
        Sub-array dimensions in cells.
    """

    config: CacheConfig
    ndwl: int
    ndbl: int
    rows_per_subarray: int
    cols_per_subarray: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.ndwl) or not is_power_of_two(self.ndbl):
            raise GeometryError(
                f"ndwl/ndbl must be powers of two, got {self.ndwl}/{self.ndbl}"
            )
        if self.rows_per_subarray < 1 or self.cols_per_subarray < 1:
            raise GeometryError(
                "sub-array must be at least 1x1, got "
                f"{self.rows_per_subarray}x{self.cols_per_subarray}"
            )

    # -- counts ----------------------------------------------------------

    @property
    def n_subarrays(self) -> int:
        return self.ndwl * self.ndbl

    @property
    def total_rows(self) -> int:
        return self.rows_per_subarray * self.ndbl

    @property
    def total_cols(self) -> int:
        return self.cols_per_subarray * self.ndwl

    @property
    def total_cells(self) -> int:
        """All storage cells (data + tag + status)."""
        return self.total_rows * self.total_cols

    @property
    def active_subarrays(self) -> int:
        """Sub-arrays activated per access (one horizontal stripe)."""
        return self.ndwl

    @property
    def active_cols(self) -> int:
        """Bit-line pairs developed per access."""
        return self.cols_per_subarray * self.ndwl

    @property
    def n_sense_amps(self) -> int:
        """One sense amplifier per physical bit-line column.

        Vertically stacked sub-arrays share their column circuitry, so the
        count is the total column count, not columns x ndbl.
        """
        return self.total_cols

    @property
    def decoder_rows(self) -> int:
        """Word lines each per-sub-array row decoder must decode."""
        return self.rows_per_subarray

    @property
    def n_decoders(self) -> int:
        """Replicated row decoders (one per sub-array)."""
        return self.n_subarrays

    # -- physical dimensions (Tox-dependent) ------------------------------

    def subarray_width(self, cell_width: float) -> float:
        """Sub-array (and word-line) width (m) for the given cell width."""
        return self.cols_per_subarray * cell_width

    def subarray_height(self, cell_height: float) -> float:
        """Sub-array (and bit-line) height (m) for the given cell height."""
        return self.rows_per_subarray * cell_height

    def array_width(self, cell_width: float) -> float:
        """Full array width (m), all sub-array columns side by side."""
        return self.ndwl * self.subarray_width(cell_width)

    def array_height(self, cell_height: float) -> float:
        """Full array height (m), all sub-array stripes stacked."""
        return self.ndbl * self.subarray_height(cell_height)

    def array_area(self, cell_width: float, cell_height: float) -> float:
        """Cell-array silicon area (m^2), excluding periphery."""
        return self.array_width(cell_width) * self.array_height(cell_height)

    def bus_length(self, cell_width: float, cell_height: float) -> float:
        """Representative address/data bus run (m): half the perimeter."""
        return self.array_width(cell_width) + 0.5 * self.array_height(cell_height)

    def describe(self) -> str:
        return (
            f"{self.config.name}: {self.ndwl}x{self.ndbl} sub-arrays of "
            f"{self.rows_per_subarray} rows x {self.cols_per_subarray} cols"
        )


def candidate_organizations(config: CacheConfig) -> List[ArrayOrganization]:
    """Enumerate all legal (ndwl, ndbl) organisations of a configuration."""
    total_rows = config.n_sets
    total_cols = config.associativity * config.bits_per_way
    candidates: List[ArrayOrganization] = []
    ndbl = 1
    while ndbl <= total_rows:
        rows = total_rows // ndbl
        if rows >= 1 and rows <= MAX_ROWS_PER_SUBARRAY and total_rows % ndbl == 0:
            ndwl = 1
            while ndwl <= total_cols:
                cols = total_cols // ndwl
                if (
                    cols >= 8
                    and cols <= MAX_COLS_PER_SUBARRAY
                    and total_cols % ndwl == 0
                ):
                    candidates.append(
                        ArrayOrganization(
                            config=config,
                            ndwl=ndwl,
                            ndbl=ndbl,
                            rows_per_subarray=rows,
                            cols_per_subarray=cols,
                        )
                    )
                ndwl *= 2
        ndbl *= 2
    if not candidates:
        raise GeometryError(
            f"no legal organisation for {config.describe()} within "
            f"{MAX_ROWS_PER_SUBARRAY} rows x {MAX_COLS_PER_SUBARRAY} cols"
        )
    return candidates


def _organization_cost(
    organization: ArrayOrganization,
    technology: Technology,
    cell: SramCell,
) -> float:
    """RC-flavoured cost used to pick the organisation (lower is better).

    Word-line and bit-line distributed RC grow quadratically with segment
    length; replication multiplies decoder/driver overhead.  Evaluated at
    the nominal process point.
    """
    tox = technology.tox_ref
    cell_w = cell.width(tox)
    cell_h = cell.height(tox)
    wl_len = organization.subarray_width(cell_w)
    bl_len = organization.subarray_height(cell_h)
    r_per_m = technology.wire_res_per_m
    c_per_m = technology.wire_cap_per_m

    wl_cap = c_per_m * wl_len + organization.cols_per_subarray * cell.wordline_load(
        tox
    )
    bl_cap = c_per_m * bl_len + organization.rows_per_subarray * cell.bitline_load(
        tox
    )
    wl_rc = 0.5 * (r_per_m * wl_len) * wl_cap
    bl_rc = 0.5 * (r_per_m * bl_len) * bl_cap
    # Bit-line development also slows linearly with bit-line capacitance;
    # weight it like an RC with the cell's drive resistance.
    vth = technology.vth_ref
    i_read = cell.read_current(vth, tox)
    develop = bl_cap * 0.1 * technology.vdd / i_read

    replication = REPLICATION_WEIGHT * (
        organization.n_subarrays / 4.0
    ) * (wl_rc + bl_rc + develop)
    return wl_rc + bl_rc + develop + replication


def organize(
    config: CacheConfig,
    technology: Technology,
    rule: ToxScalingRule = None,
) -> ArrayOrganization:
    """Pick the best organisation for a configuration (CACTI's inner loop).

    Deterministic: ties break toward fewer sub-arrays, then lower ndbl.
    """
    if rule is None:
        rule = ToxScalingRule(technology=technology)
    cell = SramCell(technology=technology, rule=rule)
    candidates = candidate_organizations(config)
    scored = [
        (
            _organization_cost(organization, technology, cell),
            organization.n_subarrays,
            organization.ndbl,
            index,
            organization,
        )
        for index, organization in enumerate(candidates)
    ]
    scored.sort(key=lambda item: item[:4])
    return scored[0][4]
