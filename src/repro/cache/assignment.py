"""(Vth, Tox) knob assignments — the paper's decision variables.

Every optimisation in the paper chooses, for each cache component, one
point from the (Vth, Tox) grid.  :class:`Knobs` is one such point;
:class:`Assignment` maps the four component names to knobs and provides
the constructors matching the paper's three schemes:

* :meth:`Assignment.uniform` — Scheme III (one pair everywhere);
* :meth:`Assignment.split` — Scheme II (one pair for the memory cell
  array, one shared by the three peripheral components);
* :meth:`Assignment.per_component` — Scheme I (independent pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, NamedTuple, Set, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.technology.bptm import TOX_MAX_A, TOX_MIN_A, VTH_MAX, VTH_MIN

#: The paper's four cache components, in critical-path order.
COMPONENT_NAMES: Tuple[str, ...] = (
    "address_drivers",
    "decoder",
    "array",
    "data_drivers",
)

#: The components the paper groups as "peripheral" in Scheme II.
PERIPHERAL_COMPONENTS: Tuple[str, ...] = (
    "address_drivers",
    "decoder",
    "data_drivers",
)


class Knobs(NamedTuple):
    """One (Vth, Tox) design point.

    Attributes
    ----------
    vth:
        Saturated threshold voltage (V).
    tox:
        Gate-oxide thickness (m).
    """

    vth: float
    tox: float

    @property
    def tox_angstrom(self) -> float:
        """Oxide thickness in ångströms (the paper's unit)."""
        return units.to_angstrom(self.tox)

    def validate(self, technology=None) -> "Knobs":
        """Return self if inside the design box, else raise.

        Without a ``technology`` the box is the paper's 65 nm range
        (the module constants); with one, the node's own bounds.
        """
        if technology is None:
            vth_min, vth_max = VTH_MIN, VTH_MAX
            tox_min_a, tox_max_a = TOX_MIN_A, TOX_MAX_A
        else:
            vth_min, vth_max = technology.vth_min, technology.vth_max
            tox_min_a, tox_max_a = technology.tox_min_a, technology.tox_max_a
        if not vth_min <= self.vth <= vth_max:
            raise ConfigurationError(
                f"Vth={self.vth} V outside [{vth_min:g}, {vth_max:g}] V"
            )
        tox_a = self.tox_angstrom
        if not tox_min_a - 1e-9 <= tox_a <= tox_max_a + 1e-9:
            raise ConfigurationError(
                f"Tox={tox_a:.2f} Å outside [{tox_min_a:g}, {tox_max_a:g}] Å"
            )
        return self

    def label(self) -> str:
        """Return a short human-readable form like ``(0.35 V, 12 Å)``."""
        return f"({self.vth:.2f} V, {self.tox_angstrom:.0f} Å)"


def knobs(vth: float, tox_angstrom: float) -> Knobs:
    """Convenience constructor taking Tox in ångströms (the paper's unit)."""
    return Knobs(vth=vth, tox=units.angstrom(tox_angstrom))


@dataclass(frozen=True)
class Assignment:
    """A complete component -> :class:`Knobs` mapping for one cache."""

    by_component: Tuple[Tuple[str, Knobs], ...]

    def __post_init__(self) -> None:
        names = tuple(name for name, _ in self.by_component)
        if sorted(names) != sorted(COMPONENT_NAMES):
            raise ConfigurationError(
                f"assignment must cover exactly {COMPONENT_NAMES}, got {names}"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Dict[str, Knobs]) -> "Assignment":
        """Build from a dict with exactly the four component names."""
        if sorted(mapping) != sorted(COMPONENT_NAMES):
            raise ConfigurationError(
                f"assignment must cover exactly {COMPONENT_NAMES}, got "
                f"{tuple(mapping)}"
            )
        return cls(
            by_component=tuple(
                (name, mapping[name]) for name in COMPONENT_NAMES
            )
        )

    @classmethod
    def uniform(cls, point: Knobs) -> "Assignment":
        """Scheme III: the same pair on all four components."""
        return cls.from_mapping({name: point for name in COMPONENT_NAMES})

    @classmethod
    def split(cls, cell: Knobs, periphery: Knobs) -> "Assignment":
        """Scheme II: one pair for the array, one for the periphery."""
        mapping = {name: periphery for name in PERIPHERAL_COMPONENTS}
        mapping["array"] = cell
        return cls.from_mapping(mapping)

    @classmethod
    def per_component(
        cls,
        address_drivers: Knobs,
        decoder: Knobs,
        array: Knobs,
        data_drivers: Knobs,
    ) -> "Assignment":
        """Scheme I: independent pairs per component."""
        return cls.from_mapping(
            {
                "address_drivers": address_drivers,
                "decoder": decoder,
                "array": array,
                "data_drivers": data_drivers,
            }
        )

    # -- queries ----------------------------------------------------------

    def __getitem__(self, component: str) -> Knobs:
        for name, point in self.by_component:
            if name == component:
                return point
        raise KeyError(component)

    def components(self) -> Iterable[Tuple[str, Knobs]]:
        """Iterate (component name, knobs) pairs in critical-path order."""
        return iter(self.by_component)

    @property
    def array(self) -> Knobs:
        return self["array"]

    def distinct_vths(self) -> Set[float]:
        """Return the set of distinct Vth values used."""
        return {point.vth for _, point in self.by_component}

    def distinct_toxes(self) -> Set[float]:
        """Return the set of distinct Tox values used."""
        return {point.tox for _, point in self.by_component}

    def process_cost(self) -> Tuple[int, int]:
        """Return (#Tox, #Vth) — the paper's process-cost measure.

        Each extra oxide thickness is an extra mask/growth step; each
        extra Vth is an extra implant.  Section 5's tuple problem budgets
        these counts across the whole memory system.
        """
        return (len(self.distinct_toxes()), len(self.distinct_vths()))

    def describe(self) -> str:
        """Return a multi-line human-readable dump."""
        lines = [
            f"  {name:16s} -> {point.label()}"
            for name, point in self.by_component
        ]
        return "\n".join(lines)
