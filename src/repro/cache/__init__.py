"""Cache organisation and whole-cache power/delay model.

This package assembles the circuit blocks of :mod:`repro.circuits` into
the paper's four-component cache:

* :mod:`~repro.cache.config` — user-facing cache parameters;
* :mod:`~repro.cache.geometry` — CACTI-style array partitioning into
  sub-arrays (word-line/bit-line divisions) chosen once per configuration;
* :mod:`~repro.cache.assignment` — (Vth, Tox) knob assignments per
  component (the decision variables of every optimisation in the paper);
* :mod:`~repro.cache.components` — the four components (cell array +
  sense amps, decoder, address drivers, data drivers) with leakage /
  delay / energy queries;
* :mod:`~repro.cache.cache_model` — :class:`CacheModel`, the main public
  entry point: access time, total leakage and dynamic energy of a cache
  under any assignment.
"""

from repro.cache.config import CacheConfig
from repro.cache.assignment import Knobs, Assignment, COMPONENT_NAMES
from repro.cache.geometry import ArrayOrganization, organize
from repro.cache.cache_model import CacheModel

__all__ = [
    "CacheConfig",
    "Knobs",
    "Assignment",
    "COMPONENT_NAMES",
    "ArrayOrganization",
    "organize",
    "CacheModel",
]
