"""Unit conventions and conversion helpers.

The library works internally in **SI base units** everywhere:

* length in metres (m)
* time in seconds (s)
* voltage in volts (V)
* current in amperes (A)
* power in watts (W)
* energy in joules (J)
* capacitance in farads (F)

The paper, however, quotes quantities in the units customary for the
domain — oxide thickness in ångströms, access time in picoseconds, leakage
power in milliwatts, energy in picojoules.  These helpers make the
conversions explicit at API boundaries so no function ever receives a
"mystery float".

Example
-------
>>> from repro import units
>>> units.angstrom(12.0)
1.2e-09
>>> units.to_angstrom(1.2e-09)
12.0
>>> units.to_ps(units.ps(850.0))
850.0
"""

from __future__ import annotations

import math

import numpy as np

# ---------------------------------------------------------------------------
# Scale factors
# ---------------------------------------------------------------------------

ANGSTROM = 1e-10
"""Metres per ångström."""

NM = 1e-9
"""Metres per nanometre."""

UM = 1e-6
"""Metres per micrometre."""

PS = 1e-12
"""Seconds per picosecond."""

NS = 1e-9
"""Seconds per nanosecond."""

MW = 1e-3
"""Watts per milliwatt."""

UW = 1e-6
"""Watts per microwatt."""

NW = 1e-9
"""Watts per nanowatt."""

PJ = 1e-12
"""Joules per picojoule."""

NJ = 1e-9
"""Joules per nanojoule."""

FF = 1e-15
"""Farads per femtofarad."""

KB = 1024
"""Bytes per kibibyte (the paper's "KB")."""

MB = 1024 * 1024
"""Bytes per mebibyte."""


# ---------------------------------------------------------------------------
# Into SI
# ---------------------------------------------------------------------------

def angstrom(value: float) -> float:
    """Convert a length in ångströms to metres."""
    return value * ANGSTROM


def nm(value: float) -> float:
    """Convert a length in nanometres to metres."""
    return value * NM


def um(value: float) -> float:
    """Convert a length in micrometres to metres."""
    return value * UM


def ps(value: float) -> float:
    """Convert a time in picoseconds to seconds."""
    return value * PS


def ns(value: float) -> float:
    """Convert a time in nanoseconds to seconds."""
    return value * NS


def mw(value: float) -> float:
    """Convert a power in milliwatts to watts."""
    return value * MW


def uw(value: float) -> float:
    """Convert a power in microwatts to watts."""
    return value * UW


def pj(value: float) -> float:
    """Convert an energy in picojoules to joules."""
    return value * PJ


def ff(value: float) -> float:
    """Convert a capacitance in femtofarads to farads."""
    return value * FF


def kb(value: float) -> int:
    """Convert a size in kibibytes to bytes."""
    return int(round(value * KB))


def mb(value: float) -> int:
    """Convert a size in mebibytes to bytes."""
    return int(round(value * MB))


# ---------------------------------------------------------------------------
# Out of SI
# ---------------------------------------------------------------------------

def to_angstrom(metres: float) -> float:
    """Convert a length in metres to ångströms."""
    return metres / ANGSTROM


def to_nm(metres: float) -> float:
    """Convert a length in metres to nanometres."""
    return metres / NM


def to_um(metres: float) -> float:
    """Convert a length in metres to micrometres."""
    return metres / UM


def to_ps(seconds: float) -> float:
    """Convert a time in seconds to picoseconds."""
    return seconds / PS


def to_ns(seconds: float) -> float:
    """Convert a time in seconds to nanoseconds."""
    return seconds / NS


def to_mw(watts: float) -> float:
    """Convert a power in watts to milliwatts."""
    return watts / MW


def to_uw(watts: float) -> float:
    """Convert a power in watts to microwatts."""
    return watts / UW


def to_pj(joules: float) -> float:
    """Convert an energy in joules to picojoules."""
    return joules / PJ


def to_ff(farads: float) -> float:
    """Convert a capacitance in farads to femtofarads."""
    return farads / FF


def to_kb(size_bytes: int) -> float:
    """Convert a size in bytes to kibibytes."""
    return size_bytes / KB


# ---------------------------------------------------------------------------
# Physical constants (SI)
# ---------------------------------------------------------------------------

BOLTZMANN = 1.380649e-23
"""Boltzmann constant, J/K."""

ELECTRON_CHARGE = 1.602176634e-19
"""Elementary charge, C."""

EPSILON_0 = 8.8541878128e-12
"""Vacuum permittivity, F/m."""

EPSILON_SIO2 = 3.9 * EPSILON_0
"""Permittivity of silicon dioxide, F/m."""

EPSILON_SI = 11.7 * EPSILON_0
"""Permittivity of silicon, F/m."""

ROOM_TEMPERATURE = 300.0
"""Default junction temperature, K (the paper does not vary temperature)."""


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage kT/q in volts at the given temperature.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    return BOLTZMANN * temperature_k / ELECTRON_CHARGE


def oxide_capacitance_per_area(tox_m: float) -> float:
    """Return SiO2 gate capacitance per unit area (F/m^2) for thickness ``tox_m``.

    Cox = eps_SiO2 / Tox.  For Tox = 12 Å this is ~2.9e-2 F/m^2
    (2.9 µF/cm^2), consistent with 65 nm-era devices.  ``tox_m`` may be a
    numpy array, in which case the result has the same shape.
    """
    if not isinstance(tox_m, np.ndarray):
        if tox_m <= 0.0:
            raise ValueError(f"oxide thickness must be positive, got {tox_m!r}")
    elif np.any(np.less_equal(tox_m, 0.0)):
        raise ValueError(f"oxide thickness must be positive, got {tox_m!r}")
    return EPSILON_SIO2 / tox_m


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Return log2 of an exact power of two, raising ValueError otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def geometric_mean(values) -> float:
    """Return the geometric mean of a non-empty iterable of positive floats."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
