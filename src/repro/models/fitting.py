"""Least-squares fitting of the Section 3 closed forms.

The leakage surface spans several decades, so a plain linear-space fit
would only care about the leakiest corner; we therefore fit the
double-exponential leakage form by separable nonlinear least squares on a
(a1, a2) exponent grid — for fixed exponents the coefficients
(A0, A1, A2) solve a *linear* non-negative problem — scored in **log
space** so every decade counts equally.  The delay form is fitted the same
way over its single nonlinear parameter k3 (scored in linear space; delay
spans less than one decade).  Both fits are deterministic: no random
starts, no iteration-order dependence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import nnls

from repro.errors import FittingError
from repro.models.characterize import ComponentSamples
from repro.models.forms import DelayForm, EnergyForm, LeakageForm

#: Exponent search grids.  Leakage: a1 in decades/V ~ [4, 16] -> 1/V;
#: a2 in decades/Å ~ [0.2, 1.4].  Delay: k3 in 1/V.
LEAKAGE_A1_GRID = -np.linspace(8.0, 40.0, 65)
LEAKAGE_A2_GRID = -np.linspace(0.4, 3.2, 57)
DELAY_K3_GRID = np.linspace(0.2, 6.0, 117)


@dataclass(frozen=True)
class FitReport:
    """Quality metrics of one fitted form.

    Attributes
    ----------
    r_squared:
        Coefficient of determination in linear space.
    log_r_squared:
        R^2 computed on log10 of the data (meaningful for leakage, which
        spans decades; NaN when the data contains non-positive values).
    max_relative_error:
        ``max |fit - data| / data`` over the grid.
    rmse:
        Root-mean-square error in the data's units.
    n_samples:
        Number of grid points fitted.
    """

    r_squared: float
    log_r_squared: float
    max_relative_error: float
    rmse: float
    n_samples: int

    def acceptable(self, min_r_squared: float = 0.98) -> bool:
        """Return True if the fit explains the data well enough to use."""
        return self.r_squared >= min_r_squared


def _report(data: np.ndarray, fitted: np.ndarray) -> FitReport:
    residual = fitted - data
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((data - data.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    if np.all(data > 0) and np.all(fitted > 0):
        log_data = np.log10(data)
        log_fit = np.log10(fitted)
        ss_res_log = float(np.sum((log_fit - log_data) ** 2))
        ss_tot_log = float(np.sum((log_data - log_data.mean()) ** 2))
        log_r_squared = 1.0 - ss_res_log / ss_tot_log if ss_tot_log > 0 else 1.0
    else:
        log_r_squared = float("nan")
    max_rel = float(np.max(np.abs(residual) / np.maximum(np.abs(data), 1e-30)))
    rmse = math.sqrt(ss_res / data.size)
    return FitReport(
        r_squared=r_squared,
        log_r_squared=log_r_squared,
        max_relative_error=max_rel,
        rmse=rmse,
        n_samples=int(data.size),
    )


def _leakage_design_matrix(
    vth: np.ndarray, tox: np.ndarray, a1: float, a2: float
) -> np.ndarray:
    return np.column_stack(
        [np.ones_like(vth), np.exp(a1 * vth), np.exp(a2 * tox)]
    )


def fit_leakage(samples: ComponentSamples) -> Tuple[LeakageForm, FitReport]:
    """Fit the double-exponential leakage form to component samples.

    Returns the fitted :class:`LeakageForm` and its :class:`FitReport`.
    Raises :class:`FittingError` if the samples contain non-positive
    leakage (physically impossible; indicates a broken substrate).
    """
    vth, tox, leakage, _, _ = samples.flat()
    if np.any(leakage <= 0):
        raise FittingError(
            f"component {samples.component!r} reported non-positive leakage"
        )
    log_data = np.log(leakage)
    best = None
    for a1 in LEAKAGE_A1_GRID:
        basis1 = np.exp(a1 * vth)
        for a2 in LEAKAGE_A2_GRID:
            matrix = np.column_stack([np.ones_like(vth), basis1, np.exp(a2 * tox)])
            coefficients, _ = nnls(matrix, leakage)
            prediction = matrix @ coefficients
            # Score in log space so the quiet corner of the design box
            # counts as much as the leaky one.
            safe = np.maximum(prediction, 1e-30)
            score = float(np.sum((np.log(safe) - log_data) ** 2))
            if best is None or score < best[0]:
                best = (score, a1, a2, coefficients)
    _, a1, a2, coefficients = best
    form = LeakageForm(
        a0=float(coefficients[0]),
        a1_coeff=float(coefficients[1]),
        a1_exp=float(a1),
        a2_coeff=float(coefficients[2]),
        a2_exp=float(a2),
    )
    fitted = form(vth, tox)
    return form, _report(leakage, fitted)


def fit_delay(samples: ComponentSamples) -> Tuple[DelayForm, FitReport]:
    """Fit the linear-Tox / weak-exponential-Vth delay form."""
    vth, tox, _, delay, _ = samples.flat()
    if np.any(delay <= 0):
        raise FittingError(
            f"component {samples.component!r} reported non-positive delay"
        )
    best = None
    for k3 in DELAY_K3_GRID:
        matrix = np.column_stack([np.ones_like(vth), np.exp(k3 * vth), tox])
        coefficients, residuals, _, _ = np.linalg.lstsq(matrix, delay, rcond=None)
        prediction = matrix @ coefficients
        score = float(np.sum((prediction - delay) ** 2))
        if coefficients[1] < 0:
            continue  # k1 must be non-negative for the form to make sense
        if best is None or score < best[0]:
            best = (score, k3, coefficients)
    if best is None:
        raise FittingError(
            f"delay fit failed for component {samples.component!r}: no "
            "admissible k3 produced a non-negative exponential coefficient"
        )
    _, k3, coefficients = best
    form = DelayForm(
        k0=float(coefficients[0]),
        k1=float(coefficients[1]),
        k2=float(coefficients[2]),
        k3=float(k3),
    )
    fitted = form(vth, tox)
    return form, _report(delay, fitted)


def fit_energy(samples: ComponentSamples) -> Tuple[EnergyForm, FitReport]:
    """Fit the linear-Tox dynamic-energy form."""
    vth, tox, _, _, energy = samples.flat()
    matrix = np.column_stack([np.ones_like(tox), tox])
    coefficients, _, _, _ = np.linalg.lstsq(matrix, energy, rcond=None)
    form = EnergyForm(e0=float(coefficients[0]), e1=float(coefficients[1]))
    fitted = form(vth, tox)
    return form, _report(energy, fitted)
