"""Section 3 analytical models: the paper's fitted closed forms.

The paper observes (via HSPICE) that each cache component's total leakage
is a double exponential in (Vth, Tox) and its delay is linear in Tox with
a weak exponential Vth dependence, then uses those closed forms in the
optimisation.  This package reproduces that workflow against our circuit
substrate:

* :mod:`~repro.models.forms` — the closed forms
  ``P = A0 + A1 e^{a1 Vth} + A2 e^{a2 Tox}`` and
  ``T = k0 + k1 e^{k3 Vth} + k2 Tox``;
* :mod:`~repro.models.characterize` — the "HSPICE campaign": sweep a
  component over the (Vth, Tox) grid and record leakage / delay samples;
* :mod:`~repro.models.fitting` — least-squares fits of the closed forms to
  the samples, with fit-quality reporting;
* :mod:`~repro.models.analytical` — a fitted drop-in stand-in for a
  :class:`~repro.cache.cache_model.CacheModel`, mirroring how the paper
  optimises over the fitted forms rather than raw simulations.
"""

from repro.models.forms import LeakageForm, DelayForm, EnergyForm
from repro.models.characterize import (
    ComponentSamples,
    characterize_component,
    characterize_cache,
    default_grid,
)
from repro.models.fitting import (
    FitReport,
    fit_leakage,
    fit_delay,
    fit_energy,
)
from repro.models.analytical import FittedComponent, FittedCacheModel, fit_cache_model

__all__ = [
    "LeakageForm",
    "DelayForm",
    "EnergyForm",
    "ComponentSamples",
    "characterize_component",
    "characterize_cache",
    "default_grid",
    "FitReport",
    "fit_leakage",
    "fit_delay",
    "fit_energy",
    "FittedComponent",
    "FittedCacheModel",
    "fit_cache_model",
]
