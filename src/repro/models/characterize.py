"""Characterisation sweeps — the library's "HSPICE campaign".

The paper characterises BPTM technology files over the (Vth, Tox) grid and
fits closed forms to the results.  Here the circuit substrate plays the
role of HSPICE: :func:`characterize_component` sweeps one cache component
over a grid and records (leakage, delay, dynamic energy) samples that
:mod:`repro.models.fitting` then fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro import units
from repro.errors import FittingError
from repro.technology.bptm import (
    TOX_MAX_A,
    TOX_MIN_A,
    VTH_MAX,
    VTH_MIN,
    Technology,
)
from repro.cache.cache_model import CacheModel

#: Default grid density (the paper: "discrete values with small step size").
DEFAULT_VTH_POINTS = 13
DEFAULT_TOX_POINTS = 9


def default_grid(
    vth_points: int = DEFAULT_VTH_POINTS,
    tox_points: int = DEFAULT_TOX_POINTS,
    technology: "Technology" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the default (vth_values, tox_values_angstrom) sweep axes.

    Without a ``technology`` the axes span the paper's 65 nm design box;
    with one, they span that node's own bounds.
    """
    if vth_points < 2 or tox_points < 2:
        raise FittingError(
            f"grid needs >= 2 points per axis, got {vth_points}x{tox_points}"
        )
    if technology is None:
        vth_min, vth_max = VTH_MIN, VTH_MAX
        tox_min_a, tox_max_a = TOX_MIN_A, TOX_MAX_A
    else:
        vth_min, vth_max = technology.vth_min, technology.vth_max
        tox_min_a, tox_max_a = technology.tox_min_a, technology.tox_max_a
    vths = np.linspace(vth_min, vth_max, vth_points)
    toxes = np.linspace(tox_min_a, tox_max_a, tox_points)
    return vths, toxes


@dataclass(frozen=True)
class ComponentSamples:
    """Characterisation samples of one component over a (Vth, Tox) grid.

    Attributes
    ----------
    component:
        Component name (one of
        :data:`repro.cache.assignment.COMPONENT_NAMES`).
    vths / toxes_angstrom:
        The 1-D sweep axes.
    leakage / delay / energy:
        2-D arrays of shape ``(len(vths), len(toxes))`` — watts, seconds,
        joules.
    """

    component: str
    vths: np.ndarray
    toxes_angstrom: np.ndarray
    leakage: np.ndarray
    delay: np.ndarray
    energy: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.vths), len(self.toxes_angstrom))
        for name in ("leakage", "delay", "energy"):
            array = getattr(self, name)
            if array.shape != expected:
                raise FittingError(
                    f"{name} samples have shape {array.shape}, expected {expected}"
                )

    def flat(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return flattened (vth, tox, leakage, delay, energy) columns."""
        vth_grid, tox_grid = np.meshgrid(self.vths, self.toxes_angstrom, indexing="ij")
        return (
            vth_grid.ravel(),
            tox_grid.ravel(),
            self.leakage.ravel(),
            self.delay.ravel(),
            self.energy.ravel(),
        )

    @property
    def n_samples(self) -> int:
        return self.leakage.size


def characterize_component(
    model: CacheModel,
    component: str,
    vths: Sequence[float] = None,
    toxes_angstrom: Sequence[float] = None,
) -> ComponentSamples:
    """Sweep one component of ``model`` over the (Vth, Tox) grid.

    Parameters
    ----------
    model:
        The structural cache model whose component is characterised.
    component:
        Component name, e.g. ``"array"``.
    vths / toxes_angstrom:
        Sweep axes; default to :func:`default_grid` over the design box
        of ``model``'s technology.
    """
    if component not in model.components:
        raise FittingError(
            f"unknown component {component!r}; expected one of "
            f"{sorted(model.components)}"
        )
    if vths is None or toxes_angstrom is None:
        default_vths, default_toxes = default_grid(
            technology=model.technology
        )
        vths = default_vths if vths is None else np.asarray(vths, dtype=float)
        toxes_angstrom = (
            default_toxes
            if toxes_angstrom is None
            else np.asarray(toxes_angstrom, dtype=float)
        )
    vths = np.asarray(vths, dtype=float)
    toxes_angstrom = np.asarray(toxes_angstrom, dtype=float)

    block = model.components[component]
    delay, leakage, energy = block.evaluate_grid(
        vths, units.angstrom(toxes_angstrom)
    )
    return ComponentSamples(
        component=component,
        vths=vths,
        toxes_angstrom=toxes_angstrom,
        leakage=leakage,
        delay=delay,
        energy=energy,
    )


def characterize_cache(
    model: CacheModel,
    vths: Sequence[float] = None,
    toxes_angstrom: Sequence[float] = None,
) -> Dict[str, ComponentSamples]:
    """Characterise all four components of a cache model."""
    return {
        name: characterize_component(model, name, vths, toxes_angstrom)
        for name in model.components
    }
