"""The paper's closed analytical forms (Section 3).

Total leakage of a cache component::

    P_total(Vth, Tox) = A0 + A1 * exp(a1 * Vth) + A2 * exp(a2 * Tox)

with ``a1 < 0`` (subthreshold conduction dies exponentially with threshold)
and ``a2 < 0`` (gate tunnelling dies exponentially with oxide thickness).

Delay of a component::

    Td(Vth, Tox) = k0 + k1 * exp(k3 * Vth) + k2 * Tox

with ``k3 > 0`` small ("exponential growth with very small exponents") and
``k2 > 0`` (thicker oxide is linearly slower over the narrow design
window).

Conventions: Vth in volts, Tox in **ångströms** (the paper's unit — using
metres would push the exponents to 1e10 magnitudes and wreck conditioning),
leakage in watts, delay in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import FittingError


@dataclass(frozen=True)
class LeakageForm:
    """``P(Vth, Tox) = A0 + A1 e^{a1 Vth} + A2 e^{a2 Tox}`` (watts).

    ``a1`` is in 1/V, ``a2`` in 1/Å.
    """

    a0: float
    a1_coeff: float
    a1_exp: float
    a2_coeff: float
    a2_exp: float

    def __post_init__(self) -> None:
        if self.a1_coeff < 0 or self.a2_coeff < 0:
            raise FittingError(
                "leakage form requires non-negative exponential coefficients, "
                f"got A1={self.a1_coeff}, A2={self.a2_coeff}"
            )

    def __call__(self, vth, tox_angstrom):
        """Evaluate the form; accepts scalars or numpy arrays."""
        vth = np.asarray(vth, dtype=float)
        tox = np.asarray(tox_angstrom, dtype=float)
        result = (
            self.a0
            + self.a1_coeff * np.exp(self.a1_exp * vth)
            + self.a2_coeff * np.exp(self.a2_exp * tox)
        )
        if result.ndim == 0:
            return float(result)
        return result

    @property
    def subthreshold_decades_per_volt(self) -> float:
        """|a1| converted to decades/V — comparable with 1/S of the device."""
        return abs(self.a1_exp) / math.log(10.0)

    @property
    def gate_decades_per_angstrom(self) -> float:
        """|a2| converted to decades/Å — comparable with tunnelling data."""
        return abs(self.a2_exp) / math.log(10.0)

    def parameters(self) -> Tuple[float, float, float, float, float]:
        return (self.a0, self.a1_coeff, self.a1_exp, self.a2_coeff, self.a2_exp)


@dataclass(frozen=True)
class DelayForm:
    """``T(Vth, Tox) = k0 + k1 e^{k3 Vth} + k2 Tox`` (seconds).

    ``k3`` is in 1/V, ``k2`` in s/Å.
    """

    k0: float
    k1: float
    k2: float
    k3: float

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise FittingError(f"delay form requires k1 >= 0, got {self.k1}")

    def __call__(self, vth, tox_angstrom):
        """Evaluate the form; accepts scalars or numpy arrays."""
        vth = np.asarray(vth, dtype=float)
        tox = np.asarray(tox_angstrom, dtype=float)
        result = self.k0 + self.k1 * np.exp(self.k3 * vth) + self.k2 * tox
        if result.ndim == 0:
            return float(result)
        return result

    def parameters(self) -> Tuple[float, float, float, float]:
        return (self.k0, self.k1, self.k2, self.k3)


@dataclass(frozen=True)
class EnergyForm:
    """``E(Vth, Tox) = e0 + e1 * Tox`` (joules per access).

    Dynamic energy is ``C V^2``-driven: Vth plays no role and the Tox
    dependence (bigger cells -> longer lines, thinner oxide -> more gate
    capacitance) is mild and near-linear over the design window.  Not in
    the paper's Section 3 (it only fits leakage and delay) but required to
    close the Section 5 total-energy loop with fitted models.
    """

    e0: float
    e1: float

    def __call__(self, vth, tox_angstrom):
        """Evaluate the form; ``vth`` is accepted (and ignored) for symmetry."""
        tox = np.asarray(tox_angstrom, dtype=float)
        result = self.e0 + self.e1 * tox
        if result.ndim == 0:
            return float(result)
        return result

    def parameters(self) -> Tuple[float, float]:
        return (self.e0, self.e1)
