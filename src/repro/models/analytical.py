"""Fitted analytical cache model — the paper's optimisation substrate.

The paper does not optimise over HSPICE directly: it fits the Section 3
closed forms once per component and runs the nonlinear program over the
fitted models.  :func:`fit_cache_model` reproduces that workflow: it
characterises a structural :class:`~repro.cache.cache_model.CacheModel`
over the grid, fits all three forms per component, and returns a
:class:`FittedCacheModel` that duck-types the structural model's
``evaluate`` / ``access_time`` / ``leakage_power`` interface — so every
optimiser in :mod:`repro.optimize` runs unchanged on either substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.cache.assignment import Assignment, Knobs
from repro.cache.cache_model import CacheEvaluation, CacheModel
from repro.cache.components import ComponentCost
from repro.errors import FittingError
from repro.models.characterize import characterize_component
from repro.models.fitting import (
    FitReport,
    fit_delay,
    fit_energy,
    fit_leakage,
)
from repro.models.forms import DelayForm, EnergyForm, LeakageForm


@dataclass(frozen=True)
class FittedComponent:
    """One component's three fitted forms plus their quality reports."""

    name: str
    leakage_form: LeakageForm
    delay_form: DelayForm
    energy_form: EnergyForm
    leakage_report: FitReport
    delay_report: FitReport
    energy_report: FitReport

    def evaluate(self, vth: float, tox: float) -> ComponentCost:
        """Evaluate the fitted forms at (vth, tox[m]) as a ComponentCost."""
        tox_a = units.to_angstrom(tox)
        return ComponentCost(
            delay=float(self.delay_form(vth, tox_a)),
            leakage_power=float(self.leakage_form(vth, tox_a)),
            dynamic_energy=float(self.energy_form(vth, tox_a)),
            transistor_count=0,
        )

    def evaluate_grid(
        self, vths, toxes
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the fitted forms over the (vths x toxes[m]) grid.

        Returns ``(delays, leakages, energies)`` arrays of shape
        ``(len(vths), len(toxes))`` where element ``[i, j]`` equals the
        scalar ``evaluate(vths[i], toxes[j])`` result.
        """
        vths = np.atleast_1d(np.asarray(vths, dtype=float))
        toxes_a = units.to_angstrom(np.atleast_1d(np.asarray(toxes, dtype=float)))
        vth_col = vths[:, None]
        tox_row = toxes_a[None, :]
        shape = (vths.size, toxes_a.size)
        delays = np.broadcast_to(self.delay_form(vth_col, tox_row), shape)
        leakages = np.broadcast_to(self.leakage_form(vth_col, tox_row), shape)
        energies = np.broadcast_to(self.energy_form(vth_col, tox_row), shape)
        return (
            np.ascontiguousarray(delays),
            np.ascontiguousarray(leakages),
            np.ascontiguousarray(energies),
        )

    def delay(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).delay

    def leakage_power(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).leakage_power

    def dynamic_energy(self, vth: float, tox: float) -> float:
        return self.evaluate(vth, tox).dynamic_energy


#: The paper calls the fitted substrate the "analytical model"; expose the
#: class under that name too so callers can use either vocabulary.
AnalyticalComponent = FittedComponent


class FittedCacheModel:
    """A cache model backed by fitted closed forms (Section 3 workflow).

    Mirrors the :class:`~repro.cache.cache_model.CacheModel` evaluation
    interface; holds a reference to the structural model it was fitted
    from for configuration metadata.
    """

    def __init__(
        self,
        source: CacheModel,
        components: Dict[str, FittedComponent],
    ) -> None:
        if sorted(components) != sorted(source.components):
            raise FittingError(
                "fitted components do not cover the structural model: "
                f"{sorted(components)} vs {sorted(source.components)}"
            )
        self.source = source
        self.config = source.config
        self.technology = source.technology
        self.organization = source.organization
        self.components = components

    def evaluate(self, assignment: Assignment) -> CacheEvaluation:
        by_component = {
            name: self.components[name].evaluate(point.vth, point.tox)
            for name, point in assignment.components()
        }
        return CacheEvaluation(assignment=assignment, by_component=by_component)

    def access_time(self, assignment: Assignment) -> float:
        return self.evaluate(assignment).access_time

    def leakage_power(self, assignment: Assignment) -> float:
        return self.evaluate(assignment).leakage_power

    def dynamic_read_energy(self, assignment: Assignment) -> float:
        return self.evaluate(assignment).dynamic_read_energy

    def uniform(self, point: Knobs) -> CacheEvaluation:
        return self.evaluate(Assignment.uniform(point))

    def worst_fit_r_squared(self) -> float:
        """Return the lowest linear-space R^2 across all fitted forms."""
        reports = []
        for component in self.components.values():
            reports.extend(
                [
                    component.leakage_report,
                    component.delay_report,
                    component.energy_report,
                ]
            )
        return min(report.r_squared for report in reports)


def fit_cache_model(
    model: CacheModel,
    vths: Optional[Sequence[float]] = None,
    toxes_angstrom: Optional[Sequence[float]] = None,
) -> FittedCacheModel:
    """Characterise and fit all four components of a structural model."""
    fitted: Dict[str, FittedComponent] = {}
    for name in model.components:
        samples = characterize_component(model, name, vths, toxes_angstrom)
        leakage_form, leakage_report = fit_leakage(samples)
        delay_form, delay_report = fit_delay(samples)
        energy_form, energy_report = fit_energy(samples)
        fitted[name] = FittedComponent(
            name=name,
            leakage_form=leakage_form,
            delay_form=delay_form,
            energy_form=energy_form,
            leakage_report=leakage_report,
            delay_report=delay_report,
            energy_report=energy_report,
        )
    return FittedCacheModel(source=model, components=fitted)
