"""JSON persistence for fitted analytical models.

Characterising and fitting a large L2 takes seconds; design-space scripts
that iterate on optimisation settings shouldn't re-pay it every run.
:func:`save_fitted_model` / :func:`load_fitted_model` round-trip a
:class:`~repro.models.analytical.FittedCacheModel` through a plain JSON
document (the structural source model is *not* serialised — loading
requires the same :class:`~repro.cache.cache_model.CacheModel` to be
rebuilt, and the document records enough configuration fingerprint to
verify the pairing).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import FittingError
from repro.models.analytical import FittedCacheModel, FittedComponent
from repro.models.fitting import FitReport
from repro.models.forms import DelayForm, EnergyForm, LeakageForm

#: Document schema version; bump on breaking layout changes.
SCHEMA_VERSION = 1


def _fingerprint(model) -> Dict:
    """Identifying facts of the structural model a fit belongs to."""
    return {
        "config_name": model.config.name,
        "size_bytes": model.config.size_bytes,
        "block_bytes": model.config.block_bytes,
        "associativity": model.config.associativity,
        "technology": model.technology.name,
        "ndwl": model.organization.ndwl,
        "ndbl": model.organization.ndbl,
    }


def _report_to_dict(report: FitReport) -> Dict:
    return {
        "r_squared": report.r_squared,
        "log_r_squared": report.log_r_squared,
        "max_relative_error": report.max_relative_error,
        "rmse": report.rmse,
        "n_samples": report.n_samples,
    }


def _report_from_dict(data: Dict) -> FitReport:
    return FitReport(**data)


def fitted_model_to_dict(fitted: FittedCacheModel) -> Dict:
    """Serialise a fitted model to a JSON-ready dict."""
    components = {}
    for name, component in fitted.components.items():
        components[name] = {
            "leakage": list(component.leakage_form.parameters()),
            "delay": list(component.delay_form.parameters()),
            "energy": list(component.energy_form.parameters()),
            "leakage_report": _report_to_dict(component.leakage_report),
            "delay_report": _report_to_dict(component.delay_report),
            "energy_report": _report_to_dict(component.energy_report),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": _fingerprint(fitted),
        "components": components,
    }


def fitted_model_from_dict(data: Dict, source) -> FittedCacheModel:
    """Rebuild a fitted model against its structural ``source``.

    Raises :class:`FittingError` if the document was fitted for a
    different configuration (size, shape, organisation or node).
    """
    if data.get("schema_version") != SCHEMA_VERSION:
        raise FittingError(
            f"unsupported schema version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    expected = _fingerprint(source)
    if data.get("fingerprint") != expected:
        raise FittingError(
            "fitted-model document does not match the structural model: "
            f"{data.get('fingerprint')} vs {expected}"
        )
    components = {}
    for name, payload in data["components"].items():
        a0, a1c, a1e, a2c, a2e = payload["leakage"]
        k0, k1, k2, k3 = payload["delay"]
        e0, e1 = payload["energy"]
        components[name] = FittedComponent(
            name=name,
            leakage_form=LeakageForm(
                a0=a0, a1_coeff=a1c, a1_exp=a1e, a2_coeff=a2c, a2_exp=a2e
            ),
            delay_form=DelayForm(k0=k0, k1=k1, k2=k2, k3=k3),
            energy_form=EnergyForm(e0=e0, e1=e1),
            leakage_report=_report_from_dict(payload["leakage_report"]),
            delay_report=_report_from_dict(payload["delay_report"]),
            energy_report=_report_from_dict(payload["energy_report"]),
        )
    return FittedCacheModel(source=source, components=components)


def save_fitted_model(fitted: FittedCacheModel, path) -> None:
    """Write a fitted model to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fitted_model_to_dict(fitted), handle, indent=2)


def load_fitted_model(path, source) -> FittedCacheModel:
    """Read a fitted model from ``path`` and bind it to ``source``."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return fitted_model_from_dict(data, source)
