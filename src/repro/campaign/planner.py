"""Campaign planning: spec -> canonical, deduplicated unit work items.

The planner turns one :class:`~repro.campaign.spec.CampaignSpec` into a
:class:`Plan`:

* **expansion** — every block of the spec becomes unit work items in a
  deterministic order (profiles, matrix points, amat points, sweeps,
  optimisations);
* **canonical fingerprints** — each unit is keyed by
  :func:`repro.perf.disk_cache.make_fingerprint` over exactly the
  inputs that determine its result (structure, axes, surface identity —
  never the campaign or cache names), so identical work keys identically
  across campaigns;
* **dedup** — units that collapse onto an already-planned fingerprint
  are dropped and counted;
* **checkpoint reuse** — units whose fingerprint is already in the
  ``campaigns`` disk store (or, for profile units, whose dense surface
  is already servable by the profile store) are born done with the
  checkpointed result;
* **sweep coalescing** — same-structure sweep units are grouped into
  union-grid batches (the leader/follower discipline of
  :mod:`repro.service.batching`, applied ahead of time), bounded by the
  batcher's union ceiling, so N sweeps over one structure cost one
  engine evaluation.

Unit payloads are plain JSON-able dicts — they cross the process-pool
boundary and land in checkpoints verbatim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.archsim.workloads import WorkloadSpec
from repro.cache.assignment import Knobs
from repro.cache.config import CacheConfig
from repro.optimize.two_level import default_l1_knobs, default_l2_knobs
from repro.perf.disk_cache import make_fingerprint
from repro.technology.nodes import node_technology
from repro.perf.profile_store import (
    L1_SURFACE_SET_COUNTS,
    L2_SURFACE_SET_COUNTS,
    SURFACE_ASSOCS,
    get_store,
    surface_fingerprint,
)

from repro.campaign.spec import CAMPAIGN_FORMAT, CampaignSpec
from repro.campaign.store import CampaignStore

#: Unit kinds that run as their own job on the worker pool; everything
#: else is served inline by the campaign coordinator (surface slices and
#: closed-form pricing cost microseconds once the surface exists).
HEAVY_KINDS = ("profile", "optimize")


@dataclass
class Unit:
    """One canonical work item of a planned campaign."""

    unit_id: str
    kind: str
    fingerprint: str
    payload: dict
    after: Tuple[str, ...] = ()
    group: Optional[str] = None

    @property
    def heavy(self) -> bool:
        return self.kind in HEAVY_KINDS or self.group is not None


@dataclass
class Plan:
    """A fully-expanded campaign: units, reuse, and sweep groups."""

    spec: CampaignSpec
    units: List[Unit] = field(default_factory=list)
    by_id: Dict[str, Unit] = field(default_factory=dict)
    #: unit_id -> checkpointed result (born done, no work scheduled).
    reused: Dict[str, dict] = field(default_factory=dict)
    #: Units dropped because an identical fingerprint was already planned.
    deduped: int = 0
    #: group id -> unit ids of sweep units computed in one union batch.
    groups: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def total_units(self) -> int:
        return len(self.units)


def workload_payload(spec: WorkloadSpec) -> dict:
    return asdict(spec)


def workload_from_payload(payload: dict) -> WorkloadSpec:
    return WorkloadSpec(**payload)


def cache_payload(config: CacheConfig) -> dict:
    return {
        "size_bytes": config.size_bytes,
        "block_bytes": config.block_bytes,
        "associativity": config.associativity,
        "output_bits": config.output_bits,
        "name": config.name,
    }


def cache_from_payload(payload: dict) -> CacheConfig:
    return CacheConfig(
        size_bytes=int(payload["size_bytes"]),
        block_bytes=int(payload["block_bytes"]),
        associativity=int(payload["associativity"]),
        output_bits=int(payload["output_bits"]),
        name=str(payload["name"]),
    )


def _structure_key(config: CacheConfig) -> Tuple[int, int, int, int]:
    """The batching identity of a cache: its geometry, never its name."""
    return (
        config.size_bytes,
        config.block_bytes,
        config.associativity,
        config.output_bits,
    )


def knobs_payload(value: Knobs) -> dict:
    return {"vth": value.vth, "tox": value.tox_angstrom}


def unit_fingerprint(kind: str, *parts) -> str:
    """Canonical key of one unit (folds the campaign format version)."""
    return make_fingerprint("campaign-unit", CAMPAIGN_FORMAT, kind, *parts)


def profile_unit_result(spec: WorkloadSpec, policy: str, n_accesses: int,
                        seed: int) -> dict:
    """The deterministic result payload of a profile unit.

    Both the planner (reusing an already-servable surface) and the
    runner (after computing one) emit exactly this document, so a
    resumed campaign is bit-identical to an uninterrupted one.
    """
    points = len(SURFACE_ASSOCS)
    return {
        "workload": spec.name,
        "policy": policy,
        "n_accesses": n_accesses,
        "seed": seed,
        "l1_points": len(L1_SURFACE_SET_COUNTS) * points,
        "l2_points": len(L2_SURFACE_SET_COUNTS) * points,
    }


def build_plan(
    spec: CampaignSpec,
    cache_dir=None,
    store: Optional[CampaignStore] = None,
) -> Plan:
    """Expand, canonicalise, dedup, and pre-complete one campaign."""
    checkpoint_store = store if store is not None else CampaignStore(cache_dir)
    profile_store = get_store(cache_dir)
    plan = Plan(spec=spec)
    counters: Dict[str, int] = {}
    by_fingerprint: Dict[str, Unit] = {}
    calibration = spec.calibration

    def add(kind: str, fingerprint: str, payload: dict,
            after: Tuple[str, ...] = ()) -> Unit:
        existing = by_fingerprint.get(fingerprint)
        if existing is not None:
            plan.deduped += 1
            return existing
        counters[kind] = counters.get(kind, 0) + 1
        unit = Unit(
            unit_id=f"{kind}-{counters[kind]}",
            kind=kind,
            fingerprint=fingerprint,
            payload=payload,
            after=after,
        )
        by_fingerprint[fingerprint] = unit
        plan.units.append(unit)
        plan.by_id[unit.unit_id] = unit
        return unit

    # -- profile units: one dense surface per (workload, policy) -----------
    profile_ids: Dict[Tuple[str, str], str] = {}
    if spec.needs_surfaces:
        for workload in spec.workloads:
            for policy in spec.policies:
                fingerprint = unit_fingerprint(
                    "profile",
                    surface_fingerprint(
                        workload, policy,
                        calibration.n_accesses, calibration.seed,
                    ),
                )
                unit = add("profile", fingerprint, {
                    "workload": workload_payload(workload),
                    "policy": policy,
                    "n_accesses": calibration.n_accesses,
                    "seed": calibration.seed,
                })
                profile_ids[(workload.name, policy)] = unit.unit_id
                # A surface the profile store can already serve (memory
                # or disk tier) makes the unit free: born done.
                if unit.unit_id not in plan.reused and profile_store.peek(
                    workload, policy=policy,
                    n_accesses=calibration.n_accesses, seed=calibration.seed,
                ) is not None:
                    plan.reused[unit.unit_id] = profile_unit_result(
                        workload, policy,
                        calibration.n_accesses, calibration.seed,
                    )

    def surface_key(workload: WorkloadSpec, policy: str) -> str:
        return surface_fingerprint(
            workload, policy, calibration.n_accesses, calibration.seed
        )

    def reuse_from_checkpoint(unit: Unit) -> None:
        if unit.unit_id in plan.reused:
            return
        checkpointed = checkpoint_store.load(unit.fingerprint)
        if checkpointed is not None:
            plan.reused[unit.unit_id] = checkpointed

    # -- matrix point units ------------------------------------------------
    if spec.matrix is not None:
        matrix = spec.matrix
        levels = (
            ("l1", matrix.l1_sizes_kb, matrix.l1_assocs),
            ("l2", matrix.l2_sizes_kb, matrix.l2_assocs),
        )
        for workload in spec.workloads:
            for policy in spec.policies:
                dep = (profile_ids[(workload.name, policy)],)
                for level, sizes_kb, assocs in levels:
                    for size_kb in sizes_kb:
                        for assoc in assocs:
                            fingerprint = unit_fingerprint(
                                "point", surface_key(workload, policy),
                                level, size_kb, assoc,
                            )
                            unit = add("point", fingerprint, {
                                "workload": workload_payload(workload),
                                "policy": policy,
                                "n_accesses": calibration.n_accesses,
                                "seed": calibration.seed,
                                "level": level,
                                "size_kb": size_kb,
                                "assoc": assoc,
                            }, after=dep)
                            reuse_from_checkpoint(unit)

    # The technology axis: circuit-level units (amat, sweep, optimize)
    # expand once per (node, style) and carry it in their fingerprints —
    # the same shape at two nodes is two different results.
    tech_axis = tuple(
        (node, spec.scaling_style) for node in spec.nodes
    )

    # -- amat units --------------------------------------------------------
    if spec.amat is not None:
        amat = spec.amat
        constraints = {}
        if spec.constraints.max_amat_ps is not None:
            constraints["max_amat_ps"] = spec.constraints.max_amat_ps
        if spec.constraints.max_leakage_mw is not None:
            constraints["max_leakage_mw"] = spec.constraints.max_leakage_mw
        for workload in spec.workloads:
            for policy in spec.policies:
                dep = (profile_ids[(workload.name, policy)],)
                for node, style in tech_axis:
                    technology = node_technology(node, style)
                    l1_point = (
                        amat.l1_knobs
                        if amat.l1_knobs is not None
                        else default_l1_knobs(technology)
                    )
                    l2_point = (
                        amat.l2_knobs
                        if amat.l2_knobs is not None
                        else default_l2_knobs(technology)
                    )
                    for l1_size_kb in amat.l1_sizes_kb:
                        for l1_assoc in amat.l1_assocs:
                            for l2_size_kb in amat.l2_sizes_kb:
                                for l2_assoc in amat.l2_assocs:
                                    shape = {
                                        "node": node,
                                        "scaling_style": style,
                                        "l1_size_kb": l1_size_kb,
                                        "l1_assoc": l1_assoc,
                                        "l2_size_kb": l2_size_kb,
                                        "l2_assoc": l2_assoc,
                                        "l1_knobs":
                                            knobs_payload(l1_point),
                                        "l2_knobs":
                                            knobs_payload(l2_point),
                                        "memory_latency_ps":
                                            amat.memory_latency_ps,
                                        "constraints": constraints,
                                    }
                                    fingerprint = unit_fingerprint(
                                        "amat",
                                        surface_key(workload, policy),
                                        shape,
                                    )
                                    unit = add("amat", fingerprint, {
                                        "workload":
                                            workload_payload(workload),
                                        "policy": policy,
                                        "n_accesses":
                                            calibration.n_accesses,
                                        "seed": calibration.seed,
                                        **shape,
                                    }, after=dep)
                                    reuse_from_checkpoint(unit)

    # -- sweep units -------------------------------------------------------
    sweep_units: List[Unit] = []
    for block in spec.sweeps:
        for node, style in tech_axis:
            fingerprint = unit_fingerprint(
                "sweep", _structure_key(block.config), node, style,
                block.vths, block.toxes_angstrom, block.components,
            )
            unit = add("sweep", fingerprint, {
                "cache": cache_payload(block.config),
                "node": node,
                "scaling_style": style,
                "vth": list(block.vths),
                "tox_angstrom": list(block.toxes_angstrom),
                "components": list(block.components),
            })
            reuse_from_checkpoint(unit)
            if unit not in sweep_units:
                sweep_units.append(unit)

    # -- optimize units ----------------------------------------------------
    if spec.optimize is not None:
        block = spec.optimize
        for config in block.configs:
            for scheme in block.schemes:
                for target_ps in block.targets_ps:
                    for node, style in tech_axis:
                        fingerprint = unit_fingerprint(
                            "optimize", _structure_key(config), node, style,
                            scheme, target_ps, block.vths,
                            block.toxes_angstrom,
                        )
                        unit = add("optimize", fingerprint, {
                            "cache": cache_payload(config),
                            "node": node,
                            "scaling_style": style,
                            "scheme": scheme,
                            "target_ps": target_ps,
                            "vth": (
                                list(block.vths)
                                if block.vths is not None else None
                            ),
                            "tox_angstrom": (
                                list(block.toxes_angstrom)
                                if block.toxes_angstrom is not None else None
                            ),
                        })
                        reuse_from_checkpoint(unit)

    _group_sweeps(plan, sweep_units)
    return plan


def _group_sweeps(plan: Plan, sweep_units: List[Unit]) -> None:
    """Coalesce non-reused sweep units into bounded union-grid groups."""
    # Lazy import keeps repro.campaign free of module-level service
    # imports (the service layer imports campaign types at load time).
    from repro.service.batching import MAX_UNION_POINTS

    # Grouping identity = structure + technology: a union grid is one
    # engine pass over one model, and the model is (structure, node,
    # style) — grids at different nodes can never share tables.
    by_structure: Dict[Tuple, List[Unit]] = {}
    for unit in sweep_units:
        if unit.unit_id in plan.reused:
            continue
        key = (
            unit.payload["cache"]["size_bytes"],
            unit.payload["cache"]["block_bytes"],
            unit.payload["cache"]["associativity"],
            unit.payload["cache"]["output_bits"],
            unit.payload.get("node", 65),
            unit.payload.get("scaling_style", "itrs"),
        )
        by_structure.setdefault(key, []).append(unit)

    group_index = 0
    for members in by_structure.values():
        current: List[Unit] = []
        union_vths: set = set()
        union_toxes: set = set()

        def flush() -> None:
            nonlocal group_index, current, union_vths, union_toxes
            if not current:
                return
            group_index += 1
            group_id = f"group-{group_index}"
            plan.groups[group_id] = [unit.unit_id for unit in current]
            for unit in current:
                unit.group = group_id
            current = []
            union_vths = set()
            union_toxes = set()

        for unit in members:
            vths = set(unit.payload["vth"])
            toxes = set(unit.payload["tox_angstrom"])
            grown_vths = union_vths | vths
            grown_toxes = union_toxes | toxes
            if current and (
                len(grown_vths) * len(grown_toxes) > MAX_UNION_POINTS
            ):
                flush()
                grown_vths, grown_toxes = vths, toxes
            current.append(unit)
            union_vths, union_toxes = grown_vths, grown_toxes
        flush()
