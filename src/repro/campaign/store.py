"""Content-addressed campaign checkpoints (DiskCache namespace
``campaigns``).

Every completed unit of every campaign is persisted here, keyed by the
unit's canonical fingerprint — *not* by campaign id.  That makes
checkpoints shareable: a resubmitted identical spec (after a crash, a
cancel, or from a different campaign that happens to contain the same
unit) reuses finished work without recomputing it, and a kill -9 mid
campaign loses at most the units that had not finished (writes are
atomic per entry).

Alongside the per-unit checkpoints the store keeps one **state record
per campaign id** (``campaign-state:<id>``): the raw spec document, the
owning worker's pid, and a progress snapshot.  That record is what lets
*any* worker in a multi-worker deployment answer
``GET /v1/campaigns/<id>`` for a campaign another process is running —
and what lets a surviving worker adopt a campaign whose owner was
killed: re-parse the persisted spec, rebuild the plan, and resume from
the unit checkpoints under the same campaign id.
"""

from __future__ import annotations

from typing import Optional

from repro.perf.disk_cache import DiskCache


class CampaignStore:
    """Thin fingerprint-keyed JSON store for completed unit results."""

    NAMESPACE = "campaigns"

    def __init__(self, directory=None) -> None:
        self._disk = DiskCache(self.NAMESPACE, directory=directory)

    def load(self, fingerprint: str) -> Optional[dict]:
        """Return a checkpointed unit result, or None."""
        return self._disk.load(fingerprint)

    def store(self, fingerprint: str, result: dict) -> None:
        """Persist one completed unit result (atomic, last writer wins)."""
        self._disk.store(fingerprint, result)

    # -- per-campaign state records -----------------------------------------

    @staticmethod
    def _state_fingerprint(campaign_id: str) -> str:
        return f"campaign-state:{campaign_id}"

    def load_state(self, campaign_id: str) -> Optional[dict]:
        """Return the shared state record for a campaign id, or None."""
        record = self._disk.load(self._state_fingerprint(campaign_id))
        if not isinstance(record, dict) or "campaign_id" not in record:
            return None
        return record

    def store_state(self, campaign_id: str, record: dict) -> None:
        """Persist one campaign state record (atomic, last writer wins).

        Best-effort by design: campaign execution must never fail
        because the observability/recovery record could not be written.
        """
        try:
            self._disk.store(self._state_fingerprint(campaign_id), record)
        except (TypeError, OSError):  # pragma: no cover - defensive
            pass

    def clear(self) -> int:
        """Drop every checkpoint (tests); returns the count removed."""
        return self._disk.clear()
