"""Content-addressed campaign checkpoints (DiskCache namespace
``campaigns``).

Every completed unit of every campaign is persisted here, keyed by the
unit's canonical fingerprint — *not* by campaign id.  That makes
checkpoints shareable: a resubmitted identical spec (after a crash, a
cancel, or from a different campaign that happens to contain the same
unit) reuses finished work without recomputing it, and a kill -9 mid
campaign loses at most the units that had not finished (writes are
atomic per entry).
"""

from __future__ import annotations

from typing import Optional

from repro.perf.disk_cache import DiskCache


class CampaignStore:
    """Thin fingerprint-keyed JSON store for completed unit results."""

    NAMESPACE = "campaigns"

    def __init__(self, directory=None) -> None:
        self._disk = DiskCache(self.NAMESPACE, directory=directory)

    def load(self, fingerprint: str) -> Optional[dict]:
        """Return a checkpointed unit result, or None."""
        return self._disk.load(fingerprint)

    def store(self, fingerprint: str, result: dict) -> None:
        """Persist one completed unit result (atomic, last writer wins)."""
        self._disk.store(fingerprint, result)

    def clear(self) -> int:
        """Drop every checkpoint (tests); returns the count removed."""
        return self._disk.clear()
