"""Typed campaign specifications (the declarative DSE entry point).

A campaign is one declarative document describing a whole design-space
exploration: which workloads and replacement policies to calibrate,
which (size, associativity) matrix to read off the dense miss surfaces,
which AMAT configurations to price under which knob assignments and
constraints, which (Vth, Tox) sweeps to evaluate, and which scheme
optimisations to run.  The planner (:mod:`repro.campaign.planner`)
expands one :class:`CampaignSpec` into canonical unit work items; this
module only holds the validated, immutable spec types the service
schema layer (:func:`repro.service.schemas.parse_campaign`) produces.

Import discipline: this package is *below* :mod:`repro.service` — the
service imports campaign types, never the reverse at module level — so
these dataclasses depend only on the core library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.archsim.workloads import WorkloadSpec
from repro.cache.assignment import Knobs
from repro.cache.config import CacheConfig

#: Bump when unit semantics change: folded into every unit fingerprint,
#: so old checkpoints read as clean misses instead of stale hits.
#: 2: sweep/amat/optimize units carry a technology node + scaling style
#: (profile and point units stay node-free — miss rates are purely
#: architectural).
CAMPAIGN_FORMAT = 2

#: Unit kinds the planner can emit, in result-report order.
UNIT_KINDS = ("profile", "point", "amat", "sweep", "optimize")


@dataclass(frozen=True)
class CampaignCalibration:
    """Shared trace parameters for every surface the campaign touches."""

    n_accesses: int = 300_000
    seed: int = 1


@dataclass(frozen=True)
class MatrixBlock:
    """A (size, assoc) calibration-point matrix read off the surfaces.

    Expands to one ``point`` unit per (workload, policy, level, size,
    assoc); every point must lie on the dense profile surface so the
    whole matrix costs one trace pass per (workload, policy).
    """

    l1_sizes_kb: Tuple[int, ...]
    l1_assocs: Tuple[int, ...]
    l2_sizes_kb: Tuple[int, ...]
    l2_assocs: Tuple[int, ...]


@dataclass(frozen=True)
class AmatBlock:
    """A two-level AMAT/energy/leakage pricing matrix.

    Expands to one ``amat`` unit per (workload, policy, L1 shape, L2
    shape); miss rates come from the campaign's own calibration
    surfaces, so the block shares trace passes with the matrix block.
    """

    l1_sizes_kb: Tuple[int, ...]
    l1_assocs: Tuple[int, ...]
    l2_sizes_kb: Tuple[int, ...]
    l2_assocs: Tuple[int, ...]
    #: ``None`` means "each node's own default knobs" — resolved per
    #: node at plan time, so a multi-node campaign prices every node at
    #: its equivalent point inside its own design box.
    l1_knobs: Optional[Knobs] = None
    l2_knobs: Optional[Knobs] = None
    memory_latency_ps: Optional[float] = None


@dataclass(frozen=True)
class SweepBlock:
    """One (Vth, Tox) grid evaluation of a cache structure.

    Same shape as a ``POST /v1/sweep`` body; the planner coalesces
    same-structure sweep blocks into union-grid groups.
    """

    config: CacheConfig
    vths: Tuple[float, ...]
    toxes_angstrom: Tuple[float, ...]
    components: Tuple[str, ...]


@dataclass(frozen=True)
class OptimizeBlock:
    """The Scheme I-III comparison: caches x schemes x delay targets."""

    configs: Tuple[CacheConfig, ...]
    schemes: Tuple[str, ...]
    targets_ps: Tuple[float, ...]
    vths: Optional[Tuple[float, ...]] = None
    toxes_angstrom: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class CampaignConstraints:
    """Feasibility bounds annotated onto every ``amat`` unit result."""

    max_amat_ps: Optional[float] = None
    max_leakage_mw: Optional[float] = None

    def active(self) -> bool:
        return self.max_amat_ps is not None or self.max_leakage_mw is not None


@dataclass(frozen=True)
class CampaignSpec:
    """One validated campaign document."""

    name: str
    workloads: Tuple[WorkloadSpec, ...]
    policies: Tuple[str, ...]
    calibration: CampaignCalibration
    matrix: Optional[MatrixBlock] = None
    amat: Optional[AmatBlock] = None
    sweeps: Tuple[SweepBlock, ...] = ()
    optimize: Optional[OptimizeBlock] = None
    constraints: CampaignConstraints = CampaignConstraints()
    #: Technology-node axis: the circuit-level blocks (amat, sweeps,
    #: optimize) expand once per node; the architectural blocks
    #: (profile, matrix points) are node-free and never multiply.
    nodes: Tuple[int, ...] = (65,)
    scaling_style: str = "itrs"

    @property
    def needs_surfaces(self) -> bool:
        """True when the campaign calibrates (matrix or amat present)."""
        return self.matrix is not None or self.amat is not None
