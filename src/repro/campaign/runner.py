"""Campaign execution: a planned unit fleet on the shared job pool.

:class:`CampaignManager` runs each submitted :class:`Plan` from its own
coordinator thread:

* **heavy units** (profile surfaces, sweep union groups, scheme
  optimisations) become jobs on the daemon's existing
  :class:`~repro.service.jobs.JobManager` process pool, bounded by a
  per-campaign fan-out cap and retried per unit;
* **light units** (matrix points, AMAT pricings) run inline on the
  coordinator once their profile dependency is done — they only slice an
  already-computed surface and evaluate closed-form models, which costs
  microseconds and would waste a pool round-trip;
* every completed unit is **checkpointed** to the ``campaigns`` disk
  namespace under its canonical fingerprint the moment it finishes, so a
  killed daemon resumes a resubmitted campaign from the last finished
  unit instead of from zero.

Import discipline: no module-level ``repro.service`` imports — the
service layer imports this module.  The one service helper the sweep
task needs (:func:`~repro.service.batching.slice_grid`) is imported
lazily at call time, and the job manager plus metrics registry arrive by
injection.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import units as siunits
from repro.archsim.amat import amat_two_level
from repro.cache.assignment import knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig, l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.errors import (
    InfeasibleConstraintError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import (
    _compute_component_tables,
    minimize_leakage,
)
from repro.optimize.space import DesignSpace
from repro.perf.profile_store import get_store
from repro.perf.table_cache import cached_tables
from repro.technology.nodes import node_technology

from repro.campaign.planner import (
    Plan,
    Unit,
    build_plan,
    cache_from_payload,
    profile_unit_result,
    workload_from_payload,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.procutil import owner_alive, proc_start_ticks

#: Campaign statuses.
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)

#: Unit statuses (``reused`` = born done from a checkpoint or surface).
UNIT_PENDING = "pending"
UNIT_RUNNING = "running"
UNIT_DONE = "done"
UNIT_FAILED = "failed"
UNIT_CANCELLED = "cancelled"
UNIT_REUSED = "reused"

#: Scheme codes as the campaign spec carries them (same codes as
#: ``POST /v1/optimize``), mapped without importing the service schemas.
SCHEMES = {
    "1": Scheme.PER_COMPONENT,
    "2": Scheme.CELL_VS_PERIPHERY,
    "3": Scheme.UNIFORM,
}


def _grid_to_lists(grid) -> list:
    return [[float(value) for value in row] for row in grid]


# ---------------------------------------------------------------------------
# Pool tasks (module-level: picklable by reference on the process pool)
# ---------------------------------------------------------------------------

def _profile_task(
    workload_payload: dict,
    policy: str,
    n_accesses: int,
    seed: int,
    cache_dir: Optional[str],
) -> dict:
    """Compute one dense (workload, policy) surface on a pool worker.

    The surface itself lands in the shared profile-store disk tier —
    the campaign's point and amat units slice it from the coordinator —
    and the returned unit result is the deterministic summary document.
    """
    spec = workload_from_payload(workload_payload)
    get_store(cache_dir).surface(
        spec, policy=policy, n_accesses=n_accesses, seed=seed
    )
    return profile_unit_result(spec, policy, n_accesses, seed)


def _sweep_group_task(
    members: Sequence[Tuple[str, dict]],
    cache_payload: dict,
    node: int = 65,
    scaling_style: str = "itrs",
) -> dict:
    """Evaluate one union (Vth, Tox) grid; slice every member out of it.

    This is the leader/follower batching discipline applied ahead of
    time: N same-structure sweep units cost one engine grid evaluation.
    Grouping guarantees every member shares one (node, style), so one
    technology covers the whole union.  Returns ``{unit_id:
    sweep-response dict}``.
    """
    # Lazy: repro.campaign must not import repro.service at module level.
    from repro.service.batching import slice_grid

    technology = node_technology(node, scaling_style)
    model = CacheModel(
        cache_from_payload(cache_payload), technology=technology
    )
    union_vths = sorted({v for _, p in members for v in p["vth"]})
    union_toxes = sorted({t for _, p in members for t in p["tox_angstrom"]})
    space = DesignSpace.for_technology(
        technology,
        vth_values=tuple(union_vths),
        tox_values_angstrom=tuple(union_toxes),
    )
    tables = cached_tables(model, space, _compute_component_tables)
    results = {}
    for unit_id, payload in members:
        vths = tuple(payload["vth"])
        toxes = tuple(payload["tox_angstrom"])
        components = {}
        for name in payload["components"]:
            sliced = slice_grid(tables, space, vths, toxes, name)
            components[name] = {
                "delay_ps": _grid_to_lists(siunits.to_ps(sliced["delay"])),
                "leakage_mw": _grid_to_lists(
                    siunits.to_mw(sliced["leakage"])
                ),
                "energy_pj": _grid_to_lists(
                    siunits.to_pj(sliced["energy"])
                ),
            }
        results[unit_id] = {
            "cache": payload["cache"]["name"],
            "node": node,
            "scaling_style": scaling_style,
            "vth": list(vths),
            "tox_angstrom": list(toxes),
            "components": components,
        }
    return results


def _optimize_task(payload: dict) -> dict:
    """Run one Section-4 scheme optimisation on a pool worker.

    An infeasible delay target is a *result* (``feasible: false`` with
    the best achievable access time), not a unit failure — a campaign
    comparing Schemes I–III across targets wants the frontier, not an
    error.
    """
    node = int(payload.get("node", 65))
    style = str(payload.get("scaling_style", "itrs"))
    technology = node_technology(node, style)
    model = CacheModel(
        cache_from_payload(payload["cache"]), technology=technology
    )
    scheme = SCHEMES[payload["scheme"]]
    space = None
    if payload.get("vth") is not None:
        space = DesignSpace.for_technology(
            technology,
            vth_values=tuple(payload["vth"]),
            tox_values_angstrom=tuple(payload["tox_angstrom"]),
        )
    base = {
        "cache": payload["cache"]["name"],
        "node": node,
        "scaling_style": style,
        "scheme": scheme.paper_name,
        "target_ps": payload["target_ps"],
    }
    try:
        result = minimize_leakage(
            model, scheme, siunits.ps(payload["target_ps"]), space=space
        )
    except InfeasibleConstraintError as error:
        return {
            **base,
            "feasible": False,
            "best_achievable_ps": float(
                siunits.to_ps(error.best_achievable)
            ),
        }
    return {
        **base,
        "feasible": True,
        "access_ps": float(siunits.to_ps(result.access_time)),
        "slack_ps": float(siunits.to_ps(result.slack)),
        "leakage_mw": float(siunits.to_mw(result.leakage_power)),
        "assignment": {
            name: {
                "vth": float(point.vth),
                "tox_angstrom": float(point.tox_angstrom),
            }
            for name, point in result.assignment.components()
        },
    }


# ---------------------------------------------------------------------------
# Light units (run inline on the coordinator thread)
# ---------------------------------------------------------------------------

def run_point_unit(payload: dict, cache_dir: Optional[str] = None) -> dict:
    """One calibration point read off the workload's dense surface."""
    spec = workload_from_payload(payload["workload"])
    surface = get_store(cache_dir).surface(
        spec,
        policy=payload["policy"],
        n_accesses=payload["n_accesses"],
        seed=payload["seed"],
    )
    rate = surface.miss_rate(
        payload["level"], payload["size_kb"] * 1024, payload["assoc"]
    )
    return {
        "workload": spec.name,
        "policy": payload["policy"],
        "level": payload["level"],
        "size_kb": payload["size_kb"],
        "assoc": payload["assoc"],
        # float() everywhere a numpy scalar could leak through: results
        # are checkpointed as JSON and must round-trip bit-identically.
        "miss_rate": float(rate),
    }


def run_amat_unit(
    payload: dict,
    cache_dir: Optional[str] = None,
    model_for: Optional[
        Callable[[CacheConfig, int, str], CacheModel]
    ] = None,
) -> dict:
    """Price one two-level shape (mirrors ``POST /v1/amat``).

    Miss rates come from the campaign's own calibration surface; the
    circuit models come from ``model_for`` (the daemon's shared LRU of
    constructed :class:`CacheModel` objects, keyed by structure *and*
    technology node) when injected.
    """
    spec = workload_from_payload(payload["workload"])
    surface = get_store(cache_dir).surface(
        spec,
        policy=payload["policy"],
        n_accesses=payload["n_accesses"],
        seed=payload["seed"],
    )
    node = int(payload.get("node", 65))
    style = str(payload.get("scaling_style", "itrs"))
    l1_shape = l1_config(
        payload["l1_size_kb"], associativity=payload["l1_assoc"]
    )
    l2_shape = l2_config(
        payload["l2_size_kb"], associativity=payload["l2_assoc"]
    )
    if model_for is not None:
        l1_model = model_for(l1_shape, node, style)
        l2_model = model_for(l2_shape, node, style)
    else:
        technology = node_technology(node, style)
        l1_model = CacheModel(l1_shape, technology=technology)
        l2_model = CacheModel(l2_shape, technology=technology)
    l1_eval = l1_model.uniform(
        knobs(payload["l1_knobs"]["vth"], payload["l1_knobs"]["tox"])
    )
    l2_eval = l2_model.uniform(
        knobs(payload["l2_knobs"]["vth"], payload["l2_knobs"]["tox"])
    )
    memory = (
        MainMemoryModel(latency=siunits.ps(payload["memory_latency_ps"]))
        if payload.get("memory_latency_ps") is not None
        else MainMemoryModel()
    )
    m1 = surface.l1_miss_rate(
        l1_model.config.size_bytes, payload["l1_assoc"]
    )
    m2 = surface.l2_local_miss_rate(
        l2_model.config.size_bytes, payload["l2_assoc"]
    )
    amat = amat_two_level(
        l1_eval.access_time, m1, l2_eval.access_time, m2, memory.latency
    )
    energy = l1_eval.dynamic_read_energy + m1 * (
        l2_eval.dynamic_read_energy + m2 * memory.energy_per_access
    )
    result = {
        "workload": spec.name,
        "policy": payload["policy"],
        "node": node,
        "scaling_style": style,
        # float() everywhere a numpy scalar could leak through: results
        # are checkpointed as JSON and must round-trip bit-identically.
        "amat_ps": float(siunits.to_ps(amat)),
        "energy_per_access_pj": float(siunits.to_pj(energy)),
        "total_leakage_mw": float(siunits.to_mw(
            l1_eval.leakage_power + l2_eval.leakage_power
        )),
        "memory_latency_ps": float(siunits.to_ps(memory.latency)),
        "l1": {
            "size_kb": payload["l1_size_kb"],
            "associativity": payload["l1_assoc"],
            "access_ps": float(siunits.to_ps(l1_eval.access_time)),
            "leakage_mw": float(siunits.to_mw(l1_eval.leakage_power)),
            "miss_rate": float(m1),
        },
        "l2": {
            "size_kb": payload["l2_size_kb"],
            "associativity": payload["l2_assoc"],
            "access_ps": float(siunits.to_ps(l2_eval.access_time)),
            "leakage_mw": float(siunits.to_mw(l2_eval.leakage_power)),
            "local_miss_rate": float(m2),
        },
    }
    constraints = payload.get("constraints") or {}
    if constraints:
        violations = []
        max_amat = constraints.get("max_amat_ps")
        if max_amat is not None and result["amat_ps"] > max_amat:
            violations.append(
                f"amat_ps {result['amat_ps']:.1f} exceeds "
                f"max_amat_ps {max_amat:g}"
            )
        max_leakage = constraints.get("max_leakage_mw")
        if (
            max_leakage is not None
            and result["total_leakage_mw"] > max_leakage
        ):
            violations.append(
                f"total_leakage_mw {result['total_leakage_mw']:.3f} "
                f"exceeds max_leakage_mw {max_leakage:g}"
            )
        result["feasible"] = not violations
        result["violations"] = violations
    return result


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

class _NullMetrics:
    """Metrics shim for managers constructed without a registry."""

    def increment(self, name: str, delta: int = 1) -> None:  # noqa: D102
        pass

    def register_gauge(self, name: str, callback) -> None:  # noqa: D102
        pass


@dataclass
class _Campaign:
    campaign_id: str
    plan: Plan
    created_at: float
    status: str = RUNNING
    finished_at: Optional[float] = None
    unit_status: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, dict] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    #: target id (unit or group) -> failures so far (drives retry).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: child job id -> target id, for jobs currently outstanding.
    jobs: Dict[str, str] = field(default_factory=dict)
    #: every child job id ever submitted (cancellation observability).
    child_jobs: List[str] = field(default_factory=list)
    engine_passes: int = 0
    cancel_requested: bool = False
    #: Who cancelled: "client" (explicit ``DELETE``; the verdict is
    #: final everywhere) or "shutdown" (graceful drain interrupted the
    #: run; a sibling may adopt and resume from checkpoints).
    cancel_source: Optional[str] = None
    thread: Optional[threading.Thread] = None
    #: The raw spec document as submitted (JSON-able); persisted with
    #: the state record so any worker can rebuild the plan and adopt
    #: this campaign after its owner dies.
    spec_body: Optional[dict] = None
    #: True when this manager resumed the campaign from a persisted
    #: state record rather than a fresh client submission.
    adopted: bool = False


class CampaignManager:
    """Submit, observe, cancel, and resume declarative campaigns."""

    def __init__(
        self,
        jobs,
        metrics=None,
        cache_dir: Optional[str] = None,
        model_for: Optional[
            Callable[[CacheConfig, int, str], CacheModel]
        ] = None,
        max_inflight: int = 4,
        unit_retries: int = 1,
        poll_interval: float = 0.02,
        spec_parser: Optional[Callable[[dict], CampaignSpec]] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        self._jobs = jobs
        self._metrics = metrics if metrics is not None else _NullMetrics()
        self._cache_dir = cache_dir
        self._model_for = model_for
        self._max_inflight = max(1, max_inflight)
        self._unit_retries = max(0, unit_retries)
        self._poll_interval = poll_interval
        self._store = CampaignStore(cache_dir)
        # Injected by the service layer (import discipline: this
        # package cannot import repro.service.schemas itself).  Without
        # it, campaigns of dead workers are reported from their state
        # records but cannot be adopted.
        self._spec_parser = spec_parser
        self._worker_id = worker_id
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # Serialises state-record persists (snapshot + disk write as
        # one unit) so a coordinator's stale pre-cancel snapshot can
        # never land *after* the cancel verdict and resurrect it.
        self._persist_lock = threading.Lock()
        self._campaigns: Dict[str, _Campaign] = {}
        self._ids = itertools.count(1)
        # Campaign ids must be unique across every worker sharing one
        # campaign store (and across restarts): namespace the counter
        # with a per-instance random token.
        self._instance = os.urandom(4).hex()
        self._shutdown = False
        self._metrics.register_gauge("campaigns.active", self.active_count)
        self._metrics.register_gauge(
            "campaigns.units_inflight", self.inflight_count
        )

    # -- observability -----------------------------------------------------

    def active_count(self) -> int:
        with self._lock:
            return sum(
                1 for c in self._campaigns.values() if c.status == RUNNING
            )

    def inflight_count(self) -> int:
        """Child jobs currently outstanding across all campaigns."""
        with self._lock:
            return sum(len(c.jobs) for c in self._campaigns.values())

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self,
        spec: CampaignSpec,
        spec_body: Optional[dict] = None,
        campaign_id: Optional[str] = None,
    ) -> dict:
        """Plan and start one campaign; returns its first snapshot.

        ``spec_body`` is the raw (JSON-able) document the spec was
        parsed from; persisting it with the state record is what makes
        the campaign adoptable by other workers.  ``campaign_id``
        overrides id generation — the adoption path resumes an orphaned
        campaign *under its original id* so clients polling it never
        see a rename.
        """
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailableError(
                    "the service is shutting down; no new campaigns accepted"
                )
        plan = build_plan(spec, cache_dir=self._cache_dir, store=self._store)
        now = time.time()
        adopted = campaign_id is not None
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailableError(
                    "the service is shutting down; no new campaigns accepted"
                )
            if campaign_id is None:
                campaign_id = f"campaign-{self._instance}-{next(self._ids)}"
            elif campaign_id in self._campaigns:
                # Two threads raced to adopt the same orphan: first one
                # in wins, the loser serves the incumbent.
                return self._snapshot(
                    self._campaigns[campaign_id], include_results=False
                )
            campaign = _Campaign(
                campaign_id=campaign_id, plan=plan, created_at=now,
                spec_body=spec_body, adopted=adopted,
            )
            for unit in plan.units:
                if unit.unit_id in plan.reused:
                    campaign.unit_status[unit.unit_id] = UNIT_REUSED
                    campaign.results[unit.unit_id] = plan.reused[unit.unit_id]
                else:
                    campaign.unit_status[unit.unit_id] = UNIT_PENDING
            born_done = all(
                status == UNIT_REUSED
                for status in campaign.unit_status.values()
            )
            if born_done:
                campaign.status = DONE
                campaign.finished_at = now
            self._campaigns[campaign_id] = campaign
        self._metrics.increment("campaigns.submitted")
        if adopted:
            self._metrics.increment("campaigns.adopted")
        if plan.reused:
            self._metrics.increment(
                "campaigns.checkpoint_hits", len(plan.reused)
            )
        if plan.deduped:
            self._metrics.increment("campaigns.units_deduped", plan.deduped)
        self._persist_state(campaign)
        if born_done:
            self._metrics.increment("campaigns.completed")
        else:
            campaign.thread = threading.Thread(
                target=self._run,
                args=(campaign,),
                name=f"repro-{campaign_id}",
                daemon=True,
            )
            campaign.thread.start()
        return self.get(campaign_id, include_results=False)

    # -- shared-state recovery ---------------------------------------------

    def _persist_state(self, campaign: _Campaign) -> None:
        """Write this campaign's shared state record (best-effort).

        The snapshot and the disk write are one serialised unit: two
        racing persisters (the coordinator's progress checkpoint and a
        cancel/shutdown verdict) must commit in snapshot order, or the
        stale snapshot would win the disk and e.g. report a cancelled
        campaign as ``running`` forever.
        """
        with self._persist_lock:
            with self._lock:
                record = self._snapshot(campaign, include_results=False)
                record["spec_body"] = campaign.spec_body
                if campaign.cancel_source is not None:
                    record["cancelled_by"] = campaign.cancel_source
            record["owner_pid"] = os.getpid()
            record["owner_start_ticks"] = proc_start_ticks(os.getpid())
            record["owner_worker"] = self._worker_id
            record["persisted_at"] = time.time()
            self._store.store_state(campaign.campaign_id, record)

    @staticmethod
    def _remote_snapshot(record: dict, note: Optional[str] = None) -> dict:
        snapshot = {
            key: value
            for key, value in record.items()
            if key not in (
                "spec_body", "owner_pid", "owner_start_ticks",
                "persisted_at",
            )
        }
        owner = record.get("owner_worker")
        if owner is not None:
            snapshot.setdefault("served_by", owner)
        if note:
            snapshot["note"] = note
        return snapshot

    def _recover(self, campaign_id: str) -> Optional[dict]:
        """Resolve a locally-unknown campaign id via the shared store.

        Returns a snapshot, or ``None`` for a genuinely unknown id.
        The cases:

        * the owner is alive — serve its persisted progress record
          (slightly stale, refreshed on every unit completion);
        * the record is client-``cancelled`` or ``failed`` — serve the
          verdict as-is.  Those are final: adopting would silently
          resurrect the campaign and flip its status back to running
          on a mere GET;
        * the owner died mid-run (orphaned ``running``, a shutdown
          drain's ``cancelled``) or the record is ``done`` — **adopt**:
          re-parse the persisted spec, rebuild the plan, and resume
          under the original id.  Finished units come back
          born-``reused`` from their checkpoints; in-flight work at
          the moment of death is re-run.  A ``done`` campaign
          re-assembles entirely from checkpoints and is served
          bit-identically;
        * no spec parser was injected (or the record carries no spec) —
          serve the record as-is; adoption is impossible.
        """
        record = self._store.load_state(campaign_id)
        if record is None:
            return None
        self._metrics.increment("campaigns.store_serves")
        status = record.get("status")
        owner = record.get("owner_pid")
        if (
            status == RUNNING
            and isinstance(owner, int)
            and owner != os.getpid()
            and owner_alive(owner, record.get("owner_start_ticks"))
        ):
            return self._remote_snapshot(
                record,
                note="campaign is owned by another worker; this is its "
                     "latest persisted progress",
            )
        if status == FAILED or (
            status == CANCELLED and record.get("cancelled_by") != "shutdown"
        ):
            # A client cancelled it, or the run earned its failure:
            # the verdict is final on every worker.
            return self._remote_snapshot(record)
        body = record.get("spec_body")
        if body is None or self._spec_parser is None:
            return self._remote_snapshot(record)
        try:
            spec = self._spec_parser(body)
        except Exception:  # noqa: BLE001 - unparsable old record
            return self._remote_snapshot(record)
        self.submit(spec, spec_body=body, campaign_id=campaign_id)
        return self.get(campaign_id, include_results=False)

    def get(self, campaign_id: str, include_results: bool = True) -> dict:
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is not None:
                return self._snapshot(campaign, include_results)
        recovered = self._recover(campaign_id)
        if recovered is None:
            raise ValidationError(
                f"unknown campaign id {campaign_id!r}", status=404
            )
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is not None:  # adopted: serve it locally now
                return self._snapshot(campaign, include_results)
        return recovered

    def wait(
        self,
        campaign_id: str,
        seconds: float,
        include_results: bool = True,
    ) -> dict:
        """Block until the campaign is terminal or the wait elapses.

        A campaign owned by another (live) worker is long-polled
        against the shared state record instead of the local condition
        variable.
        """
        deadline = time.monotonic() + max(0.0, seconds)
        with self._cond:
            if campaign_id in self._campaigns:
                return self._wait_local(
                    campaign_id, deadline, include_results
                )
        while True:
            recovered = self._recover(campaign_id)
            if recovered is None:
                raise ValidationError(
                    f"unknown campaign id {campaign_id!r}", status=404
                )
            with self._cond:
                if campaign_id in self._campaigns:  # adopted
                    return self._wait_local(
                        campaign_id, deadline, include_results
                    )
            remaining = deadline - time.monotonic()
            if recovered.get("status") in TERMINAL or remaining <= 0:
                return recovered
            time.sleep(min(remaining, 0.25))

    def _wait_local(
        self, campaign_id: str, deadline: float, include_results: bool
    ) -> dict:
        """Condition-variable wait for a locally-owned campaign.

        Caller must hold ``self._cond``.
        """
        while True:
            campaign = self._campaigns[campaign_id]
            if campaign.status in TERMINAL:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._cond.wait(min(remaining, 0.25))
        return self._snapshot(campaign, include_results)

    def cancel(self, campaign_id: str) -> dict:
        """Cancel a campaign and all its outstanding child jobs.

        Checkpoints of already-finished units stay on disk — that is the
        point: a resubmitted identical spec resumes from them.
        """
        with self._cond:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                record = self._store.load_state(campaign_id)
                if record is None:
                    raise ValidationError(
                        f"unknown campaign id {campaign_id!r}", status=404
                    )
                note = None
                if record.get("status") not in TERMINAL:
                    note = (
                        "campaign is owned by another worker; cancel it "
                        "there or wait for its verdict"
                    )
                return self._remote_snapshot(record, note)
            if campaign.status in TERMINAL:
                return self._snapshot(campaign, include_results=False)
            campaign.cancel_requested = True
            outstanding = list(campaign.jobs)
        # Child-job cancellation happens outside our lock (JobManager has
        # its own locking discipline and may run done-callbacks inline).
        for job_id in outstanding:
            try:
                self._jobs.cancel(job_id)
            except ValidationError:
                pass
        with self._cond:
            for unit_id, status in campaign.unit_status.items():
                if status in (UNIT_PENDING, UNIT_RUNNING):
                    campaign.unit_status[unit_id] = UNIT_CANCELLED
            campaign.jobs.clear()
            if campaign.status not in TERMINAL:
                campaign.status = CANCELLED
                campaign.cancel_source = "client"
                campaign.finished_at = time.time()
            self._cond.notify_all()
            snapshot = self._snapshot(campaign, include_results=False)
        self._persist_state(campaign)
        self._metrics.increment("campaigns.cancelled")
        return snapshot

    def shutdown(self, wait_seconds: float = 2.0) -> dict:
        """Stop coordinators (SIGTERM path; child jobs drain separately)."""
        with self._cond:
            self._shutdown = True
            active = [
                c for c in self._campaigns.values() if c.status == RUNNING
            ]
            for campaign in active:
                campaign.cancel_requested = True
                for unit_id, status in campaign.unit_status.items():
                    if status in (UNIT_PENDING, UNIT_RUNNING):
                        campaign.unit_status[unit_id] = UNIT_CANCELLED
                campaign.status = CANCELLED
                campaign.cancel_source = "shutdown"
                campaign.finished_at = time.time()
            self._cond.notify_all()
        deadline = time.monotonic() + wait_seconds
        for campaign in active:
            if campaign.thread is not None:
                campaign.thread.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
        for campaign in active:
            # Record the cancelled verdict so a sibling (or a restarted
            # daemon) can adopt and resume from the checkpoints.
            self._persist_state(campaign)
        return {"cancelled": len(active)}

    # -- the coordinator ---------------------------------------------------

    def _run(self, campaign: _Campaign) -> None:
        try:
            while True:
                with self._lock:
                    if campaign.status != RUNNING or self._shutdown:
                        return
                progressed = self._collect(campaign)
                progressed = self._launch(campaign) or progressed
                if self._finalize_if_complete(campaign):
                    self._persist_state(campaign)
                    return
                if progressed:
                    # Progress checkpoints make the shared record a live
                    # progress view for siblings answering polls.
                    self._persist_state(campaign)
                else:
                    time.sleep(self._poll_interval)
        except Exception as error:  # noqa: BLE001 - coordinator must not die
            with self._cond:
                if campaign.status not in TERMINAL:
                    campaign.status = FAILED
                    campaign.finished_at = time.time()
                    campaign.errors["coordinator"] = (
                        f"{type(error).__name__}: {error}"
                    )
                    self._cond.notify_all()
            self._persist_state(campaign)
            self._metrics.increment("campaigns.failed")

    def _targets(self, campaign: _Campaign, target: str) -> List[Unit]:
        """The units a job target id (unit or group id) covers."""
        plan = campaign.plan
        if target in plan.groups:
            return [plan.by_id[unit_id] for unit_id in plan.groups[target]]
        return [plan.by_id[target]]

    def _collect(self, campaign: _Campaign) -> bool:
        """Fold finished child jobs back into unit state."""
        with self._lock:
            outstanding = dict(campaign.jobs)
        progressed = False
        for job_id, target in outstanding.items():
            try:
                snapshot = self._jobs.get(job_id)
            except ValidationError:
                snapshot = {"status": "failed", "error": "job record lost"}
            status = snapshot.get("status")
            if status not in ("done", "failed", "cancelled", "timeout"):
                continue
            progressed = True
            with self._lock:
                campaign.jobs.pop(job_id, None)
            if status == "done":
                self._record_success(
                    campaign, target, snapshot.get("result")
                )
            else:
                self._record_failure(
                    campaign,
                    target,
                    snapshot.get("error") or f"child job {status}",
                )
        return progressed

    def _record_success(
        self, campaign: _Campaign, target: str, result
    ) -> None:
        units_done = 0
        per_unit: Dict[str, dict] = {}
        members = self._targets(campaign, target)
        if target in campaign.plan.groups:
            result = result or {}
            for unit in members:
                per_unit[unit.unit_id] = result.get(unit.unit_id)
        else:
            per_unit[members[0].unit_id] = result
        # Checkpoint before flipping status: a crash between the two at
        # worst re-runs a finished unit, never records an unbacked one.
        for unit in members:
            payload = per_unit.get(unit.unit_id)
            if payload is not None:
                self._store.store(unit.fingerprint, payload)
        with self._cond:
            campaign.engine_passes += 1
            for unit in members:
                payload = per_unit.get(unit.unit_id)
                if campaign.unit_status.get(unit.unit_id) != UNIT_RUNNING:
                    continue
                if payload is None:
                    campaign.unit_status[unit.unit_id] = UNIT_FAILED
                    campaign.errors[unit.unit_id] = (
                        "group result missing this unit"
                    )
                    continue
                campaign.unit_status[unit.unit_id] = UNIT_DONE
                campaign.results[unit.unit_id] = payload
                units_done += 1
            self._cond.notify_all()
        self._metrics.increment("campaigns.engine_passes")
        if units_done:
            self._metrics.increment("campaigns.units_done", units_done)

    def _record_failure(
        self, campaign: _Campaign, target: str, error: str
    ) -> None:
        members = self._targets(campaign, target)
        with self._cond:
            campaign.attempts[target] = campaign.attempts.get(target, 0) + 1
            retry = campaign.attempts[target] <= self._unit_retries
            failed = 0
            for unit in members:
                if campaign.unit_status.get(unit.unit_id) != UNIT_RUNNING:
                    continue
                if retry:
                    campaign.unit_status[unit.unit_id] = UNIT_PENDING
                else:
                    campaign.unit_status[unit.unit_id] = UNIT_FAILED
                    campaign.errors[unit.unit_id] = error
                    failed += 1
            self._cond.notify_all()
        if retry:
            self._metrics.increment("campaigns.unit_retries")
        if failed:
            self._metrics.increment("campaigns.units_failed", failed)

    def _deps_state(self, campaign: _Campaign, unit: Unit) -> str:
        """'ready', 'waiting', or 'failed' for a unit's dependencies."""
        verdict = "ready"
        for dep_id in unit.after:
            status = campaign.unit_status.get(dep_id)
            if status in (UNIT_FAILED, UNIT_CANCELLED):
                return "failed"
            if status not in (UNIT_DONE, UNIT_REUSED):
                verdict = "waiting"
        return verdict

    def _launch(self, campaign: _Campaign) -> bool:
        progressed = False
        for unit in campaign.plan.units:
            with self._lock:
                if campaign.status != RUNNING or campaign.cancel_requested:
                    return progressed
                if campaign.unit_status.get(unit.unit_id) != UNIT_PENDING:
                    continue
                deps = self._deps_state(campaign, unit)
                if deps == "waiting":
                    continue
                if deps == "failed":
                    campaign.unit_status[unit.unit_id] = UNIT_FAILED
                    campaign.errors[unit.unit_id] = (
                        "dependency failed or was cancelled"
                    )
                    self._cond.notify_all()
                    self._metrics.increment("campaigns.units_failed")
                    progressed = True
                    continue
                if unit.heavy and len(campaign.jobs) >= self._max_inflight:
                    continue
            if unit.heavy:
                progressed = self._submit_heavy(campaign, unit) or progressed
            else:
                self._run_light(campaign, unit)
                progressed = True
        return progressed

    def _submit_heavy(self, campaign: _Campaign, unit: Unit) -> bool:
        plan = campaign.plan
        if unit.group is not None:
            target = unit.group
            member_units = [
                plan.by_id[unit_id]
                for unit_id in plan.groups[target]
                if campaign.unit_status.get(unit_id) == UNIT_PENDING
            ]
            args = (
                [(m.unit_id, m.payload) for m in member_units],
                unit.payload["cache"],
                unit.payload.get("node", 65),
                unit.payload.get("scaling_style", "itrs"),
            )
            fn = _sweep_group_task
        else:
            target = unit.unit_id
            member_units = [unit]
            if unit.kind == "profile":
                fn = _profile_task
                args = (
                    unit.payload["workload"],
                    unit.payload["policy"],
                    unit.payload["n_accesses"],
                    unit.payload["seed"],
                    self._cache_dir,
                )
            else:
                fn = _optimize_task
                args = (unit.payload,)
        try:
            job_id = self._jobs.submit(
                "campaign-unit",
                fn,
                *args,
                detail={
                    "campaign_id": campaign.campaign_id,
                    "unit": target,
                },
            )
        except ServiceUnavailableError:
            return False
        with self._lock:
            campaign.jobs[job_id] = target
            campaign.child_jobs.append(job_id)
            for member in member_units:
                campaign.unit_status[member.unit_id] = UNIT_RUNNING
            cancelled = campaign.cancel_requested
        if cancelled:
            # Raced a cancel between submit and registration: withdraw.
            try:
                self._jobs.cancel(job_id)
            except ValidationError:
                pass
        return True

    def _run_light(self, campaign: _Campaign, unit: Unit) -> None:
        with self._lock:
            campaign.unit_status[unit.unit_id] = UNIT_RUNNING
        try:
            if unit.kind == "point":
                result = run_point_unit(unit.payload, self._cache_dir)
            else:
                result = run_amat_unit(
                    unit.payload, self._cache_dir, self._model_for
                )
        except Exception as error:  # noqa: BLE001 - unit fails, not the run
            self._record_failure(
                campaign, unit.unit_id, f"{type(error).__name__}: {error}"
            )
            return
        self._store.store(unit.fingerprint, result)
        with self._cond:
            if campaign.unit_status.get(unit.unit_id) == UNIT_RUNNING:
                campaign.unit_status[unit.unit_id] = UNIT_DONE
                campaign.results[unit.unit_id] = result
                self._cond.notify_all()
        self._metrics.increment("campaigns.units_done")

    def _finalize_if_complete(self, campaign: _Campaign) -> bool:
        with self._cond:
            if campaign.status in TERMINAL:
                return True
            statuses = campaign.unit_status.values()
            if any(
                s in (UNIT_PENDING, UNIT_RUNNING) for s in statuses
            ):
                return False
            failed = any(s == UNIT_FAILED for s in statuses)
            campaign.status = FAILED if failed else DONE
            campaign.finished_at = time.time()
            self._cond.notify_all()
            verdict = campaign.status
        self._metrics.increment(
            "campaigns.failed" if verdict == FAILED else "campaigns.completed"
        )
        return True

    # -- snapshots ---------------------------------------------------------

    def _snapshot(self, campaign: _Campaign, include_results: bool) -> dict:
        plan = campaign.plan
        counts = {
            "total": len(plan.units),
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "pending": 0,
            "running": 0,
            "reused": 0,
            "deduped": plan.deduped,
        }
        for status in campaign.unit_status.values():
            if status == UNIT_REUSED:
                counts["reused"] += 1
                counts["done"] += 1  # finished without work: still done
            elif status in counts:
                counts[status] += 1
        payload = {
            "campaign_id": campaign.campaign_id,
            "name": plan.spec.name,
            "status": campaign.status,
            "created_at": campaign.created_at,
            "finished_at": campaign.finished_at,
            "units": counts,
            "engine_passes": campaign.engine_passes,
            "jobs": sorted(campaign.jobs),
            "child_jobs": list(campaign.child_jobs),
            "poll": f"/v1/campaigns/{campaign.campaign_id}",
        }
        if campaign.adopted:
            payload["adopted"] = True
        if campaign.errors:
            payload["failures"] = dict(campaign.errors)
        if include_results:
            results: Dict[str, list] = {}
            for unit in plan.units:
                result = campaign.results.get(unit.unit_id)
                if result is None:
                    continue
                entry = {"unit_id": unit.unit_id}
                entry.update(result)
                results.setdefault(unit.kind, []).append(entry)
            payload["results"] = results
            summary = self._summary(results)
            if summary:
                payload["summary"] = summary
        return payload

    @staticmethod
    def _summary(results: Dict[str, list]) -> dict:
        """Best feasible AMAT point: min leakage, ties on latency."""
        candidates = [
            entry
            for entry in results.get("amat", ())
            if entry.get("feasible", True)
        ]
        if not candidates:
            return {}
        best = min(
            candidates,
            key=lambda e: (e["total_leakage_mw"], e["amat_ps"]),
        )
        return {
            "best_amat": {
                "unit_id": best["unit_id"],
                "workload": best["workload"],
                "policy": best["policy"],
                "node": best.get("node", 65),
                "l1_size_kb": best["l1"]["size_kb"],
                "l1_assoc": best["l1"]["associativity"],
                "l2_size_kb": best["l2"]["size_kb"],
                "l2_assoc": best["l2"]["associativity"],
                "amat_ps": best["amat_ps"],
                "total_leakage_mw": best["total_leakage_mw"],
            }
        }
