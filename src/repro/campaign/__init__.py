"""Declarative design-space-exploration campaigns.

One validated :class:`~repro.campaign.spec.CampaignSpec` in, a planned,
deduplicated, checkpointed unit fleet out:

``spec``
    The immutable spec dataclasses the service schema layer produces.
``planner``
    Spec -> canonical unit work items: expansion, fingerprinting, dedup,
    checkpoint/surface reuse, and union-grid sweep coalescing.
``runner``
    :class:`~repro.campaign.runner.CampaignManager` — executes plans on
    the shared job pool with bounded fan-out, per-unit retry, and
    per-unit checkpointing.
``store``
    The ``campaigns`` disk namespace: fingerprint-keyed unit results.

This package sits *below* :mod:`repro.service` (the service imports it,
never the reverse at module level).
"""

from repro.campaign.planner import Plan, Unit, build_plan
from repro.campaign.runner import CampaignManager
from repro.campaign.spec import (
    AmatBlock,
    CampaignCalibration,
    CampaignConstraints,
    CampaignSpec,
    MatrixBlock,
    OptimizeBlock,
    SweepBlock,
)
from repro.campaign.store import CampaignStore

__all__ = [
    "AmatBlock",
    "CampaignCalibration",
    "CampaignConstraints",
    "CampaignManager",
    "CampaignSpec",
    "CampaignStore",
    "MatrixBlock",
    "OptimizeBlock",
    "Plan",
    "SweepBlock",
    "Unit",
    "build_plan",
]
