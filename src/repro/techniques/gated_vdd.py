"""Gated-Vdd / cache decay (Powell et al. [2]; Kaxiras et al.).

Idle lines are disconnected from the supply through a high-Vth sleep
transistor.  Leakage through a gated line is nearly eliminated (only the
sleep device's own subthreshold remains), but the line's **state is
lost**: a re-reference to a decayed line misses and must be refetched
from the next level.  The decay-induced miss cost is what ultimately
limits how aggressively lines can be gated — and why the paper's knob
approach, which keeps all state, is attractive for L2s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.techniques.base import LeakageTechnique, TechniqueResult

#: Residual leakage of a gated line relative to full leakage (the stacked
#: high-Vth sleep transistor leaves ~2-5 %).
DEFAULT_RESIDUAL_FRACTION = 0.03

#: Fraction of lines kept powered under a decay policy tuned for the
#: usual working-set residency.
DEFAULT_LIVE_FRACTION = 0.25

#: Extra misses per access induced by decaying still-live lines
#: (policy-dependent; a well-tuned decay interval keeps this small).
DEFAULT_DECAY_MISS_RATE = 0.005


@dataclass(frozen=True)
class GatedVddCache(LeakageTechnique):
    """The gated-Vdd baseline.

    Parameters
    ----------
    live_fraction:
        Fraction of lines left powered.
    residual_fraction:
        Leakage of a gated line relative to an ungated one.
    decay_miss_rate:
        Extra miss probability per access from premature decay.
    """

    live_fraction: float = DEFAULT_LIVE_FRACTION
    residual_fraction: float = DEFAULT_RESIDUAL_FRACTION
    decay_miss_rate: float = DEFAULT_DECAY_MISS_RATE

    name = "gated-vdd"

    def __post_init__(self) -> None:
        for label in ("live_fraction", "residual_fraction"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"gated-vdd: {label} must be in [0, 1], got {value}"
                )
        if not 0.0 <= self.decay_miss_rate <= 1.0:
            raise ConfigurationError(
                "gated-vdd: decay_miss_rate must be in [0, 1]"
            )

    def evaluate(self, model, assignment) -> TechniqueResult:
        evaluation = model.evaluate(assignment)
        array_cost = evaluation.by_component["array"]
        periphery = evaluation.leakage_power - array_cost.leakage_power
        gated_scale = (
            self.live_fraction
            + (1.0 - self.live_fraction) * self.residual_fraction
        )
        return TechniqueResult(
            name=self.name,
            leakage_power=array_cost.leakage_power * gated_scale + periphery,
            access_time_penalty=0.0,
            extra_miss_rate=self.decay_miss_rate,
            retains_state=False,
        )
