"""Reverse body bias (Nii et al. [1]; Agarwal et al. [5]).

Standby RBB raises the effective threshold by the body effect
(``dVth = gamma_body * Vbb`` in our first-order model), suppressing
subthreshold leakage exponentially while preserving state and — unlike
drowsy — full noise margins.  Its two structural limitations, both
visible in this model:

* **gate tunnelling is untouched** (the oxide field doesn't change), so
  at thin Tox the technique floors exactly where the paper says total
  leakage analysis matters;
* strong RBB wakes slowly (the body is a big RC) and increases junction
  band-to-band tunnelling, modelled as a BTBT penalty factor that grows
  with the bias.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError
from repro.techniques.base import LeakageTechnique, TechniqueResult

#: Typical standby reverse bias (V).
DEFAULT_BIAS = 0.5

#: Body-network settle time charged to accesses arriving during wake.
DEFAULT_WAKE_LATENCY = units.ps(1500)

#: Fraction of accesses that arrive while the array is biased down.
DEFAULT_SLEEPY_ACCESS_FRACTION = 0.02

#: Junction band-to-band tunnelling: extra leakage per volt of RBB,
#: relative to the *suppressed* subthreshold level.
BTBT_PER_VOLT = 0.10


@dataclass(frozen=True)
class ReverseBodyBias(LeakageTechnique):
    """The RBB baseline.

    Parameters
    ----------
    bias:
        Standby reverse body bias magnitude (V).
    wake_latency / sleepy_access_fraction:
        Cost model of re-biasing the body on activity.
    """

    bias: float = DEFAULT_BIAS
    wake_latency: float = DEFAULT_WAKE_LATENCY
    sleepy_access_fraction: float = DEFAULT_SLEEPY_ACCESS_FRACTION

    name = "reverse-body-bias"

    def __post_init__(self) -> None:
        if self.bias < 0:
            raise ConfigurationError(f"RBB bias must be >= 0, got {self.bias}")
        if not 0.0 <= self.sleepy_access_fraction <= 1.0:
            raise ConfigurationError(
                "RBB: sleepy_access_fraction must be in [0, 1]"
            )

    def vth_shift(self, technology) -> float:
        """Effective threshold increase (V) under the standby bias."""
        return technology.body_effect_gamma * self.bias

    def evaluate(self, model, assignment) -> TechniqueResult:
        import math

        technology = model.technology
        evaluation = model.evaluate(assignment)
        array_cost = evaluation.by_component["array"]
        periphery = evaluation.leakage_power - array_cost.leakage_power

        cell_point = assignment.array
        cell = model.components["array"].cell
        full_cell = cell.standby_leakage_current(
            cell_point.vth, cell_point.tox, gate_enabled=model.gate_enabled
        )
        sub_only = cell.standby_leakage_current(
            cell_point.vth, cell_point.tox, gate_enabled=False
        )
        gate_part = full_cell - sub_only
        # Exponential subthreshold suppression from the raised barrier.
        n_vt = technology.subthreshold_swing_n * technology.thermal_voltage
        suppression = math.exp(-self.vth_shift(technology) / n_vt)
        btbt = 1.0 + BTBT_PER_VOLT * self.bias
        biased_cell = sub_only * suppression * btbt + gate_part

        n_cells = model.organization.total_cells
        sense_leakage = max(
            array_cost.leakage_power
            - n_cells * full_cell * technology.vdd,
            0.0,
        )
        array_leakage = n_cells * biased_cell * technology.vdd

        return TechniqueResult(
            name=self.name,
            leakage_power=array_leakage + sense_leakage + periphery,
            access_time_penalty=self.sleepy_access_fraction
            * self.wake_latency,
            extra_miss_rate=0.0,
            retains_state=True,
        )
