"""Drowsy caches (Kim et al. [6], [7]; Flautner et al., ISCA 2002).

Idle cache lines are put into a "drowsy" state by dropping their supply
to a retention voltage (~0.3 V at a 1 V nominal).  State is preserved —
the cell's static noise margin survives — but the line cannot be read
until its supply is restored, costing a wake-up latency on the first
access.  Leakage falls for three compounding reasons, all computed from
the same device models as the rest of the library:

* subthreshold current loses its drain bias (``Vds`` drops to the
  retention voltage, removing the DIBL barrier lowering and shrinking
  the ``1 - exp(-Vds/vT)`` term);
* gate tunnelling sees the reduced oxide voltage quadratically *and*
  exponentially;
* the cell's internal high node sits at the retention voltage, so the
  power drawn is retention-voltage-proportional.

The policy model is the classic "simple" drowsy policy: all lines are
made drowsy every ``window`` cycles, so the awake fraction tracks the
fraction of distinct lines touched per window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError
from repro.devices import gate_leakage as _gate
from repro.devices import subthreshold as _sub
from repro.circuits.sram_cell import (
    ACCESS_RATIO,
    PULL_DOWN_RATIO,
    PULL_UP_RATIO,
)
from repro.techniques.base import LeakageTechnique, TechniqueResult

#: Canonical retention voltage at a ~1 V supply (Flautner et al.).
DEFAULT_RETENTION_VDD = 0.3

#: Default fraction of lines awake under the simple policy (working-set
#: residency per drowsy window; ~10 % for 2k-4k cycle windows).
DEFAULT_AWAKE_FRACTION = 0.10

#: Wake-up latency of a drowsy line (supply restore), in seconds: one
#: fast cycle at the studied node.
DEFAULT_WAKE_LATENCY = units.ps(600)


def drowsy_cell_leakage(
    technology,
    rule,
    vth: float,
    tox: float,
    retention_vdd: float = DEFAULT_RETENTION_VDD,
    gate_enabled: bool = True,
) -> float:
    """Return the standby leakage current (A) of one *drowsy* 6T cell.

    Mirrors :meth:`repro.circuits.sram_cell.SramCell.standby_leakage_current`
    but with every drain/gate bias collapsed to the retention voltage.
    """
    if not 0.0 < retention_vdd <= technology.vdd:
        raise ConfigurationError(
            f"retention voltage must be in (0, Vdd], got {retention_vdd}"
        )
    geometry = rule.geometry(tox)
    scale = geometry.width_scale
    wmin = technology.wmin

    def sub(width_ratio, p_type=False):
        return _sub.subthreshold_current(
            technology,
            width=width_ratio * wmin * scale,
            leff=geometry.leff,
            vth=vth,
            tox=tox,
            vgs=0.0,
            vds=retention_vdd,
            p_type=p_type,
        )

    def gate(width_ratio, conducting, p_type=False):
        if not gate_enabled:
            return 0.0
        return _gate.gate_tunnel_current(
            technology,
            width=width_ratio * wmin * scale,
            lgate=geometry.lgate_drawn,
            tox=tox,
            vgs=retention_vdd,
            conducting=conducting,
            p_type=p_type,
        )

    total = 0.0
    # OFF pull-down / pull-up on the two nodes; access devices see the
    # precharged-but-now-floating bit line at ~retention level.
    total += sub(PULL_DOWN_RATIO) + gate(PULL_DOWN_RATIO, conducting=False)
    total += gate(PULL_DOWN_RATIO, conducting=True)
    total += sub(PULL_UP_RATIO, p_type=True) + gate(
        PULL_UP_RATIO, conducting=False, p_type=True
    )
    total += gate(PULL_UP_RATIO, conducting=True, p_type=True)
    total += sub(ACCESS_RATIO) + 2.0 * gate(ACCESS_RATIO, conducting=False)
    return total


@dataclass(frozen=True)
class DrowsyCache(LeakageTechnique):
    """The drowsy-cache baseline.

    Parameters
    ----------
    retention_vdd:
        Drowsy supply voltage (V).
    awake_fraction:
        Fraction of lines at full supply at any instant.
    wake_latency:
        Supply-restore latency (s) charged to accesses that hit a drowsy
        line.
    drowsy_hit_fraction:
        Fraction of accesses that land on a drowsy line (with good
        policies most hits land in the awake working set).
    """

    retention_vdd: float = DEFAULT_RETENTION_VDD
    awake_fraction: float = DEFAULT_AWAKE_FRACTION
    wake_latency: float = DEFAULT_WAKE_LATENCY
    drowsy_hit_fraction: float = 0.05

    name = "drowsy"

    def __post_init__(self) -> None:
        for label in ("awake_fraction", "drowsy_hit_fraction"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"drowsy: {label} must be in [0, 1], got {value}"
                )

    def evaluate(self, model, assignment) -> TechniqueResult:
        evaluation = model.evaluate(assignment)
        array_cost = evaluation.by_component["array"]
        periphery = evaluation.leakage_power - array_cost.leakage_power

        cell_point = assignment.array
        cell = model.components["array"].cell
        awake_cell = cell.standby_leakage_current(
            cell_point.vth, cell_point.tox, gate_enabled=model.gate_enabled
        )
        drowsy_cell = drowsy_cell_leakage(
            model.technology,
            model.rule,
            cell_point.vth,
            cell_point.tox,
            retention_vdd=self.retention_vdd,
            gate_enabled=model.gate_enabled,
        )
        n_cells = model.organization.total_cells
        # Awake cells burn at Vdd; drowsy cells at the retention voltage.
        array_leakage = n_cells * (
            self.awake_fraction * awake_cell * model.technology.vdd
            + (1.0 - self.awake_fraction)
            * drowsy_cell
            * self.retention_vdd
        )
        # Sense amps and periphery are not drowsied (they hold no state
        # worth retaining and must respond instantly).
        sense_leakage = array_cost.leakage_power - (
            n_cells * awake_cell * model.technology.vdd
        )
        sense_leakage = max(sense_leakage, 0.0)

        return TechniqueResult(
            name=self.name,
            leakage_power=array_leakage + sense_leakage + periphery,
            access_time_penalty=self.drowsy_hit_fraction * self.wake_latency,
            extra_miss_rate=0.0,
            retains_state=True,
        )
