"""Common interface for leakage-reduction techniques.

A technique transforms a cache's standby behaviour: it reduces leakage,
may slow some accesses (wake-up latency), and may destroy state (extra
misses).  :class:`TechniqueResult` captures all three so a fair
comparison against the paper's knob-assignment approach can charge each
technique its full architectural cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TechniqueResult:
    """A cache's standby behaviour under one technique.

    Attributes
    ----------
    name:
        Technique label for reports.
    leakage_power:
        Effective standby leakage (W), averaged over awake/asleep lines.
    access_time_penalty:
        Expected extra access latency (s) *per access*, amortising wake
        latencies over the fraction of accesses that hit sleeping lines.
    extra_miss_rate:
        Additional miss probability per access caused by state loss
        (zero for state-preserving techniques).
    retains_state:
        Whether sleeping lines keep their contents.
    """

    name: str
    leakage_power: float
    access_time_penalty: float
    extra_miss_rate: float
    retains_state: bool

    def __post_init__(self) -> None:
        if self.leakage_power < 0:
            raise ConfigurationError(
                f"{self.name}: leakage must be >= 0, got {self.leakage_power}"
            )
        if self.access_time_penalty < 0:
            raise ConfigurationError(
                f"{self.name}: access penalty must be >= 0"
            )
        if not 0.0 <= self.extra_miss_rate <= 1.0:
            raise ConfigurationError(
                f"{self.name}: extra miss rate must be in [0, 1]"
            )


class LeakageTechnique:
    """Interface: apply a standby technique to an evaluated cache.

    Concrete techniques implement :meth:`evaluate` for a cache model and
    a knob assignment (techniques compose with knob choices — a drowsy
    cache still has a Vth/Tox assignment).
    """

    name = "baseline"

    def evaluate(self, model, assignment) -> TechniqueResult:
        """Return the cache's standby behaviour under this technique."""
        raise NotImplementedError


class NoTechnique(LeakageTechnique):
    """The identity technique: the paper's pure knob-assignment world."""

    name = "knobs-only"

    def evaluate(self, model, assignment) -> TechniqueResult:
        evaluation = model.evaluate(assignment)
        return TechniqueResult(
            name=self.name,
            leakage_power=evaluation.leakage_power,
            access_time_penalty=0.0,
            extra_miss_rate=0.0,
            retains_state=True,
        )
