"""Leakage-reduction baselines from the paper's related work ([1-7]).

The paper's introduction cites a line of cache-leakage techniques that
all pre-date it and all target *subthreshold* leakage only.  This package
implements the three canonical ones as baselines so the knob-assignment
approach can be compared against them on the same cache model:

* :mod:`~repro.techniques.drowsy` — drowsy caches (Kim et al. [6],[7]):
  idle lines keep state at a reduced retention voltage; leakage falls
  strongly, waking a drowsy line costs a cycle.
* :mod:`~repro.techniques.gated_vdd` — gated-Vdd / cache decay
  (Powell et al. [2]): idle lines are power-gated entirely; leakage is
  almost eliminated but **state is lost**, so re-references become misses.
* :mod:`~repro.techniques.body_bias` — reverse body bias (Agarwal et al.
  [5], Nii et al. [1]): standby RBB raises the effective threshold;
  subthreshold leakage falls, but **gate tunnelling is untouched** — the
  structural weakness the paper's total-leakage view exposes.

Each technique evaluates to a :class:`~repro.techniques.base.TechniqueResult`
(effective leakage, AMAT penalty, state behaviour) for a given cache
model + knob assignment, so techniques and knob choices compose.
"""

from repro.techniques.base import LeakageTechnique, TechniqueResult
from repro.techniques.drowsy import DrowsyCache, drowsy_cell_leakage
from repro.techniques.gated_vdd import GatedVddCache
from repro.techniques.body_bias import ReverseBodyBias

__all__ = [
    "LeakageTechnique",
    "TechniqueResult",
    "DrowsyCache",
    "drowsy_cell_leakage",
    "GatedVddCache",
    "ReverseBodyBias",
]
