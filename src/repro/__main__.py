"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [IDS...]``
    Run the paper's experiments (default: all of E1..E7).
``describe``
    Print the structural model of a cache configuration.
``evaluate``
    Evaluate a cache at one (Vth, Tox) point.
``optimize``
    Run the Section 4 optimiser for a scheme and delay target.
``fit``
    Characterise a cache, fit the Section 3 forms, optionally save JSON.
``serve``
    Start the batched sweep/calibration HTTP daemon (docs/SERVICE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.cache.assignment import knobs
from repro.errors import ReproError
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import minimize_leakage
from repro.technology.nodes import NODES, SCALING_STYLES, node_technology

_SCHEMES = {"1": Scheme.PER_COMPONENT, "2": Scheme.CELL_VS_PERIPHERY,
            "3": Scheme.UNIFORM}


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size-kb", type=float, default=16.0,
                        help="capacity in KiB (default 16)")
    parser.add_argument("--block-bytes", type=int, default=32,
                        help="line size (default 32)")
    parser.add_argument("--associativity", type=int, default=2,
                        help="ways (default 2)")
    parser.add_argument("--node", type=int, default=65,
                        choices=NODES, metavar="NM",
                        help="technology node in nm (default 65; one of "
                             f"{', '.join(str(n) for n in NODES)})")
    parser.add_argument("--scaling-style", default="itrs",
                        choices=SCALING_STYLES,
                        help="node scaling style (default itrs)")


def _build_model(arguments) -> CacheModel:
    config = CacheConfig(
        size_bytes=int(arguments.size_kb * 1024),
        block_bytes=arguments.block_bytes,
        associativity=arguments.associativity,
        name=f"cache-{arguments.size_kb:g}K",
    )
    technology = node_technology(arguments.node, arguments.scaling_style)
    return CacheModel(config, technology=technology)


def _cmd_experiments(arguments) -> int:
    from repro.experiments.runner import main as runner_main

    argv = list(arguments.ids)
    if arguments.jobs != 1:
        argv += ["--jobs", str(arguments.jobs)]
    return runner_main(argv)


def _cmd_describe(arguments) -> int:
    model = _build_model(arguments)
    technology = model.technology
    print(model.describe())
    print(f"cell-array area at nominal Tox: {model.area() * 1e6:.3f} mm^2")
    evaluation = model.uniform(
        knobs(technology.vth_ref, units.to_angstrom(technology.tox_ref))
    )
    print(f"transistors: {evaluation.transistor_count}")
    return 0


def _resolve_point(arguments, technology):
    """The (Vth, Tox) to evaluate: explicit flags, else the node nominal.

    The historical defaults (0.35 V, 12 Å) are kept at 65 nm; a scaled
    node's box may not contain them, so there the node's own nominal
    point is the default instead.
    """
    vth = arguments.vth
    tox_a = arguments.tox
    if vth is None:
        vth = 0.35 if arguments.node == 65 else technology.vth_ref
    if tox_a is None:
        tox_a = (
            12.0 if arguments.node == 65
            else units.to_angstrom(technology.tox_ref)
        )
    return knobs(vth, tox_a).validate(technology=technology)


def _cmd_evaluate(arguments) -> int:
    model = _build_model(arguments)
    point = _resolve_point(arguments, model.technology)
    evaluation = model.uniform(point)
    print(model.config.describe())
    print(
        f"assignment: uniform ({point.vth:g} V, "
        f"{point.tox_angstrom:g} A) at {arguments.node} nm "
        f"({arguments.scaling_style})"
    )
    print(f"access time:    {units.to_ps(evaluation.access_time):9.1f} ps")
    print(f"leakage power:  {units.to_mw(evaluation.leakage_power):9.4f} mW")
    print(
        "read energy:    "
        f"{units.to_pj(evaluation.dynamic_read_energy):9.2f} pJ"
    )
    return 0


def _cmd_optimize(arguments) -> int:
    model = _build_model(arguments)
    scheme = _SCHEMES[arguments.scheme]
    result = minimize_leakage(
        model, scheme, units.ps(arguments.target_ps)
    )
    print(
        f"{scheme.paper_name} optimum under "
        f"T <= {arguments.target_ps:.0f} ps:"
    )
    print(f"  leakage:     {units.to_mw(result.leakage_power):.4f} mW")
    print(f"  access time: {units.to_ps(result.access_time):.1f} ps")
    print(result.assignment.describe())
    return 0


def _cmd_fit(arguments) -> int:
    from repro.models.analytical import fit_cache_model
    from repro.models.io import save_fitted_model

    model = _build_model(arguments)
    fitted = fit_cache_model(model)
    print(
        f"fitted {len(fitted.components)} components; worst R^2 = "
        f"{fitted.worst_fit_r_squared():.4f}"
    )
    if arguments.output:
        save_fitted_model(fitted, arguments.output)
        print(f"saved to {arguments.output}")
    return 0


def _cmd_serve(arguments) -> int:
    from repro.service import ServiceConfig, run

    warm_profiles = tuple(
        name.strip()
        for name in (arguments.warm_profiles or "").split(",")
        if name.strip()
    )
    config = ServiceConfig(
        host=arguments.host,
        port=arguments.port,
        batch_window_seconds=arguments.batch_window_ms / 1000.0,
        job_workers=arguments.job_workers,
        job_queue=arguments.job_queue,
        job_timeout_seconds=arguments.job_timeout,
        cache_dir=arguments.cache_dir,
        quiet=not arguments.verbose,
        warm_profiles=warm_profiles,
        campaign_max_units=arguments.campaign_max_units,
        campaign_fanout=arguments.campaign_fanout,
    )
    if arguments.workers > 1:
        from repro.service.supervisor import run_supervised

        return run_supervised(
            config, arguments.workers, port_file=arguments.port_file
        )
    return run(config, port_file=arguments.port_file)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Power-Performance Trade-Offs in "
            "Nanometer-Scale Multi-Level Caches Considering Total "
            "Leakage' (DATE 2005)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments = commands.add_parser(
        "experiments", help="run the paper's experiments"
    )
    experiments.add_argument("ids", nargs="*", help="experiment ids")
    experiments.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes (default 1)")
    experiments.set_defaults(handler=_cmd_experiments)

    describe = commands.add_parser("describe", help="print cache structure")
    _add_cache_arguments(describe)
    describe.set_defaults(handler=_cmd_describe)

    evaluate = commands.add_parser("evaluate", help="evaluate one knob point")
    _add_cache_arguments(evaluate)
    evaluate.add_argument("--vth", type=float, default=None,
                          help="threshold voltage in V (default 0.35 at "
                               "65 nm, the node's nominal elsewhere)")
    evaluate.add_argument("--tox", type=float, default=None,
                          help="oxide thickness in A (default 12 at "
                               "65 nm, the node's nominal elsewhere)")
    evaluate.set_defaults(handler=_cmd_evaluate)

    optimize = commands.add_parser("optimize", help="Section 4 optimiser")
    _add_cache_arguments(optimize)
    optimize.add_argument("--scheme", choices=sorted(_SCHEMES),
                          default="2", help="assignment scheme (1/2/3)")
    optimize.add_argument("--target-ps", type=float, default=1200.0,
                          help="access-time constraint in ps")
    optimize.set_defaults(handler=_cmd_optimize)

    fit = commands.add_parser("fit", help="fit the Section 3 forms")
    _add_cache_arguments(fit)
    fit.add_argument("--output", help="write the fit to this JSON path")
    fit.set_defaults(handler=_cmd_fit)

    serve = commands.add_parser(
        "serve", help="start the HTTP service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="port to listen on; 0 picks an ephemeral port")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port to this file on startup")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes behind one shared listen "
                            "socket; >1 starts the fork supervisor with "
                            "crash restart (default 1: single process)")
    serve.add_argument("--batch-window-ms", type=float, default=5.0,
                       help="sweep coalescing window in ms (default 5)")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="calibration worker processes (default 2)")
    serve.add_argument("--job-queue", type=int, default=16,
                       help="max queued calibration jobs (default 16)")
    serve.add_argument("--job-timeout", type=float, default=600.0,
                       help="per-job timeout in seconds (default 600)")
    serve.add_argument("--cache-dir", default=None,
                       help="calibration disk-cache directory")
    serve.add_argument("--warm-profiles", default=None, metavar="NAMES",
                       help="comma-separated workloads whose profile "
                            "surfaces are computed at startup "
                            "(e.g. spec2000,tpcc)")
    serve.add_argument("--campaign-max-units", type=int, default=2048,
                       help="expansion budget for one campaign "
                            "(default 2048 units)")
    serve.add_argument("--campaign-fanout", type=int, default=4,
                       help="concurrent heavy campaign units in flight "
                            "(default 4)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
