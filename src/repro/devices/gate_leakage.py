"""Direct-tunnelling gate leakage model.

For sub-20 Å oxides, carriers tunnel directly through the gate dielectric.
The full WKB expression is unwieldy; over the paper's narrow design window
(10-14 Å, ~1 V) the standard compact approximation is::

    Jg(V, tox) = K * (V / tox)^2 * exp(-B * tox * f(V))

i.e. a Fowler-Nordheim-style field-squared prefactor times an exponential
in the physical oxide thickness.  ``f(V) = 1 - V / (4 * phi_b)`` supplies
the weak barrier-lowering voltage dependence (phi_b ~ 3.1 eV for the
Si/SiO2 electron barrier).  ``B`` is calibrated so the current density
drops roughly one decade per 2 Å of added oxide, matching measured 65 nm-era
data (~1e3 A/cm^2 at 10 Å / 1 V, ~1 A/cm^2 at 14 Å).

This exponential Tox dependence is what the paper's fitted total-leakage
form captures with its ``A2 * exp(a2 * Tox)`` term, and it is the reason
total leakage cannot be minimised by raising Vth alone: once subthreshold
conduction is suppressed, the gate-tunnelling floor remains and only Tox
moves it.

State dependence: tunnelling requires an inverted channel, so an ON
transistor (|Vgs| = Vdd) leaks through its full channel area while an OFF
transistor leaks only through edge-direct-tunnelling at the gate/drain
overlap — modelled as a fixed small fraction of the ON current.  PMOS
devices tunnel holes through a higher barrier and leak roughly an order of
magnitude less.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceModelError
from repro.technology.bptm import Technology

#: Si/SiO2 electron barrier height used in the voltage-dependence factor (V).
BARRIER_HEIGHT = 3.1

#: Edge-direct-tunnelling fraction: gate leakage of an OFF device relative
#: to the same device ON (overlap region only).
EDT_FRACTION = 0.10

#: PMOS gate tunnelling relative to NMOS at the same field (hole barrier
#: is ~4.5 eV vs ~3.1 eV, suppressing the current roughly 10x).
PMOS_TUNNEL_RATIO = 0.10


def gate_current_density(technology: Technology, voltage: float, tox: float) -> float:
    """Return the gate direct-tunnelling current density (A/m^2).

    Parameters
    ----------
    voltage:
        Magnitude of the oxide voltage (V); 0 returns 0.
    tox:
        Physical oxide thickness (m).

    Both arguments may be numpy arrays; they broadcast and the density
    comes back with the broadcast shape.
    """
    if not isinstance(voltage, np.ndarray) and not isinstance(tox, np.ndarray):
        if tox <= 0:
            raise DeviceModelError(f"tox must be positive, got {tox}")
        if voltage < 0:
            raise DeviceModelError(
                f"oxide voltage magnitude must be >= 0, got {voltage}"
            )
        if voltage == 0.0:
            return 0.0
        barrier_factor = 1.0 - voltage / (4.0 * BARRIER_HEIGHT)
        if barrier_factor <= 0:
            raise DeviceModelError(
                f"oxide voltage {voltage} V exceeds the model's validity (>~12 V)"
            )
        field_term = (voltage / tox) ** 2
        return (
            technology.gate_tunnel_k
            * field_term
            * math.exp(-technology.gate_tunnel_b * tox * barrier_factor)
        )
    if np.any(np.less_equal(tox, 0)):
        raise DeviceModelError(f"tox must be positive, got {tox}")
    if np.any(np.less(voltage, 0)):
        raise DeviceModelError(f"oxide voltage magnitude must be >= 0, got {voltage}")
    barrier_factor = 1.0 - np.asarray(voltage, dtype=float) / (4.0 * BARRIER_HEIGHT)
    if np.any(np.logical_and(np.greater(voltage, 0), barrier_factor <= 0)):
        raise DeviceModelError(
            f"oxide voltage {voltage} V exceeds the model's validity (>~12 V)"
        )
    field_term = (voltage / tox) ** 2
    density = (
        technology.gate_tunnel_k
        * field_term
        * np.exp(-technology.gate_tunnel_b * tox * barrier_factor)
    )
    return np.where(np.equal(voltage, 0.0), 0.0, density)[()]


def gate_tunnel_current(
    technology: Technology,
    width: float,
    lgate: float,
    tox: float,
    vgs: float = None,
    conducting: bool = True,
    p_type: bool = False,
) -> float:
    """Return the gate leakage current (A) of one transistor.

    Parameters
    ----------
    width, lgate:
        Gate geometry (m).  The *drawn* length is used because tunnelling
        happens over the whole physical gate area.
    tox:
        Oxide thickness (m).
    vgs:
        Gate bias magnitude (V); defaults to the full supply.
    conducting:
        True for an ON device (channel inverted, full-area tunnelling);
        False applies the edge-direct-tunnelling fraction.
    p_type:
        Apply the PMOS hole-tunnelling suppression.
    """
    if not isinstance(width, np.ndarray) and not isinstance(lgate, np.ndarray):
        if width <= 0 or lgate <= 0:
            raise DeviceModelError(
                f"gate geometry must be positive, got W={width}, L={lgate}"
            )
    elif np.any(np.less_equal(width, 0)) or np.any(np.less_equal(lgate, 0)):
        raise DeviceModelError(
            f"gate geometry must be positive, got W={width}, L={lgate}"
        )
    if vgs is None:
        vgs = technology.vdd
    density = gate_current_density(technology, vgs, tox)
    current = density * width * lgate
    if not conducting:
        current *= EDT_FRACTION
    if p_type:
        current *= PMOS_TUNNEL_RATIO
    return current


def decades_per_angstrom(technology: Technology, voltage: float = None) -> float:
    """Return how many decades gate current drops per added ångström.

    A calibration figure of merit: physical oxides show ~0.4-0.6
    decades/Å.  Used by the test suite to pin the model to measured
    sensitivity.
    """
    if voltage is None:
        voltage = technology.vdd
    j_lo = gate_current_density(technology, voltage, 10e-10)
    j_hi = gate_current_density(technology, voltage, 11e-10)
    return math.log10(j_lo / j_hi)
