"""Subthreshold (weak-inversion) leakage model.

The drain current of a MOSFET biased below threshold is exponential in the
gate overdrive::

    Isub = I0 * (W / Leff) * exp((Vgs - Vth_eff) / (n * vT)) * (1 - exp(-Vds / vT))

with the BSIM-style pre-exponential ``I0 = mu * Cox * vT^2 * e^1.8`` and an
effective threshold that is reduced by drain-induced barrier lowering
(DIBL) and raised by reverse body bias::

    Vth_eff = Vth + eta * (Vdd - Vds) + gamma_body * Vsb

**Vth convention.** Throughout this library, the design knob ``Vth`` is the
*saturated* threshold voltage — the threshold at ``Vds = Vdd`` — because
that is the worst-case standby condition the paper's leakage numbers refer
to.  The DIBL term therefore *adds* threshold back as the drain bias drops
below the supply, rather than subtracting it at full bias.  This makes
"Vth = 0.2 V" directly comparable with the paper's design range.

The exponential Vth dependence here is exactly what makes the paper's
fitted leakage form ``A1 * exp(a1 * Vth)`` work (Section 3).
"""

from __future__ import annotations

import math

import numpy as np

from repro import units
from repro.errors import DeviceModelError
from repro.technology.bptm import Technology


def effective_threshold(
    technology: Technology,
    vth: float,
    vds: float,
    vsb: float = 0.0,
) -> float:
    """Return the DIBL- and body-adjusted threshold voltage (V).

    Parameters
    ----------
    technology:
        Process node supplying the DIBL coefficient and body factor.
    vth:
        Saturated threshold voltage (at ``Vds = Vdd``), in volts.
    vds:
        Actual drain-source bias (V); lower bias raises the barrier.
    vsb:
        Source-body reverse bias (V); used by the stack model.

    Every bias argument may be a scalar or a numpy array; arrays
    broadcast through and the adjusted threshold comes back with the
    broadcast shape.
    """
    if not isinstance(vth, np.ndarray) and not isinstance(vds, np.ndarray) and not isinstance(vsb, np.ndarray):
        dibl_recovery = technology.dibl * max(technology.vdd - vds, 0.0)
        body = technology.body_effect_gamma * max(vsb, 0.0)
        return vth + dibl_recovery + body
    dibl_recovery = technology.dibl * np.maximum(technology.vdd - vds, 0.0)
    body = technology.body_effect_gamma * np.maximum(vsb, 0.0)
    return vth + dibl_recovery + body


def subthreshold_prefactor(technology: Technology, tox: float, p_type: bool = False) -> float:
    """Return the BSIM-style pre-exponential I0 (A) for W/Leff = 1.

    ``I0 = mu * Cox(tox) * vT^2 * e^1.8``.  The hole branch uses the
    degraded p-channel mobility.
    """
    vt = technology.thermal_voltage
    mobility = technology.mobility_p if p_type else technology.mobility_n
    return mobility * technology.cox(tox) * vt * vt * math.exp(1.8)


def subthreshold_current(
    technology: Technology,
    width: float,
    leff: float,
    vth: float,
    tox: float,
    vgs: float = 0.0,
    vds: float = None,
    vsb: float = 0.0,
    p_type: bool = False,
) -> float:
    """Return the subthreshold drain current (A) of a single transistor.

    Parameters
    ----------
    width, leff:
        Transistor width and effective channel length (m).
    vth:
        Saturated threshold voltage (V); see module docstring for the
        convention.
    tox:
        Gate-oxide thickness (m), which sets Cox in the pre-exponential.
    vgs, vds, vsb:
        Terminal biases (V).  For a PMOS, pass the *magnitudes* (the model
        is symmetric in polarity).  ``vds`` defaults to the full supply,
        the standby worst case.
    p_type:
        Use hole mobility for the pre-exponential.

    ``vth``, ``tox`` and the biases may be numpy arrays; they broadcast
    and the current comes back with the broadcast shape.  Validation is
    applied element-wise (any offending element raises).

    Raises
    ------
    DeviceModelError
        If geometry is non-positive or the gate bias puts the device into
        strong inversion (``vgs >= vth_eff``), where this weak-inversion
        model is not valid.
    """
    if vds is None:
        vds = technology.vdd
    scalar = (
        not isinstance(width, np.ndarray)
        and not isinstance(leff, np.ndarray)
        and not isinstance(vth, np.ndarray)
        and not isinstance(tox, np.ndarray)
        and not isinstance(vgs, np.ndarray)
        and not isinstance(vds, np.ndarray)
        and not isinstance(vsb, np.ndarray)
    )
    if scalar:
        if width <= 0 or leff <= 0:
            raise DeviceModelError(
                f"transistor geometry must be positive, got W={width}, Leff={leff}"
            )
        if vds < 0 or vgs < 0:
            raise DeviceModelError(
                f"bias magnitudes must be non-negative, got Vgs={vgs}, Vds={vds}"
            )
        vth_eff = effective_threshold(technology, vth, vds, vsb)
        if vgs >= vth_eff:
            raise DeviceModelError(
                f"Vgs={vgs:.3f} V >= effective Vth={vth_eff:.3f} V: device is in "
                "strong inversion; use repro.devices.delay.on_current instead"
            )
        vt = technology.thermal_voltage
        n = technology.subthreshold_swing_n
        i0 = subthreshold_prefactor(technology, tox, p_type=p_type)
        exponent = (vgs - vth_eff) / (n * vt)
        drain_term = 1.0 - math.exp(-vds / vt) if vds > 0 else 0.0
        return i0 * (width / leff) * math.exp(exponent) * drain_term

    if np.any(np.less_equal(width, 0)) or np.any(np.less_equal(leff, 0)):
        raise DeviceModelError(
            f"transistor geometry must be positive, got W={width}, Leff={leff}"
        )
    if np.any(np.less(vds, 0)) or np.any(np.less(vgs, 0)):
        raise DeviceModelError(
            f"bias magnitudes must be non-negative, got Vgs={vgs}, Vds={vds}"
        )

    vth_eff = effective_threshold(technology, vth, vds, vsb)
    if np.any(np.greater_equal(vgs, vth_eff)):
        raise DeviceModelError(
            f"Vgs={vgs} V >= effective Vth={vth_eff} V: device is in "
            "strong inversion; use repro.devices.delay.on_current instead"
        )

    vt = technology.thermal_voltage
    n = technology.subthreshold_swing_n
    i0 = subthreshold_prefactor(technology, tox, p_type=p_type)
    exponent = (vgs - vth_eff) / (n * vt)
    drain_term = np.where(np.greater(vds, 0), 1.0 - np.exp(-np.divide(vds, vt)), 0.0)
    return i0 * (width / leff) * np.exp(exponent) * drain_term


def off_current_per_width(
    technology: Technology,
    vth: float,
    tox: float,
    leff: float,
    p_type: bool = False,
) -> float:
    """Return the standby off-current per metre of width (A/m).

    Convenience for calibration tests: the industry-standard figure of
    merit is Ioff in nA/um at ``Vgs = 0``, ``Vds = Vdd``.
    """
    return subthreshold_current(
        technology,
        width=1.0,
        leff=leff,
        vth=vth,
        tox=tox,
        vgs=0.0,
        vds=technology.vdd,
        p_type=p_type,
    )


def subthreshold_swing(technology: Technology) -> float:
    """Return the subthreshold swing S (V/decade).

    ``S = n * vT * ln(10)`` — about 90 mV/dec for n = 1.45 at 300 K.
    Exposed because leakage-vs-Vth slopes in tests are expressed as
    decades-per-volt = 1/S.
    """
    return technology.subthreshold_swing_n * technology.thermal_voltage * math.log(10.0)


def leakage_temperature_scale(
    technology: Technology, vth: float, temperature_k: float
) -> float:
    """Return the multiplier on standby Isub when heating to ``temperature_k``.

    Captures both the vT in the exponent and the vT^2 pre-exponential;
    used by the corner analyses (leakage roughly doubles every ~10-15 K
    for near-threshold devices).
    """
    if temperature_k <= 0:
        raise DeviceModelError(f"temperature must be positive, got {temperature_k}")
    vt_ref = technology.thermal_voltage
    vt_new = units.thermal_voltage(temperature_k)
    n = technology.subthreshold_swing_n
    # Standby bias: Vgs = 0, Vds = Vdd -> exponent is -Vth / (n vT).
    ratio = (vt_new / vt_ref) ** 2 * np.exp(
        (-vth / (n * vt_new)) - (-vth / (n * vt_ref))
    )
    return ratio
