"""Drive current, switching resistance and capacitance models.

Delay in this library is computed with the classic RC / logical-effort
abstraction: every gate is a resistance (set by its drive transistor's
saturation current) charging a load capacitance (gates + junctions +
wires).  The saturation current follows the **alpha-power law**::

    Idsat = (mu * Cox / 2) * (W / Leff) * (Vdd - Vth)^alpha

with ``alpha ~ 1.3`` capturing velocity saturation at 65 nm.  Two separate
Tox effects enter delay:

* Cox = eps_ox / Tox falls with thicker oxide, weakening drive, and
* the paper's co-scaling rule lengthens the channel with Tox
  (:mod:`repro.technology.scaling`), weakening drive again and enlarging
  the cell (longer word lines / bit lines).

Over the 10-14 Å window the combination is close to linear in Tox, which
is exactly the ``k2 * Tox`` term of the paper's fitted delay form; the
``(Vdd - Vth)^-alpha`` drive dependence linearises to the paper's weak
exponential ``k1 * exp(k3 * Vth)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceModelError
from repro.technology.bptm import Technology

#: Multiplier converting Vdd/Idsat into the effective switching resistance
#: of a step-driven transistor (accounts for the drain current trajectory
#: over the output transition; the classic value is ~1.2-1.5).
RESISTANCE_FUDGE = 2.6

#: Fraction of gate-oxide capacitance added by fringing/overlap.
FRINGE_FACTOR = 1.25


def on_current(
    technology: Technology,
    width: float,
    leff: float,
    vth: float,
    tox: float,
    p_type: bool = False,
) -> float:
    """Return the saturation drive current (A) via the alpha-power law.

    Raises :class:`DeviceModelError` if the device cannot turn on
    (``Vth >= Vdd``) — designs that high-threshold are outside the paper's
    space and would otherwise silently produce zero drive.

    ``vth`` and ``tox`` may be numpy arrays; they broadcast and the drive
    current comes back with the broadcast shape.
    """
    if not isinstance(width, np.ndarray) and not isinstance(leff, np.ndarray) and not isinstance(vth, np.ndarray):
        if width <= 0 or leff <= 0:
            raise DeviceModelError(
                f"transistor geometry must be positive, got W={width}, Leff={leff}"
            )
        overdrive = technology.vdd - vth
        if overdrive <= 0:
            raise DeviceModelError(
                f"Vth={vth} V >= Vdd={technology.vdd} V: device never turns on"
            )
    else:
        if np.any(np.less_equal(width, 0)) or np.any(np.less_equal(leff, 0)):
            raise DeviceModelError(
                f"transistor geometry must be positive, got W={width}, Leff={leff}"
            )
        overdrive = technology.vdd - np.asarray(vth, dtype=float)
        if np.any(np.less_equal(overdrive, 0)):
            raise DeviceModelError(
                f"Vth={vth} V >= Vdd={technology.vdd} V: device never turns on"
            )
    mobility = technology.mobility_p if p_type else technology.mobility_n
    cox = technology.cox(tox)
    return 0.5 * mobility * cox * (width / leff) * overdrive ** technology.alpha_power


def effective_resistance(
    technology: Technology,
    width: float,
    leff: float,
    vth: float,
    tox: float,
    p_type: bool = False,
) -> float:
    """Return the effective switching resistance (ohm) of one transistor.

    ``R = fudge * Vdd / Idsat`` — the standard RC-delay abstraction.
    """
    ids = on_current(technology, width, leff, vth, tox, p_type=p_type)
    return RESISTANCE_FUDGE * technology.vdd / ids


def gate_capacitance(
    technology: Technology,
    width: float,
    lgate: float,
    tox: float,
) -> float:
    """Return the input (gate) capacitance (F) of one transistor.

    Uses the drawn length (the whole gate sits over oxide) plus a fringe
    factor.  Thicker oxide *reduces* gate capacitance — one of the two
    reasons Tox has a weaker delay effect than its drive penalty alone
    would suggest.
    """
    if not isinstance(width, np.ndarray) and not isinstance(lgate, np.ndarray):
        if width <= 0 or lgate <= 0:
            raise DeviceModelError(
                f"gate geometry must be positive, got W={width}, L={lgate}"
            )
    elif np.any(np.less_equal(width, 0)) or np.any(np.less_equal(lgate, 0)):
        raise DeviceModelError(
            f"gate geometry must be positive, got W={width}, L={lgate}"
        )
    return FRINGE_FACTOR * technology.cox(tox) * width * lgate


def junction_capacitance(technology: Technology, width: float) -> float:
    """Return the source/drain junction capacitance (F) of one transistor.

    Junction capacitance scales with width but *not* with Tox, which is why
    wire/junction-dominated paths (bit lines, buses) dilute the Tox delay
    sensitivity relative to gate-load-dominated paths.
    """
    if not isinstance(width, np.ndarray):
        if width <= 0:
            raise DeviceModelError(f"width must be positive, got {width}")
    elif np.any(np.less_equal(width, 0)):
        raise DeviceModelError(f"width must be positive, got {width}")
    return technology.junction_cap_per_width * width


def fo4_delay(
    technology: Technology,
    vth: float,
    tox: float,
    leff: float = None,
    lgate: float = None,
) -> float:
    """Return the fanout-of-4 inverter delay (s) at the given knobs.

    The universal speed yardstick: an inverter driving four copies of
    itself.  Uses a 2:1 P:N inverter at minimum width.  Useful both for
    calibration tests (65 nm FO4 should be ~15-25 ps at the fast corner of
    the design space) and for expressing component delays in
    technology-neutral units.
    """
    if leff is None:
        leff = technology.leff
    if lgate is None:
        lgate = technology.lgate_drawn
    wn = technology.wmin
    wp = 2.0 * technology.wmin
    r_n = effective_resistance(technology, wn, leff, vth, tox)
    c_in = gate_capacitance(technology, wn + wp, lgate, tox)
    c_self = junction_capacitance(technology, wn + wp)
    return 0.69 * r_n * (4.0 * c_in + c_self)
