"""Device-physics substrate (the library's stand-in for HSPICE + BPTM cards).

The paper characterises transistors over a (Vth, Tox) grid with HSPICE.
This package provides analytic BSIM-flavoured models producing the same
functional dependences from first principles:

* :mod:`~repro.devices.subthreshold` — weak-inversion drain current with
  DIBL, body effect and temperature dependence (exponential in Vth);
* :mod:`~repro.devices.gate_leakage` — direct-tunnelling gate current
  (exponential in Tox);
* :mod:`~repro.devices.stack` — the series-stack leakage reduction factor;
* :mod:`~repro.devices.delay` — alpha-power-law on-current, effective
  switching resistance and gate capacitance;
* :mod:`~repro.devices.mosfet` — a :class:`Mosfet` value object bundling a
  sized transistor with its (Vth, Tox) assignment and exposing leakage /
  drive / capacitance queries.

All device functions take the :class:`~repro.technology.Technology` node
explicitly; nothing in this package holds hidden global state.
"""

from repro.devices.mosfet import Mosfet, Polarity
from repro.devices.subthreshold import subthreshold_current
from repro.devices.gate_leakage import gate_current_density, gate_tunnel_current
from repro.devices.stack import stack_leakage_factor
from repro.devices.delay import (
    on_current,
    effective_resistance,
    gate_capacitance,
    junction_capacitance,
)

__all__ = [
    "Mosfet",
    "Polarity",
    "subthreshold_current",
    "gate_current_density",
    "gate_tunnel_current",
    "stack_leakage_factor",
    "on_current",
    "effective_resistance",
    "gate_capacitance",
    "junction_capacitance",
]
