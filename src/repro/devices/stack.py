"""Series-stack leakage suppression (the "stack effect").

When two or more OFF transistors are stacked in series (e.g. the NAND
pull-down network of a decoder gate), the intermediate node floats to a
small positive voltage.  That voltage simultaneously

* reduces |Vgs| of the upper device below zero,
* reduces its Vds (less DIBL barrier lowering), and
* reverse-biases its body (body effect raises Vth),

so a two-high stack leaks roughly an order of magnitude less than a single
OFF device of the same size.  The effect is central to getting decoder
leakage right: a cache decoder is built almost entirely of NAND stacks.

Rather than hard-coding the canonical "10x per stacked device" rule, the
factor is *derived* from the same subthreshold model used everywhere else
by solving the intermediate-node voltage self-consistently (currents
through the stacked devices must match).  This keeps the stack factor
automatically consistent with the chosen DIBL/body/swing parameters across
the whole (Vth, Tox) design grid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceModelError
from repro.technology.bptm import Technology
from repro.devices.subthreshold import subthreshold_current


def _stack2_current(
    technology: Technology,
    vth: float,
    tox: float,
    leff: float,
    vx: float,
) -> tuple:
    """Return (I_top, I_bottom) of a 2-stack with intermediate node at vx."""
    vdd = technology.vdd
    # Top device: source at vx -> Vgs = -vx (gate at 0), Vds = Vdd - vx,
    # body at 0 -> Vsb = vx.
    i_top = subthreshold_current(
        technology,
        width=1.0,
        leff=leff,
        vth=vth,
        tox=tox,
        vgs=0.0,
        vds=vdd - vx,
        vsb=vx,
    )
    # The Vgs = -vx reverse gate bias is applied via the exponent shift:
    # subthreshold_current only accepts vgs >= 0, so fold it into the
    # threshold by evaluating with vgs=0 and adding vx to the barrier.
    n_vt = technology.subthreshold_swing_n * technology.thermal_voltage
    if not isinstance(vx, np.ndarray):
        i_top = i_top * math.exp(-vx / n_vt)
        vds_bottom = max(vx, 1e-6)
    else:
        i_top = i_top * np.exp(-np.asarray(vx, dtype=float) / n_vt)
        vds_bottom = np.maximum(vx, 1e-6)
    # Bottom device: Vgs = 0, Vds = vx.
    i_bottom = subthreshold_current(
        technology,
        width=1.0,
        leff=leff,
        vth=vth,
        tox=tox,
        vgs=0.0,
        vds=vds_bottom,
    )
    return i_top, i_bottom


def solve_intermediate_node(
    technology: Technology,
    vth: float,
    tox: float,
    leff: float,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Solve the floating-node voltage of a 2-high OFF stack by bisection.

    The node settles where the current sourced by the top device equals the
    current sunk by the bottom one.  The answer is a few tens of mV.

    ``vth`` and ``tox`` may be numpy arrays; the bisection then runs on
    every lane simultaneously, freezing each lane at the iteration where
    the scalar algorithm would have returned, so the vectorized answer is
    lane-for-lane identical to the scalar one.
    """
    if not isinstance(vth, np.ndarray) and not isinstance(tox, np.ndarray):
        lo, hi = 0.0, technology.vdd / 2.0
        for _ in range(max_iterations):
            mid = 0.5 * (lo + hi)
            i_top, i_bottom = _stack2_current(technology, vth, tox, leff, mid)
            if abs(i_top - i_bottom) <= tolerance * max(i_top, i_bottom, 1e-30):
                return mid
            if i_top > i_bottom:
                # Node charges up -> raise vx.
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    vth_b, tox_b = np.broadcast_arrays(
        np.atleast_1d(np.asarray(vth, dtype=float)),
        np.atleast_1d(np.asarray(tox, dtype=float)),
    )
    shape = vth_b.shape
    lo = np.zeros(shape)
    hi = np.full(shape, technology.vdd / 2.0)
    result = np.zeros(shape)
    done = np.zeros(shape, dtype=bool)
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        i_top, i_bottom = _stack2_current(technology, vth_b, tox_b, leff, mid)
        converged = np.abs(i_top - i_bottom) <= tolerance * np.maximum(
            np.maximum(i_top, i_bottom), 1e-30
        )
        newly = converged & ~done
        result[newly] = mid[newly]
        done |= newly
        if done.all():
            break
        # Node charges up -> raise vx; otherwise lower it.  Frozen lanes
        # keep their brackets untouched.
        charges_up = i_top > i_bottom
        lo = np.where(~done & charges_up, mid, lo)
        hi = np.where(~done & ~charges_up, mid, hi)
    result = np.where(done, result, 0.5 * (lo + hi))
    return result.reshape(np.broadcast_shapes(np.shape(vth), np.shape(tox)))


def stack_leakage_factor(
    technology: Technology,
    vth: float,
    tox: float,
    leff: float,
    stack_depth: int = 2,
    enabled: bool = True,
) -> float:
    """Return the leakage multiplier of an OFF series stack vs a single device.

    Parameters
    ----------
    stack_depth:
        Number of series OFF transistors (1 returns 1.0).
    enabled:
        The ablation switch (DESIGN.md §5): when False, returns 1.0 so
        benches can quantify how much decoder leakage the stack effect
        hides.

    Notes
    -----
    Depths beyond 2 are approximated by applying the 2-stack solution
    once per extra device with diminishing returns (the third device
    contributes far less than the second — the dominant drop happens at
    the first intermediate node).
    """
    if stack_depth < 1:
        raise DeviceModelError(f"stack_depth must be >= 1, got {stack_depth}")
    if not enabled or stack_depth == 1:
        return 1.0
    single = subthreshold_current(
        technology, width=1.0, leff=leff, vth=vth, tox=tox, vgs=0.0,
        vds=technology.vdd,
    )
    vx = solve_intermediate_node(technology, vth, tox, leff)
    i_top, _ = _stack2_current(technology, vth, tox, leff, vx)
    factor2 = i_top / single
    if stack_depth == 2:
        return factor2
    # Each additional series device multiplies the suppression by a
    # diminishing amount (empirically ~2x per device past the second).
    extra = 0.5 ** (stack_depth - 2)
    return factor2 * extra
