"""The :class:`Mosfet` value object.

A :class:`Mosfet` bundles a sized transistor (polarity, W, L) with its
process-knob assignment (Vth, Tox) and exposes the leakage / drive /
capacitance queries the circuit layer needs.  It is deliberately immutable:
circuit builders create transistor populations once per (Vth, Tox)
evaluation point and the models never mutate them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import DeviceModelError
from repro.technology.bptm import Technology
from repro.devices import subthreshold as _sub
from repro.devices import gate_leakage as _gate
from repro.devices import delay as _delay
from repro.devices import stack as _stack


class Polarity(str, enum.Enum):
    """Transistor polarity."""

    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class Mosfet:
    """A sized transistor with a (Vth, Tox) assignment.

    Attributes
    ----------
    polarity:
        NMOS or PMOS.
    width:
        Drawn width (m).
    lgate:
        Drawn gate length (m); tunnelling area uses this.
    leff:
        Effective channel length (m); conduction models use this.
    vth:
        Saturated threshold voltage magnitude (V).
    tox:
        Gate-oxide thickness (m).
    """

    polarity: Polarity
    width: float
    lgate: float
    leff: float
    vth: float
    tox: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.lgate <= 0 or self.leff <= 0:
            raise DeviceModelError(
                f"geometry must be positive: W={self.width}, "
                f"L={self.lgate}, Leff={self.leff}"
            )
        if self.leff > self.lgate:
            raise DeviceModelError(
                f"Leff={self.leff} exceeds drawn length {self.lgate}"
            )
        if not isinstance(self.vth, np.ndarray):
            if self.vth <= 0:
                raise DeviceModelError(f"vth must be positive, got {self.vth}")
        elif np.any(np.less_equal(self.vth, 0)):
            raise DeviceModelError(f"vth must be positive, got {self.vth}")
        if not isinstance(self.tox, np.ndarray):
            if self.tox <= 0:
                raise DeviceModelError(f"tox must be positive, got {self.tox}")
        elif np.any(np.less_equal(self.tox, 0)):
            raise DeviceModelError(f"tox must be positive, got {self.tox}")

    @property
    def is_pmos(self) -> bool:
        return self.polarity is Polarity.PMOS

    def with_knobs(self, vth: float = None, tox: float = None) -> "Mosfet":
        """Return a copy with a different (Vth, Tox) assignment."""
        return replace(
            self,
            vth=self.vth if vth is None else vth,
            tox=self.tox if tox is None else tox,
        )

    # -- leakage --------------------------------------------------------

    def off_subthreshold(
        self,
        technology: Technology,
        vds: float = None,
        stack_depth: int = 1,
        stack_enabled: bool = True,
    ) -> float:
        """Return standby subthreshold current (A) when this device is OFF.

        ``stack_depth`` > 1 applies the series-stack suppression factor.
        """
        current = _sub.subthreshold_current(
            technology,
            width=self.width,
            leff=self.leff,
            vth=self.vth,
            tox=self.tox,
            vgs=0.0,
            vds=technology.vdd if vds is None else vds,
            p_type=self.is_pmos,
        )
        if stack_depth > 1:
            current *= _stack.stack_leakage_factor(
                technology,
                vth=self.vth,
                tox=self.tox,
                leff=self.leff,
                stack_depth=stack_depth,
                enabled=stack_enabled,
            )
        return current

    def gate_leakage(
        self, technology: Technology, conducting: bool, gate_enabled: bool = True
    ) -> float:
        """Return gate-tunnelling current (A) in the given channel state.

        ``gate_enabled=False`` is the ablation switch reproducing the
        pre-2005 "subthreshold only" literature mode.
        """
        if not gate_enabled:
            return 0.0
        return _gate.gate_tunnel_current(
            technology,
            width=self.width,
            lgate=self.lgate,
            tox=self.tox,
            conducting=conducting,
            p_type=self.is_pmos,
        )

    def total_standby_leakage(
        self,
        technology: Technology,
        conducting: bool,
        vds: float = None,
        stack_depth: int = 1,
        stack_enabled: bool = True,
        gate_enabled: bool = True,
    ) -> float:
        """Return total standby leakage (A): subthreshold (if OFF) + gate.

        A conducting device has no subthreshold component (its channel is
        on) but maximal gate tunnelling; an OFF device has both, with the
        gate part reduced to the edge-tunnelling fraction.
        """
        gate = self.gate_leakage(technology, conducting, gate_enabled=gate_enabled)
        if conducting:
            return gate
        sub = self.off_subthreshold(
            technology,
            vds=vds,
            stack_depth=stack_depth,
            stack_enabled=stack_enabled,
        )
        return sub + gate

    # -- drive / capacitance ---------------------------------------------

    def on_current(self, technology: Technology) -> float:
        """Return the saturation drive current (A)."""
        return _delay.on_current(
            technology, self.width, self.leff, self.vth, self.tox,
            p_type=self.is_pmos,
        )

    def resistance(self, technology: Technology) -> float:
        """Return the effective switching resistance (ohm)."""
        return _delay.effective_resistance(
            technology, self.width, self.leff, self.vth, self.tox,
            p_type=self.is_pmos,
        )

    def input_capacitance(self, technology: Technology) -> float:
        """Return the gate input capacitance (F)."""
        return _delay.gate_capacitance(technology, self.width, self.lgate, self.tox)

    def drain_capacitance(self, technology: Technology) -> float:
        """Return the drain junction capacitance (F)."""
        return _delay.junction_capacitance(technology, self.width)
