"""Within-die threshold-voltage variability (random dopant fluctuation).

At 65 nm, the handful of dopant atoms under a minimum gate makes Vth a
random variable with sigma following Pelgrom's law::

    sigma_Vth = A_vt / sqrt(W * L)

Because subthreshold leakage is exponential in Vth, a *population* of
nominally identical cells leaks more than the nominal cell: for a
Gaussian Vth with sigma ``s``, the lognormal mean multiplier is::

    E[exp(-dVth / (n vT))] = exp(s^2 / (2 (n vT)^2))

This matters to the paper's conclusions in two ways, both quantified by
the variability ablation bench: (1) mean array leakage is understated by
the nominal model (by ~10-40 % at minimum-size devices), and (2) the
effective benefit of raising nominal Vth is unchanged (the multiplier is
Vth-independent to first order), so the paper's *orderings* survive
variability — a robustness argument the paper itself does not make.
"""

from __future__ import annotations

import math

from repro.errors import DeviceModelError
from repro.technology.bptm import Technology

#: Pelgrom matching coefficient for 65 nm-era processes (V * m).
#: ~3.5 mV*um in the customary units.
PELGROM_AVT = 3.5e-9


def vth_sigma(
    technology: Technology,
    width: float,
    length: float,
    avt: float = PELGROM_AVT,
) -> float:
    """Return the Vth standard deviation (V) of one device.

    Pelgrom's law: sigma = A_vt / sqrt(W L).  A minimum 65 nm device
    (90 nm x 65 nm) comes out around 45 mV.
    """
    if width <= 0 or length <= 0:
        raise DeviceModelError(
            f"device geometry must be positive, got W={width}, L={length}"
        )
    if avt <= 0:
        raise DeviceModelError(f"A_vt must be positive, got {avt}")
    return avt / math.sqrt(width * length)


def leakage_variability_multiplier(
    technology: Technology, sigma: float
) -> float:
    """Return the mean-leakage multiplier of a Gaussian-Vth population.

    The lognormal mean ``exp(sigma^2 / (2 (n vT)^2))`` — always >= 1:
    variability only ever makes a population leak *more* on average,
    because the low-Vth tail outweighs the high-Vth tail exponentially.
    """
    if sigma < 0:
        raise DeviceModelError(f"sigma must be >= 0, got {sigma}")
    n_vt = technology.subthreshold_swing_n * technology.thermal_voltage
    return math.exp(sigma**2 / (2.0 * n_vt**2))


def percentile_vth_shift(sigma: float, n_sigma: float) -> float:
    """Return the Vth shift (V) at an ``n_sigma`` population percentile.

    Convenience for worst-case analyses: the -3 sigma cell of a 45 mV
    population sits 135 mV below nominal and leaks ~e^3.6x more.
    """
    if sigma < 0:
        raise DeviceModelError(f"sigma must be >= 0, got {sigma}")
    return n_sigma * sigma


def population_leakage(
    technology: Technology,
    nominal_leakage: float,
    width: float,
    length: float,
    avt: float = PELGROM_AVT,
) -> float:
    """Return mean leakage (A or W) of a device population.

    Applies the lognormal multiplier for the device's Pelgrom sigma to a
    nominal (sigma = 0) leakage figure.  Only the subthreshold component
    should be scaled this way — gate tunnelling is Tox-variability
    driven and far better controlled; callers split the components.
    """
    if nominal_leakage < 0:
        raise DeviceModelError(
            f"nominal leakage must be >= 0, got {nominal_leakage}"
        )
    sigma = vth_sigma(technology, width, length, avt=avt)
    return nominal_leakage * leakage_variability_multiplier(technology, sigma)
