"""Process and temperature corners.

The paper evaluates everything at the typical corner, but any credible
release of the system needs corner support: leakage is notoriously
corner-sensitive (fast-NMOS silicon at high temperature can leak an order
of magnitude more than typical).  A :class:`Corner` is a small multiplier
bundle applied to a :class:`~repro.technology.bptm.Technology` to derive a
perturbed copy.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import TechnologyError
from repro.technology.bptm import Technology


class CornerName(str, enum.Enum):
    """Canonical corner identifiers."""

    TYPICAL = "tt"
    FAST = "ff"
    SLOW = "ss"
    FAST_HOT = "ff_hot"
    SLOW_COLD = "ss_cold"


@dataclass(frozen=True)
class Corner:
    """A multiplicative perturbation of a technology.

    Attributes
    ----------
    name:
        Identifier (free-form; the canonical ones are in :class:`CornerName`).
    vth_shift:
        Additive shift applied to the nominal threshold voltage (V);
        negative means faster/leakier silicon.
    mobility_scale:
        Multiplier on carrier mobilities.
    vdd_scale:
        Multiplier on the supply voltage.
    temperature:
        Junction temperature (K) of the corner.
    """

    name: str
    vth_shift: float = 0.0
    mobility_scale: float = 1.0
    vdd_scale: float = 1.0
    temperature: float = 300.0

    def __post_init__(self) -> None:
        if self.mobility_scale <= 0:
            raise TechnologyError(
                f"mobility_scale must be positive, got {self.mobility_scale}"
            )
        if self.vdd_scale <= 0:
            raise TechnologyError(f"vdd_scale must be positive, got {self.vdd_scale}")
        if self.temperature <= 0:
            raise TechnologyError(
                f"temperature must be positive kelvin, got {self.temperature}"
            )


#: The standard five-corner set.  Shifts are representative of 65 nm-era
#: 3-sigma process spread (±30 mV systematic Vth, ±8 % mobility, ±10 % Vdd).
STANDARD_CORNERS = {
    CornerName.TYPICAL: Corner(name="tt"),
    CornerName.FAST: Corner(
        name="ff", vth_shift=-0.03, mobility_scale=1.08, vdd_scale=1.10
    ),
    CornerName.SLOW: Corner(
        name="ss", vth_shift=+0.03, mobility_scale=0.92, vdd_scale=0.90
    ),
    CornerName.FAST_HOT: Corner(
        name="ff_hot",
        vth_shift=-0.03,
        mobility_scale=1.08,
        vdd_scale=1.10,
        temperature=383.0,
    ),
    CornerName.SLOW_COLD: Corner(
        name="ss_cold",
        vth_shift=+0.03,
        mobility_scale=0.92,
        vdd_scale=0.90,
        temperature=233.0,
    ),
}


def apply_corner(technology: Technology, corner: Corner) -> Technology:
    """Return a copy of ``technology`` perturbed to ``corner``.

    The corner's Vth shift moves the *reference* threshold; designs still
    pick their own Vth values, so the shift models systematic process error
    between targeted and realised threshold.
    """
    return dataclasses.replace(
        technology,
        name=f"{technology.name}@{corner.name}",
        vth_ref=technology.vth_ref + corner.vth_shift,
        mobility_n=technology.mobility_n * corner.mobility_scale,
        mobility_p=technology.mobility_p * corner.mobility_scale,
        vdd=technology.vdd * corner.vdd_scale,
        temperature=corner.temperature,
    )
