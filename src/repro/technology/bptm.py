"""BPTM-style 65 nm technology parameter set.

The numbers below are anchored to the published Berkeley Predictive
Technology Model (BPTM, 2002) for the 65 nm node and to contemporaneous
ITRS 2003 projections: ~1.0 V supply, drawn gate length of 65 nm with an
effective channel length around 35 nm, nominal oxide around 12 Å, and
electron mobility degraded by the vertical field to roughly a third of the
bulk value.  They are deliberately kept as a plain frozen dataclass so a
test (or a corner, see :mod:`repro.technology.corners`) can derive a
perturbed copy with :func:`dataclasses.replace`.

The paper's design space is the grid ``Vth in [0.2 V, 0.5 V]`` x ``Tox in
[10 Å, 14 Å]`` — at 65 nm.  The bounds live on the :class:`Technology`
instance (``vth_min``/``vth_max``/``tox_min_a``/``tox_max_a``) so scaled
nodes (:mod:`repro.technology.nodes`) carry their own, node-correct
design ranges; the optimisers in :mod:`repro.optimize` clamp their
search grids to the bounds of the technology they were handed.  The
module constants below remain as the 65 nm values for backward
compatibility (they are the dataclass defaults).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as _np

from repro import units
from repro.errors import TechnologyError

# Design-space bounds from Section 2 of the paper.
VTH_MIN = 0.2
"""Lower Vth bound (V) — typical of high-performance logic at 65 nm."""

VTH_MAX = 0.5
"""Upper Vth bound (V) — above this is "unlikely in 65 nm with ~1 V supply"."""

TOX_MIN_A = 10.0
"""Lower Tox bound (Å)."""

TOX_MAX_A = 14.0
"""Upper Tox bound (Å)."""


@dataclass(frozen=True)
class Technology:
    """A frozen set of process parameters for one technology node.

    All quantities are SI.  A :class:`Technology` carries everything the
    device models need *except* the per-transistor knobs (Vth, Tox, W, L),
    which the paper treats as free design variables.

    Attributes
    ----------
    name:
        Human-readable node identifier, e.g. ``"bptm-65nm"``.
    vdd:
        Supply voltage (V).
    lgate_drawn:
        Nominal drawn gate length (m) at the reference oxide thickness.
    leff_ratio:
        Ratio of effective channel length to drawn length (dimensionless).
    tox_ref:
        Reference (nominal) oxide thickness (m); the Tox co-scaling rules
        in :mod:`repro.technology.scaling` are expressed relative to it.
    vth_ref:
        Nominal NMOS threshold voltage (V) of the fast logic transistor.
    wmin:
        Minimum transistor width (m).
    mobility_n / mobility_p:
        Effective electron / hole channel mobilities (m^2/Vs), already
        degraded for vertical field.
    subthreshold_swing_n:
        Subthreshold ideality factor ``n`` (dimensionless, S = n * vT * ln 10).
    dibl:
        DIBL coefficient ``eta`` (V/V): effective Vth drops by
        ``eta * Vds``.
    body_effect_gamma:
        Body-effect coefficient (V^0.5), used by the stack model.
    alpha_power:
        Velocity-saturation index of the alpha-power-law on-current model.
    gate_tunnel_k:
        Pre-exponential constant of the gate-tunnelling current density
        model (A/V^2 — multiplies (V/Tox)^2 * Tox^2... see
        :mod:`repro.devices.gate_leakage` for the exact form).
    gate_tunnel_b:
        Exponential Tox-sensitivity of gate tunnelling (1/m); calibrated so
        current drops about one decade per 2 Å of added oxide.
    temperature:
        Junction temperature (K).
    wire_res_per_m:
        Mid-level metal wire resistance per metre (ohm/m).
    wire_cap_per_m:
        Mid-level metal wire capacitance per metre (F/m).
    cell_height_ref / cell_width_ref:
        6T SRAM cell footprint (m) at the reference oxide thickness.
    junction_cap_per_width:
        Source/drain junction capacitance per unit transistor width (F/m).
    vth_min / vth_max:
        This node's (Vth) design-space bounds (V).
    tox_min_a / tox_max_a:
        This node's (Tox) design-space bounds (Å).
    """

    name: str = "bptm-65nm"
    vdd: float = 1.0
    lgate_drawn: float = 65e-9
    leff_ratio: float = 0.55
    tox_ref: float = units.angstrom(12.0)
    vth_ref: float = 0.22
    wmin: float = 90e-9
    mobility_n: float = 0.0060
    mobility_p: float = 0.0025
    subthreshold_swing_n: float = 1.45
    dibl: float = 0.15
    body_effect_gamma: float = 0.20
    alpha_power: float = 1.6
    gate_tunnel_k: float = 2.5e-7
    gate_tunnel_b: float = 1.10e10
    temperature: float = units.ROOM_TEMPERATURE
    wire_res_per_m: float = 4.2e5
    wire_cap_per_m: float = 2.4e-10
    cell_height_ref: float = 0.88e-6
    cell_width_ref: float = 1.46e-6
    junction_cap_per_width: float = 8.0e-10
    vth_min: float = VTH_MIN
    vth_max: float = VTH_MAX
    tox_min_a: float = TOX_MIN_A
    tox_max_a: float = TOX_MAX_A

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise TechnologyError(f"vdd must be positive, got {self.vdd}")
        if not 0.0 < self.vth_min < self.vth_max:
            raise TechnologyError(
                f"need 0 < vth_min < vth_max, got "
                f"[{self.vth_min}, {self.vth_max}]"
            )
        if not 0.0 < self.tox_min_a < self.tox_max_a:
            raise TechnologyError(
                f"need 0 < tox_min_a < tox_max_a, got "
                f"[{self.tox_min_a}, {self.tox_max_a}]"
            )
        if self.tox_ref <= 0:
            raise TechnologyError(f"tox_ref must be positive, got {self.tox_ref}")
        if not 0.0 < self.leff_ratio <= 1.0:
            raise TechnologyError(
                f"leff_ratio must be in (0, 1], got {self.leff_ratio}"
            )
        if self.temperature <= 0:
            raise TechnologyError(
                f"temperature must be positive kelvin, got {self.temperature}"
            )
        if self.wmin <= 0:
            raise TechnologyError(f"wmin must be positive, got {self.wmin}")

    # -- derived quantities -------------------------------------------------

    @property
    def leff(self) -> float:
        """Effective channel length (m) at the reference oxide thickness."""
        return self.lgate_drawn * self.leff_ratio

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the technology's junction temperature (V)."""
        return units.thermal_voltage(self.temperature)

    @property
    def subthreshold_swing_mv_dec(self) -> float:
        """Subthreshold swing S in mV/decade (~90 mV/dec at 300 K, n=1.45)."""
        import math

        return self.subthreshold_swing_n * self.thermal_voltage * math.log(10) * 1e3

    def cox(self, tox: float) -> float:
        """Gate-oxide capacitance per unit area (F/m^2) for thickness ``tox`` (m).

        ``tox`` may be a numpy array; the capacitance broadcasts with it.
        """
        if not isinstance(tox, _np.ndarray):
            if tox <= 0:
                raise TechnologyError(f"tox must be positive, got {tox}")
        elif _np.any(_np.less_equal(tox, 0)):
            raise TechnologyError(f"tox must be positive, got {tox}")
        return units.oxide_capacitance_per_area(tox)

    def validate_vth(self, vth: float) -> float:
        """Return ``vth`` if it lies in this node's design range, else raise."""
        if not self.vth_min <= vth <= self.vth_max:
            raise TechnologyError(
                f"Vth={vth:.3f} V outside {self.name}'s design range "
                f"[{self.vth_min:g}, {self.vth_max:g}] V"
            )
        return vth

    def validate_tox(self, tox: float) -> float:
        """Return ``tox`` (m) if it lies in this node's design range, else raise."""
        tox_a = units.to_angstrom(tox)
        if not self.tox_min_a - 1e-9 <= tox_a <= self.tox_max_a + 1e-9:
            raise TechnologyError(
                f"Tox={tox_a:.2f} Å outside {self.name}'s design range "
                f"[{self.tox_min_a:g}, {self.tox_max_a:g}] Å"
            )
        return tox

    def with_temperature(self, temperature_k: float) -> "Technology":
        """Return a copy of this technology at a different junction temperature."""
        return dataclasses.replace(self, temperature=temperature_k)


def bptm65() -> Technology:
    """Return the canonical BPTM-style 65 nm technology used throughout.

    This is a plain constructor call (the dataclass defaults *are* the
    node); it exists so call sites read ``bptm65()`` rather than
    ``Technology()``.
    """
    return Technology()
