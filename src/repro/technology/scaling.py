"""Tox co-scaling rules (Section 2 of the paper).

Increasing Tox while keeping the drawn channel length fixed would let the
gate lose electrostatic control of the channel (worsening DIBL), so the
paper scales the drawn channel length together with Tox.  To preserve the
read/write stability ratios of the 6T memory cell, the transistor widths in
the cell are scaled proportionally with the new channel length, which grows
the cell footprint in *both* dimensions.

This module encodes that rule as :class:`ToxScalingRule`:

* ``L(tox) = L_ref * (tox / tox_ref) ** length_exponent``
* ``W_cell(tox) = W_ref * (tox / tox_ref) ** length_exponent``
* ``area_cell(tox) = area_ref * (tox / tox_ref) ** (2 * length_exponent)``

with ``length_exponent = 1`` by default (straight proportionality, the
simplest reading of the paper).  Peripheral-logic transistor widths are a
free sizing variable and are *not* forced to scale — only their channel
length follows the oxide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TechnologyError
from repro.technology.bptm import Technology


@dataclass(frozen=True)
class ScaledGeometry:
    """Geometry of one technology instantiation after Tox co-scaling.

    Attributes
    ----------
    tox:
        Oxide thickness (m) this geometry was derived for.
    lgate_drawn:
        Scaled drawn channel length (m).
    leff:
        Scaled effective channel length (m).
    width_scale:
        Multiplier applied to memory-cell transistor widths.
    cell_height / cell_width:
        Scaled 6T cell footprint (m).
    cell_area:
        Scaled 6T cell area (m^2).
    """

    tox: float
    lgate_drawn: float
    leff: float
    width_scale: float
    cell_height: float
    cell_width: float

    @property
    def cell_area(self) -> float:
        return self.cell_height * self.cell_width


@dataclass(frozen=True)
class ToxScalingRule:
    """The paper's Tox -> (channel length, cell geometry) coupling.

    Parameters
    ----------
    technology:
        The reference node whose nominal geometry is scaled.
    length_exponent:
        Exponent of the (tox / tox_ref) scaling of drawn length; 1.0 means
        straight proportionality.  Setting 0.0 disables the coupling
        entirely, which the ablation benches use to quantify how much the
        conclusion depends on it.
    """

    technology: Technology
    length_exponent: float = 0.6

    def length_scale(self, tox: float) -> float:
        """Return the drawn-length multiplier for oxide thickness ``tox`` (m).

        ``tox`` may be a numpy array; the multiplier broadcasts with it.
        """
        if not isinstance(tox, np.ndarray):
            if tox <= 0:
                raise TechnologyError(f"tox must be positive, got {tox}")
        elif np.any(np.less_equal(tox, 0)):
            raise TechnologyError(f"tox must be positive, got {tox}")
        return (tox / self.technology.tox_ref) ** self.length_exponent

    def geometry(self, tox: float) -> ScaledGeometry:
        """Return the full scaled geometry for oxide thickness ``tox`` (m)."""
        scale = self.length_scale(tox)
        tech = self.technology
        return ScaledGeometry(
            tox=tox,
            lgate_drawn=tech.lgate_drawn * scale,
            leff=tech.lgate_drawn * scale * tech.leff_ratio,
            width_scale=scale,
            cell_height=tech.cell_height_ref * scale,
            cell_width=tech.cell_width_ref * scale,
        )

    def cell_area(self, tox: float) -> float:
        """Return the 6T cell area (m^2) at oxide thickness ``tox`` (m).

        Grows quadratically with the length scale because the cell grows in
        both horizontal and vertical dimensions (Section 2).
        """
        return self.geometry(tox).cell_area
