"""Node-parameterised technology family: BPTM 65 nm scaled to 8 nm.

The paper's study is anchored at BPTM 65 nm (:func:`~repro.technology
.bptm.bptm65`).  This module extends that single point into a family of
seven nodes (65/45/32/22/16/11/8 nm) under two scaling styles, following
the ITRS-vs-conservative table pattern of the lumos dark-silicon model
(Esmaeilzadeh et al.; see ``hoangt/lumos``), re-anchored to 65 nm:

``"itrs"``
    Aggressive ITRS-projection scaling: supply and threshold keep
    falling with the node, oxide thins steeply, nominal frequency climbs
    fast.  Leakage (both subthreshold and gate) grows quickly.
``"cons"``
    Conservative scaling: supply nearly flattens below 22 nm, the oxide
    thins slowly, frequency gains are modest.  This is the
    post-Dennard reality track.

What scales with the node
-------------------------
* ``vdd``, nominal ``vth_ref`` and ``tox_ref`` — per-style tables below.
* Geometry: drawn gate length, minimum width and the 6T cell footprint
  shrink linearly with the node (cell *area* shrinks quadratically).
* Mobility: mildly degraded at small nodes (``(node/65)^0.25``),
  reflecting higher vertical fields and channel doping.
* Wire resistance per metre grows as ``65/node`` (thinner wires); wire
  capacitance per metre is roughly constant across nodes and is held at
  the 65 nm value.
* Design-space bounds: each node carries its own ``(Vth, Tox)`` box.
  The Tox box keeps the paper's +-2 Å-around-nominal *proportions*
  (``tox_ref x 10/12`` to ``tox_ref x 14/12``); the Vth floor scales
  with the nominal threshold (``0.2 V x vth_ref/0.22``) and the Vth
  ceiling with the supply (``0.5 x vdd`` — the paper's "unlikely above
  half the supply" rule).  At 65 nm these reduce exactly to the paper's
  [0.2, 0.5] V x [10, 14] Å grid.

What is held fixed
------------------
Subthreshold swing, DIBL, body effect, the alpha-power index, the gate
tunnelling constants (the *exponential* Tox dependence already drives
the per-area gate leakage up as the oxide thins), junction capacitance
per width, and temperature.  These second-order parameters drift far
less than the first-order knobs above, and holding them fixed keeps the
65 nm node bit-identical to the seed ``bptm65()``.

``node_technology(65, style)`` returns exactly ``bptm65()`` for both
styles — same name, same fields — so every fingerprint, cached table
and experiment result from the single-node era is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Tuple

from repro.errors import TechnologyError
from repro.technology.bptm import Technology, bptm65

__all__ = [
    "NODES",
    "SCALING_STYLES",
    "NodeSpec",
    "node_spec",
    "node_technology",
]

#: Feature sizes (nm) of the family, largest first.
NODES: Tuple[int, ...] = (65, 45, 32, 22, 16, 11, 8)

#: Supported scaling styles.
SCALING_STYLES: Tuple[str, ...] = ("itrs", "cons")

# -- per-node scaling tables (65 nm == 1.0) --------------------------------
#
# Shapes follow the lumos 45 nm-anchored ITRS/conservative tables,
# re-anchored to 65 nm and lightly adapted so that the family's headline
# trends are strict: Vdd falls monotonically in both styles, and the
# ITRS nominal frequency dominates the conservative one at every node.

_VDD_SCALE: Dict[str, Dict[int, float]] = {
    "itrs": {65: 1.00, 45: 0.93, 32: 0.86, 22: 0.78, 16: 0.70,
             11: 0.63, 8: 0.58},
    "cons": {65: 1.00, 45: 0.95, 32: 0.88, 22: 0.84, 16: 0.82,
             11: 0.80, 8: 0.79},
}

#: Nominal-Vth scaling (shared by both styles, tracking ITRS HP logic).
_VTH_SCALE: Dict[int, float] = {
    65: 1.000, 45: 0.950, 32: 0.881, 22: 0.793, 16: 0.715,
    11: 0.646, 8: 0.588,
}

#: Nominal oxide thickness (Å) per node and style.
_TOX_REF_A: Dict[str, Dict[int, float]] = {
    "itrs": {65: 12.0, 45: 11.0, 32: 10.0, 22: 9.0, 16: 8.5,
             11: 8.0, 8: 7.5},
    "cons": {65: 12.0, 45: 11.5, 32: 10.8, 22: 10.2, 16: 9.8,
             11: 9.5, 8: 9.2},
}

#: Nominal core-frequency scaling vs 65 nm (NodeSpec metadata; the
#: physical delay of a given cache comes from the device model, not
#: from this table).
_FREQ_SCALE: Dict[str, Dict[int, float]] = {
    "itrs": {65: 1.00, 45: 1.35, 32: 1.50, 22: 2.80, 16: 3.90,
             11: 5.00, 8: 5.20},
    "cons": {65: 1.00, 45: 1.12, 32: 1.23, 22: 1.33, 16: 1.40,
             11: 1.46, 8: 1.50},
}

# The 65 nm anchor values the bound formulas are expressed against.
_ANCHOR = bptm65()


@dataclass(frozen=True)
class NodeSpec:
    """One (node, scaling style) point of the family.

    Carries the raw table entries plus metadata that does not belong on
    the :class:`Technology` instance (nominal frequency scaling).
    """

    node: int
    scaling_style: str
    vdd_scale: float
    vth_scale: float
    tox_ref_a: float
    freq_scale: float

    def technology(self) -> Technology:
        """Materialise this spec as a drop-in :class:`Technology`."""
        return node_technology(self.node, self.scaling_style)


def _check(node: int, scaling_style: str) -> None:
    if scaling_style not in SCALING_STYLES:
        raise TechnologyError(
            f"unknown scaling style {scaling_style!r}; expected one of "
            f"{', '.join(SCALING_STYLES)}"
        )
    if node not in NODES:
        raise TechnologyError(
            f"unknown technology node {node!r}; expected one of "
            f"{', '.join(str(n) for n in NODES)} (nm)"
        )


def node_spec(node: int, scaling_style: str = "itrs") -> NodeSpec:
    """The scaling-table entry for one node, or :class:`TechnologyError`."""
    _check(node, scaling_style)
    return NodeSpec(
        node=node,
        scaling_style=scaling_style,
        vdd_scale=_VDD_SCALE[scaling_style][node],
        vth_scale=_VTH_SCALE[node],
        tox_ref_a=_TOX_REF_A[scaling_style][node],
        freq_scale=_FREQ_SCALE[scaling_style][node],
    )


@lru_cache(maxsize=None)
def node_technology(node: int, scaling_style: str = "itrs") -> Technology:
    """A :class:`Technology` for ``node`` nm under ``scaling_style``.

    The result drops into the device -> circuit -> cache evaluation
    path unchanged.  ``node_technology(65, style)`` is bit-identical to
    :func:`~repro.technology.bptm.bptm65` for both styles (the scale
    factors are exactly 1.0 there), so 65 nm results never move.
    """
    spec = node_spec(node, scaling_style)
    base = _ANCHOR
    if node == 65:
        return base
    shrink = node / 65.0
    vdd = base.vdd * spec.vdd_scale
    vth_ref = base.vth_ref * spec.vth_scale
    tox_ref_a = spec.tox_ref_a
    return replace(
        base,
        name=f"bptm-{node}nm-{scaling_style}",
        vdd=vdd,
        lgate_drawn=base.lgate_drawn * shrink,
        tox_ref=tox_ref_a * 1e-10,
        vth_ref=vth_ref,
        wmin=base.wmin * shrink,
        mobility_n=base.mobility_n * shrink ** 0.25,
        mobility_p=base.mobility_p * shrink ** 0.25,
        wire_res_per_m=base.wire_res_per_m / shrink,
        cell_height_ref=base.cell_height_ref * shrink,
        cell_width_ref=base.cell_width_ref * shrink,
        vth_min=base.vth_min * (vth_ref / base.vth_ref),
        vth_max=base.vth_max * vdd / base.vdd,
        tox_min_a=tox_ref_a * (base.tox_min_a / 12.0),
        tox_max_a=tox_ref_a * (base.tox_max_a / 12.0),
    )
