"""Process-technology layer: BPTM-style 65 nm parameters and scaling rules.

The paper characterises Berkeley Predictive Technology Model (BPTM) files
for a 65 nm node over a (Vth, Tox) grid: Vth from 0.2 V to 0.5 V and Tox
from 10 Å to 14 Å.  This package provides:

* :class:`~repro.technology.bptm.Technology` — the frozen parameter set a
  device model is evaluated against (supply, mobility, DIBL coefficient,
  wire parasitics, …) with :func:`~repro.technology.bptm.bptm65` as the
  canonical instance;
* :mod:`~repro.technology.scaling` — the paper's Tox co-scaling rules:
  thicker oxide forces a longer drawn channel (to keep the gate in control
  against DIBL) and proportionally wider cell transistors (to keep the
  memory cell stable), which grows the cell in both dimensions;
* :mod:`~repro.technology.corners` — process/temperature corner handling;
* :mod:`~repro.technology.nodes` — the node-parameterised family
  (65/45/32/22/16/11/8 nm, ITRS vs conservative scaling styles), each
  node a drop-in :class:`~repro.technology.bptm.Technology` carrying its
  own node-correct (Vth, Tox) design-space bounds.
"""

from repro.technology.bptm import (
    Technology,
    bptm65,
    VTH_MIN,
    VTH_MAX,
    TOX_MIN_A,
    TOX_MAX_A,
)
from repro.technology.nodes import (
    NODES,
    SCALING_STYLES,
    NodeSpec,
    node_spec,
    node_technology,
)
from repro.technology.scaling import ToxScalingRule, ScaledGeometry
from repro.technology.corners import Corner, CornerName, apply_corner

__all__ = [
    "Technology",
    "bptm65",
    "VTH_MIN",
    "VTH_MAX",
    "TOX_MIN_A",
    "TOX_MAX_A",
    "NODES",
    "SCALING_STYLES",
    "NodeSpec",
    "node_spec",
    "node_technology",
    "ToxScalingRule",
    "ScaledGeometry",
    "Corner",
    "CornerName",
    "apply_corner",
]
