"""repro — reproduction of Bai et al., "Power-Performance Trade-Offs in
Nanometer-Scale Multi-Level Caches Considering Total Leakage" (DATE 2005).

The library is layered bottom-up:

* :mod:`repro.technology` — BPTM-style 65 nm node and Tox co-scaling;
* :mod:`repro.devices` — subthreshold / gate-tunnelling / drive models;
* :mod:`repro.circuits` — SRAM cell, sense amp, decoder, bus drivers;
* :mod:`repro.cache` — CACTI-style organisation and the four-component
  cache model (Section 3's structure);
* :mod:`repro.models` — the paper's fitted closed forms (Section 3);
* :mod:`repro.archsim` — trace-driven two-level cache simulation and
  synthetic SPEC2000/SPECWEB/TPC-C-like workloads (Section 5's inputs);
* :mod:`repro.energy` — system energy accounting (Figure 2's metric);
* :mod:`repro.optimize` — the Section 4/5 optimisers;
* :mod:`repro.experiments` — one runnable experiment per table/figure.

Quick start::

    from repro import CacheModel, CacheConfig, knobs

    model = CacheModel(CacheConfig(size_bytes=16 * 1024, name="L1"))
    point = model.uniform(knobs(0.35, 12))          # 0.35 V, 12 A
    print(point.access_time, point.leakage_power)
"""

from repro.technology.bptm import Technology, bptm65
from repro.technology.scaling import ToxScalingRule
from repro.cache.config import CacheConfig, l1_config, l2_config
from repro.cache.assignment import Assignment, Knobs, knobs, COMPONENT_NAMES
from repro.cache.cache_model import CacheModel, CacheEvaluation
from repro.models.analytical import FittedCacheModel, fit_cache_model
from repro.archsim.missmodel import MissRateModel, calibrated_miss_model
from repro.energy.system import MemorySystem
from repro.energy.dynamic import MainMemoryModel
from repro.optimize.schemes import Scheme
from repro.optimize.space import DesignSpace, default_space, coarse_space
from repro.optimize.single_cache import minimize_leakage
from repro.optimize.two_level import explore_l1_sizes, explore_l2_sizes
from repro.optimize.joint import JointDesign, optimize_memory_system
from repro.optimize.tuple_problem import (
    FIGURE2_BUDGETS,
    TupleBudget,
    solve_tuple_problem,
)

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "bptm65",
    "ToxScalingRule",
    "CacheConfig",
    "l1_config",
    "l2_config",
    "Assignment",
    "Knobs",
    "knobs",
    "COMPONENT_NAMES",
    "CacheModel",
    "CacheEvaluation",
    "FittedCacheModel",
    "fit_cache_model",
    "MissRateModel",
    "calibrated_miss_model",
    "MemorySystem",
    "MainMemoryModel",
    "Scheme",
    "DesignSpace",
    "default_space",
    "coarse_space",
    "minimize_leakage",
    "explore_l1_sizes",
    "explore_l2_sizes",
    "JointDesign",
    "optimize_memory_system",
    "FIGURE2_BUDGETS",
    "TupleBudget",
    "solve_tuple_problem",
    "__version__",
]
