"""E1 — Section 4 scheme comparison.

Minimises 16 KB-cache leakage under a sweep of access-time constraints for
each of the three Vth/Tox assignment schemes.  Checks the paper's ranking:
Scheme III is the worst performer, Scheme I the best, and Scheme II only
slightly behind Scheme I — making II the preferred (economically feasible)
choice.  Also verifies the structural observation that the optimisers
always give the memory cell array high Vth and thick Tox.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.errors import InfeasibleConstraintError
from repro.experiments.figure1 import figure1_model
from repro.experiments.report import ExperimentResult
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import component_tables, minimize_leakage
from repro.optimize.space import DesignSpace, default_space
from repro.technology.bptm import Technology

DEFAULT_TARGETS_PS = (700.0, 800.0, 900.0, 1100.0, 1400.0, 1800.0)

_SCHEMES = (Scheme.PER_COMPONENT, Scheme.CELL_VS_PERIPHERY, Scheme.UNIFORM)


def run_scheme_comparison(
    size_kb: int = 16,
    targets_ps: Sequence[float] = DEFAULT_TARGETS_PS,
    space: Optional[DesignSpace] = None,
    technology: Optional[Technology] = None,
) -> ExperimentResult:
    """Compare the three schemes over a delay-constraint sweep."""
    model = figure1_model(size_kb, technology)
    if space is None:
        space = default_space(technology=model.technology)
    tables = component_tables(model, space)

    rows = []
    ordering_holds = True
    ii_close_to_i = True
    array_conservative = True
    for target_ps in targets_ps:
        leakages = {}
        results = {}
        for scheme in _SCHEMES:
            try:
                result = minimize_leakage(
                    model, scheme, units.ps(target_ps), tables=tables
                )
                leakages[scheme] = result.leakage_power
                results[scheme] = result
            except InfeasibleConstraintError:
                leakages[scheme] = float("inf")
        row = [f"{target_ps:.0f}"]
        for scheme in _SCHEMES:
            leak = leakages[scheme]
            row.append("inf" if leak == float("inf") else f"{units.to_mw(leak):.4f}")
        if leakages[Scheme.PER_COMPONENT] < float("inf"):
            penalty_ii = (
                leakages[Scheme.CELL_VS_PERIPHERY]
                / leakages[Scheme.PER_COMPONENT]
                - 1.0
            )
            penalty_iii = (
                leakages[Scheme.UNIFORM] / leakages[Scheme.PER_COMPONENT] - 1.0
            )
            row.append(f"{100 * penalty_ii:.1f}%")
            row.append(f"{100 * penalty_iii:.1f}%")
            if not (
                leakages[Scheme.PER_COMPONENT]
                <= leakages[Scheme.CELL_VS_PERIPHERY]
                <= leakages[Scheme.UNIFORM]
            ):
                ordering_holds = False
            if penalty_ii > 0.60:
                ii_close_to_i = False
            for scheme in (Scheme.PER_COMPONENT, Scheme.CELL_VS_PERIPHERY):
                if scheme in results:
                    array_point = results[scheme].assignment.array
                    periphery_point = results[scheme].assignment["decoder"]
                    if not (
                        array_point.vth >= periphery_point.vth
                        and array_point.tox >= periphery_point.tox
                    ):
                        array_conservative = False
        else:
            row.extend(["-", "-"])
        rows.append(row)

    findings = [
        (
            "leakage ordering Scheme I <= II <= III holds at every "
            "feasible constraint"
            if ordering_holds
            else "UNEXPECTED: scheme ordering violated"
        ),
        (
            "Scheme II stays within tens of percent of Scheme I "
            "(the paper's 'only slightly behind')"
            if ii_close_to_i
            else "UNEXPECTED: Scheme II far from Scheme I"
        ),
        (
            "memory cell array always gets Vth/Tox at least as high as "
            "the periphery in Schemes I and II"
            if array_conservative
            else "UNEXPECTED: array assigned more aggressively than periphery"
        ),
    ]
    return ExperimentResult(
        experiment_id="E1",
        title=f"Section 4 scheme comparison ({size_kb} KB cache)",
        headers=[
            "T_max(ps)",
            "Scheme I (mW)",
            "Scheme II (mW)",
            "Scheme III (mW)",
            "II vs I",
            "III vs I",
        ],
        rows=rows,
        findings=findings,
    )
