"""Experiment registry and command-line runner.

Usage::

    python -m repro.experiments.runner            # run all experiments
    python -m repro.experiments.runner E2 E6      # run a subset
    python -m repro.experiments.runner --list     # list ids
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.experiments.report import ExperimentResult
from repro.experiments.scheme_comparison import run_scheme_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.l2_exploration import run_l2_exploration
from repro.experiments.l1_exploration import run_l1_exploration
from repro.experiments.figure2 import run_figure2
from repro.experiments.model_fit import run_model_fit


def _run_e4() -> ExperimentResult:
    return run_l2_exploration(split=True)


#: Experiment id -> zero-argument callable producing the result.
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": run_scheme_comparison,
    "E2": run_figure1,
    "E3": run_l2_exploration,
    "E4": _run_e4,
    "E5": run_l1_exploration,
    "E6": run_figure2,
    "E7": run_model_fit,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return runner()


def run_all() -> List[ExperimentResult]:
    """Run every registered experiment in id order."""
    return [run_experiment(experiment_id) for experiment_id in sorted(REGISTRY)]


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also write each experiment's figure as DIR/<id>.svg",
    )
    arguments = parser.parse_args(argv)
    if arguments.list:
        for experiment_id in sorted(REGISTRY):
            print(experiment_id)
        return 0
    ids = arguments.experiments or sorted(REGISTRY)
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id)
        print(result.render())
        if arguments.svg and result.series:
            import os

            from repro.experiments.svgplot import chart_from_series

            os.makedirs(arguments.svg, exist_ok=True)
            chart = chart_from_series(
                f"{result.experiment_id}: {result.title}",
                result.series,
                result.x_label,
                result.y_label,
            )
            path = os.path.join(arguments.svg, f"{experiment_id}.svg")
            chart.save(path)
            print(f"[figure written to {path}]")
        print(f"[{experiment_id} completed in {time.time() - start:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
