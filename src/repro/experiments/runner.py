"""Experiment registry and command-line runner.

Usage::

    python -m repro.experiments.runner            # run all experiments
    python -m repro.experiments.runner E2 E6      # run a subset
    python -m repro.experiments.runner --jobs 4   # run in 4 processes
    python -m repro.experiments.runner --list     # list ids
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.report import ExperimentResult
from repro.experiments.scheme_comparison import run_scheme_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.l2_exploration import run_l2_exploration
from repro.experiments.l1_exploration import run_l1_exploration
from repro.experiments.figure2 import run_figure2
from repro.experiments.model_fit import run_model_fit
from repro.experiments.node_sweep import run_figure1_nodes, run_figure2_nodes


def _run_e4() -> ExperimentResult:
    return run_l2_exploration(split=True)


#: Experiment id -> zero-argument callable producing the result.
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": run_scheme_comparison,
    "E2": run_figure1,
    "E3": run_l2_exploration,
    "E4": _run_e4,
    "E5": run_l1_exploration,
    "E6": run_figure2,
    "E7": run_model_fit,
    "E8": run_figure1_nodes,
    "E9": run_figure2_nodes,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        )
    return runner()


def run_all(jobs: int = 1) -> List[ExperimentResult]:
    """Run every registered experiment in id order."""
    return run_many(sorted(REGISTRY), jobs=jobs)


def _timed_run(experiment_id: str) -> Tuple[str, ExperimentResult, float]:
    """Worker: run one experiment and report its wall time (picklable)."""
    start = time.time()
    result = run_experiment(experiment_id)
    return experiment_id, result, time.time() - start


def _iter_timed(
    ids: List[str], jobs: int
) -> Iterator[Tuple[str, ExperimentResult, float]]:
    """Yield (id, result, seconds) in the order of ``ids``.

    ``jobs > 1`` fans the experiments out over worker processes;
    ``ProcessPoolExecutor.map`` preserves input order, so the output is
    deterministic regardless of which worker finishes first.
    """
    if jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {jobs}")
    for experiment_id in ids:
        if experiment_id not in REGISTRY:
            raise ReproError(
                f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
            )
    if jobs == 1 or len(ids) <= 1:
        for experiment_id in ids:
            yield _timed_run(experiment_id)
        return
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        yield from pool.map(_timed_run, ids)


def run_many(ids: Iterable[str], jobs: int = 1) -> List[ExperimentResult]:
    """Run the given experiments, optionally in parallel.

    Results come back in the order of ``ids`` whatever ``jobs`` is.
    """
    return [result for _, result, _ in _iter_timed(list(ids), jobs)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="also write each experiment's figure as DIR/<id>.svg",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N worker processes (default 1: in-process)",
    )
    arguments = parser.parse_args(argv)
    if arguments.list:
        for experiment_id in sorted(REGISTRY):
            print(experiment_id)
        return 0
    ids = arguments.experiments or sorted(REGISTRY)
    for experiment_id, result, seconds in _iter_timed(ids, arguments.jobs):
        print(result.render())
        if arguments.svg and result.series:
            import os

            from repro.experiments.svgplot import chart_from_series

            os.makedirs(arguments.svg, exist_ok=True)
            chart = chart_from_series(
                f"{result.experiment_id}: {result.title}",
                result.series,
                result.x_label,
                result.y_label,
            )
            path = os.path.join(arguments.svg, f"{experiment_id}.svg")
            chart.save(path)
            print(f"[figure written to {path}]")
        print(f"[{experiment_id} completed in {seconds:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
