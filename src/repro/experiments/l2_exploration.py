"""E3 / E4 — Section 5 L2-size explorations.

**E3 (single pair).** Fix a 16 KB L1 at its default knobs, sweep L2
capacity, and at an iso-AMAT budget find each capacity's leakage-optimal
single (Vth, Tox) pair.  The paper's findings: under a tight budget the
bigger L2 generally consumes less leakage (its lower miss rate buys knob
headroom), *but* the largest capacities lose — the sheer cell count of a
very large L2 outweighs its miss-rate benefit (interior optimum).

**E4 (split pairs).** Same sweep with independent (Vth, Tox) for the L2
cell array and its periphery.  Now the delay can be bought back in the
periphery alone, every capacity can park its array at the conservative
corner, and the smaller L2 (fewer leaking cells) wins — the abstract's
headline result.  The experiment also verifies that the optimiser sets
the core array much more conservatively than the periphery.

The iso-AMAT budget is self-calibrating: a multiplier on the fastest AMAT
achievable anywhere in the sweep (the paper picks fixed targets; a
multiplier keeps the experiment meaningful for any workload/technology).
The budget anchor always probes the reference 8-way shape, so sweeping
``l2_assocs`` (dense-surface miss curves from the profile store) only
adds candidate shapes without moving the budget.
"""

from __future__ import annotations

from typing import Optional, Sequence


from repro import units
from repro.archsim.missmodel import (
    REFERENCE_L2_ASSOC,
    MissRateModel,
    calibrated_miss_model,
    calibrated_miss_surface,
)
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.experiments.report import ExperimentResult
from repro.optimize.single_cache import enumerate_candidates
from repro.optimize.schemes import Scheme
from repro.optimize.space import DesignSpace, default_space
from repro.optimize.two_level import (
    default_l1_knobs,
    explore_l2_sizes,
)
from repro.technology.bptm import Technology, bptm65

DEFAULT_L2_SIZES_KB = (128, 256, 512, 1024, 2048, 4096)

#: Associativities swept alongside capacity (reference 8-way included so
#: the paper's shape stays in the comparison).
DEFAULT_L2_ASSOCS = (4, 8, 16)

#: Budget multipliers on the fastest achievable AMAT (see module docstring).
SINGLE_PAIR_BUDGET_FACTOR = 1.07
SPLIT_BUDGET_FACTOR = 1.13


def fastest_achievable_amat(
    miss_model: MissRateModel,
    l2_sizes_kb: Sequence[int],
    l1_size_kb: int = 16,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
    memory: MainMemoryModel = MainMemoryModel(),
) -> float:
    """Fastest AMAT (s) over all capacities with all-aggressive L2 knobs."""
    technology = technology if technology is not None else bptm65()
    if space is None:
        space = default_space(technology=technology)
    l1_model = CacheModel(l1_config(l1_size_kb), technology=technology)
    l1_time = l1_model.uniform(default_l1_knobs(technology)).access_time
    m1 = miss_model.l1_miss_rate(l1_model.config.size_bytes)
    best = float("inf")
    for size_kb in l2_sizes_kb:
        l2_model = CacheModel(l2_config(size_kb), technology=technology)
        m2 = miss_model.l2_local_miss_rate(l2_model.config.size_bytes)
        _, delays, _ = enumerate_candidates(l2_model, Scheme.UNIFORM, space)
        amat = l1_time + m1 * (delays.min() + m2 * memory.latency)
        best = min(best, float(amat))
    return best


def run_l2_exploration(
    workload: str = "spec2000",
    split: bool = False,
    l2_sizes_kb: Sequence[int] = DEFAULT_L2_SIZES_KB,
    l1_size_kb: int = 16,
    budget_factor: Optional[float] = None,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
    memory: MainMemoryModel = MainMemoryModel(),
    l2_assocs: Sequence[int] = DEFAULT_L2_ASSOCS,
) -> ExperimentResult:
    """Run E3 (``split=False``) or E4 (``split=True``)."""
    if tuple(l2_assocs) == (REFERENCE_L2_ASSOC,):
        miss_model = calibrated_miss_model(workload)
    else:
        miss_model = calibrated_miss_surface(workload)
    if budget_factor is None:
        budget_factor = (
            SPLIT_BUDGET_FACTOR if split else SINGLE_PAIR_BUDGET_FACTOR
        )
    fastest = fastest_achievable_amat(
        miss_model, l2_sizes_kb, l1_size_kb, technology, space, memory
    )
    budget = budget_factor * fastest
    points = explore_l2_sizes(
        miss_model,
        budget,
        l2_sizes_kb=l2_sizes_kb,
        l1_size_kb=l1_size_kb,
        split=split,
        technology=technology,
        space=space,
        memory=memory,
        l2_assocs=l2_assocs,
    )

    rows = []
    for point in points:
        label = "yes" if point.feasible else "NO"
        array_knobs = (
            point.assignment.array.label() if point.assignment else "-"
        )
        periph_knobs = (
            point.assignment["decoder"].label() if point.assignment else "-"
        )
        rows.append(
            [
                f"{point.size_kb:.0f}",
                f"{point.associativity}",
                f"{point.l2_local_miss_rate:.3f}",
                label,
                f"{units.to_ps(point.amat):.0f}",
                f"{units.to_mw(point.varied_leakage):.3f}"
                if point.feasible
                else "-",
                array_knobs,
                periph_knobs,
            ]
        )

    # "vs size" series: collapse the assoc axis to each capacity's best
    # (least L2 leakage among feasible shapes).
    series_x = []
    series_y = []
    for size_kb in l2_sizes_kb:
        candidates = [
            p
            for p in points
            if p.feasible and p.size_bytes == int(size_kb * 1024)
        ]
        if candidates:
            series_x.append(float(size_kb))
            series_y.append(
                units.to_mw(min(p.varied_leakage for p in candidates))
            )

    feasible = [p for p in points if p.feasible]
    findings = [
        f"AMAT budget = {budget_factor:.2f} x fastest achievable "
        f"({units.to_ps(budget):.0f} ps)"
    ]
    if feasible:
        best = min(feasible, key=lambda p: p.varied_leakage)
        largest_bytes = max(p.size_bytes for p in points)
        largest_feasible = [
            p for p in feasible if p.size_bytes == largest_bytes
        ]
        if split:
            smallest_feasible = min(feasible, key=lambda p: p.size_bytes)
            findings.append(
                "smallest feasible L2 wins with split pairs"
                if best.size_bytes == smallest_feasible.size_bytes
                else f"UNEXPECTED: optimum at {best.size_kb:.0f}K, "
                f"not the smallest"
            )
            conservative = all(
                p.assignment.array.vth >= p.assignment["decoder"].vth
                and p.assignment.array.tox >= p.assignment["decoder"].tox
                for p in feasible
            )
            findings.append(
                "core array always set more conservatively than periphery"
                if conservative
                else "UNEXPECTED: some array set below periphery"
            )
        else:
            findings.append(
                f"optimum at {best.size_kb:.0f}K "
                f"({units.to_mw(best.varied_leakage):.2f} mW)"
            )
            findings.append(
                "largest L2 is not the optimum (leakage outweighs "
                "miss-rate benefit)"
                if (not largest_feasible)
                or min(p.varied_leakage for p in largest_feasible)
                > best.varied_leakage
                else "UNEXPECTED: largest L2 is optimal"
            )
            smallest = min(feasible, key=lambda p: p.size_bytes)
            if best.size_bytes > smallest.size_bytes:
                findings.append(
                    "a bigger L2 beats the smallest feasible one "
                    "(miss-rate headroom buys conservative knobs)"
                )
        if len(set(l2_assocs)) > 1:
            findings.append(
                f"optimum shape: {best.size_kb:.0f}K "
                f"{best.associativity}-way"
            )
    else:
        findings.append("UNEXPECTED: no feasible capacity at this budget")

    return ExperimentResult(
        experiment_id="E4" if split else "E3",
        title=(
            f"Section 5 L2 exploration, "
            f"{'split core/periphery pairs' if split else 'single pair'} "
            f"({workload})"
        ),
        headers=[
            "L2 (KB)",
            "assoc",
            "m_L2",
            "feasible",
            "AMAT (ps)",
            "L2 leakage (mW)",
            "array knobs",
            "periph knobs",
        ],
        rows=rows,
        findings=findings,
        series={"L2 leakage vs size": (series_x, series_y)},
        x_label="L2 size (KB)",
        y_label="leakage (mW)",
    )
