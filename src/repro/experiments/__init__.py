"""Experiment harness: one module per table/figure of the paper.

Every experiment is a function returning an
:class:`~repro.experiments.report.ExperimentResult` (a table, optional
plot series, and a list of findings) and is registered in
:data:`~repro.experiments.runner.REGISTRY` under its DESIGN.md id:

====  ==========================================================
E1    Section 4 scheme comparison (Schemes I / II / III)
E2    Figure 1 — fixed-Vth vs fixed-Tox sweeps, 16 KB cache
E3    Section 5 L2-size exploration, one (Vth, Tox) pair per L2
E4    Section 5 L2 exploration with core/periphery split pairs
E5    Section 5 L1-size exploration
E6    Figure 2 — the (#Tox, #Vth) tuple problem
E7    Section 3 model-fit quality (implicit table)
====  ==========================================================

Run everything from the command line::

    python -m repro.experiments.runner            # all experiments
    python -m repro.experiments.runner E2 E6      # a subset
"""

from repro.experiments.report import ExperimentResult, format_table, render_series
from repro.experiments.runner import REGISTRY, run_experiment, run_all

__all__ = [
    "ExperimentResult",
    "format_table",
    "render_series",
    "REGISTRY",
    "run_experiment",
    "run_all",
]
