"""E2 — Figure 1: fixed-Vth vs fixed-Tox sweeps of a 16 KB cache.

Reproduces the four curves of the paper's Figure 1: leakage power versus
access time for a 16 KB cache with

* Tox fixed at 10 Å and at 14 Å while Vth sweeps 0.2-0.5 V, and
* Vth fixed at 0.2 V and at 0.4 V while Tox sweeps 10-14 Å,

all under a uniform (Scheme III) assignment, as in the paper's
sensitivity study.  The findings the paper reads off this figure:

1. leakage is more sensitive to Tox than to Vth (the Tox=10 Å curve never
   drops to the floor the Tox=14 Å curve reaches — gate tunnelling sets a
   leakage floor only Tox can move);
2. delay spans a wider range when Vth varies (Tox fixed) than when Tox
   varies (Vth fixed);
3. hence: set Tox conservatively thick and use Vth as the delay knob.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig
from repro.experiments.report import ExperimentResult
from repro.optimize.single_cache import fixed_knob_sweep
from repro.optimize.space import DesignSpace, default_space
from repro.technology.bptm import (
    TOX_MAX_A,
    TOX_MIN_A,
    VTH_MAX,
    VTH_MIN,
    Technology,
)

#: The fixed values the paper's four curves use (65 nm).
FIXED_TOX_CURVES = (10.0, 14.0)
FIXED_VTH_CURVES = (0.2, 0.4)


def fixed_curves(technology: Optional[Technology] = None):
    """The (fixed Tox, fixed Vth) curve values for one node's box.

    The paper fixes Tox at the two box edges and Vth at the floor and
    two-thirds up the range — exactly ``(10, 14) Å`` / ``(0.2, 0.4) V``
    inside the 65 nm box, the same relative positions inside a scaled
    node's own box.
    """
    if technology is None or (
        technology.vth_min,
        technology.vth_max,
        technology.tox_min_a,
        technology.tox_max_a,
    ) == (VTH_MIN, VTH_MAX, TOX_MIN_A, TOX_MAX_A):
        return FIXED_TOX_CURVES, FIXED_VTH_CURVES
    tox_curves = (technology.tox_min_a, technology.tox_max_a)
    vth_curves = (
        technology.vth_min,
        technology.vth_min
        + (technology.vth_max - technology.vth_min) * 2.0 / 3.0,
    )
    return tox_curves, vth_curves


def figure1_model(
    size_kb: int = 16, technology: Optional[Technology] = None
) -> CacheModel:
    """The 16 KB cache of Figure 1 (32 B blocks, 2-way)."""
    return CacheModel(
        CacheConfig(
            size_bytes=size_kb * 1024,
            block_bytes=32,
            associativity=2,
            name=f"L1-{size_kb}K",
        ),
        technology=technology,
    )


def run_figure1(
    size_kb: int = 16,
    space: Optional[DesignSpace] = None,
    technology: Optional[Technology] = None,
) -> ExperimentResult:
    """Generate the Figure 1 curves and check the paper's three findings."""
    model = figure1_model(size_kb, technology)
    if space is None:
        space = default_space(technology=model.technology)
    fixed_tox_curves, fixed_vth_curves = fixed_curves(model.technology)

    series = {}
    rows = []
    ranges = {}
    for tox_a in fixed_tox_curves:
        times, leaks, _ = fixed_knob_sweep(
            model, fixed_tox_angstrom=tox_a, space=space
        )
        name = f"Tox={tox_a:.0f}A"
        series[name] = (
            [units.to_ps(t) for t in times],
            [units.to_mw(p) for p in leaks],
        )
        ranges[name] = (times.min(), times.max(), leaks.min(), leaks.max())
    for vth in fixed_vth_curves:
        times, leaks, _ = fixed_knob_sweep(model, fixed_vth=vth, space=space)
        name = f"Vth={vth * 1000:.0f}mV"
        series[name] = (
            [units.to_ps(t) for t in times],
            [units.to_mw(p) for p in leaks],
        )
        ranges[name] = (times.min(), times.max(), leaks.min(), leaks.max())

    for name, (t_lo, t_hi, p_lo, p_hi) in ranges.items():
        rows.append(
            [
                name,
                f"{units.to_ps(t_lo):.0f}",
                f"{units.to_ps(t_hi):.0f}",
                f"{t_hi / t_lo:.2f}",
                f"{units.to_mw(p_lo):.3f}",
                f"{units.to_mw(p_hi):.3f}",
                f"{p_hi / p_lo:.1f}",
            ]
        )

    findings = []
    # Finding 1: Tox sets the leakage floor.
    thin_name = f"Tox={fixed_tox_curves[0]:.0f}A"
    thick_name = f"Tox={fixed_tox_curves[1]:.0f}A"
    floor_thin = ranges[thin_name][2]
    floor_thick = ranges[thick_name][2]
    findings.append(
        f"leakage floor at {thin_name} is "
        f"{floor_thin / floor_thick:.0f}x the {thick_name} floor "
        "(gate tunnelling is the floor; only Tox moves it)"
        if floor_thin > floor_thick
        else "UNEXPECTED: thin-oxide floor not above thick-oxide floor"
    )
    # Finding 2: delay range wider when Vth varies.
    vth_span = max(
        ranges[f"Tox={t:.0f}A"][1] - ranges[f"Tox={t:.0f}A"][0]
        for t in fixed_tox_curves
    )
    tox_span = max(
        ranges[f"Vth={v * 1000:.0f}mV"][1] - ranges[f"Vth={v * 1000:.0f}mV"][0]
        for v in fixed_vth_curves
    )
    findings.append(
        f"delay span varying Vth ({units.to_ps(vth_span):.0f} ps) "
        f"{'exceeds' if vth_span > tox_span else 'DOES NOT exceed'} "
        f"span varying Tox ({units.to_ps(tox_span):.0f} ps) "
        "-> Vth is the delay knob"
    )
    # Finding 3: max leakage ratio across Tox beats across Vth.
    tox_leak_ratio = max(
        ranges[f"Vth={v * 1000:.0f}mV"][3] / ranges[f"Vth={v * 1000:.0f}mV"][2]
        for v in fixed_vth_curves
    )
    vth_leak_ratio = max(
        ranges[f"Tox={t:.0f}A"][3] / ranges[f"Tox={t:.0f}A"][2]
        for t in fixed_tox_curves
    )
    findings.append(
        f"leakage ratio across Tox ({tox_leak_ratio:.0f}x) "
        f"{'exceeds' if tox_leak_ratio > vth_leak_ratio else 'DOES NOT exceed'} "
        f"ratio across Vth ({vth_leak_ratio:.0f}x) "
        "-> leakage is more sensitive to Tox"
    )

    return ExperimentResult(
        experiment_id="E2",
        title=f"Figure 1 - fixed Vth vs fixed Tox ({size_kb} KB cache)",
        headers=[
            "curve",
            "t_min(ps)",
            "t_max(ps)",
            "t ratio",
            "P_min(mW)",
            "P_max(mW)",
            "P ratio",
        ],
        rows=rows,
        findings=findings,
        series=series,
        x_label="access time (ps)",
        y_label="leakage (mW)",
    )
