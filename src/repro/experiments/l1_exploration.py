"""E5 — Section 5 L1-size exploration.

Fix the L2 (1 MB, conservative knobs), sweep the L1 from 4 K to 64 K, and
minimise total (L1 + L2) leakage under an iso-AMAT budget.  The paper's
reasoning: local L1 miss rates are already very low and barely vary from
4 K to 64 K, so nothing architectural is gained by a big L1 — while a
small L1 both leaks less (fewer cells) and is faster (shorter lines).
Hence the small L1 is the optimum.

With the profile store the sweep is no longer pinned to the paper's
2-way reference shape: ``l1_assocs`` sweeps associativity alongside
capacity (miss curves sliced from the workload's dense surface), and the
"vs size" series reports each capacity's best point over the assoc axis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import units
from repro.archsim.missmodel import (
    REFERENCE_L1_ASSOC,
    calibrated_miss_model,
    calibrated_miss_surface,
)
from repro.energy.dynamic import MainMemoryModel
from repro.experiments.report import ExperimentResult
from repro.optimize.space import DesignSpace
from repro.optimize.two_level import explore_l1_sizes
from repro.technology.bptm import Technology

DEFAULT_L1_SIZES_KB = (4, 8, 16, 32, 64)

#: Associativities swept alongside capacity (reference 2-way included so
#: the paper's shape stays in the comparison).
DEFAULT_L1_ASSOCS = (1, 2, 4)

#: Budget multiplier on the slowest per-capacity fastest AMAT, so every
#: capacity is feasible and the comparison is apples-to-apples.
BUDGET_FACTOR = 1.25


def run_l1_exploration(
    workload: str = "spec2000",
    l1_sizes_kb: Sequence[int] = DEFAULT_L1_SIZES_KB,
    l2_size_kb: int = 1024,
    budget_factor: float = BUDGET_FACTOR,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
    memory: MainMemoryModel = MainMemoryModel(),
    l1_assocs: Sequence[int] = DEFAULT_L1_ASSOCS,
) -> ExperimentResult:
    """Sweep L1 capacity (and associativity) under a fixed 1 MB L2."""
    if tuple(l1_assocs) == (REFERENCE_L1_ASSOC,):
        miss_model = calibrated_miss_model(workload)
    else:
        miss_model = calibrated_miss_surface(workload)
    # Probe pass at an unbounded budget: the optimiser then picks each
    # capacity's least-leaky (slowest) point, whose AMAT anchors a taut
    # but attainable budget for the real pass.
    probe = explore_l1_sizes(
        miss_model,
        amat_budget=float("inf"),
        l1_sizes_kb=l1_sizes_kb,
        l2_size_kb=l2_size_kb,
        technology=technology,
        space=space,
        memory=memory,
        l1_assocs=l1_assocs,
    )
    budget = budget_factor * min(point.amat for point in probe)
    points = explore_l1_sizes(
        miss_model,
        amat_budget=budget,
        l1_sizes_kb=l1_sizes_kb,
        l2_size_kb=l2_size_kb,
        technology=technology,
        space=space,
        memory=memory,
        l1_assocs=l1_assocs,
    )

    rows = []
    for point in points:
        rows.append(
            [
                f"{point.size_kb:.0f}",
                f"{point.associativity}",
                f"{point.l1_miss_rate:.4f}",
                "yes" if point.feasible else "NO",
                f"{units.to_ps(point.amat):.0f}",
                f"{units.to_mw(point.varied_leakage):.4f}"
                if point.feasible
                else "-",
                f"{units.to_mw(point.total_leakage):.3f}"
                if point.feasible
                else "-",
            ]
        )

    # "vs size" series: collapse the assoc axis to each capacity's best
    # (least total leakage among feasible shapes).
    series_x, series_y = [], []
    for size_kb in l1_sizes_kb:
        candidates = [
            p
            for p in points
            if p.feasible and p.size_bytes == int(size_kb * 1024)
        ]
        if candidates:
            series_x.append(float(size_kb))
            series_y.append(
                units.to_mw(min(p.total_leakage for p in candidates))
            )

    feasible = [p for p in points if p.feasible]
    findings = [
        f"AMAT budget {units.to_ps(budget):.0f} ps "
        f"({budget_factor:.2f} x best achievable)"
    ]
    miss_rates = [p.l1_miss_rate for p in points]
    if miss_rates:
        spread = max(miss_rates) - min(miss_rates)
        findings.append(
            f"L1 local miss rates span only "
            f"{100 * spread:.2f} percentage points from "
            f"{min(l1_sizes_kb)}K to {max(l1_sizes_kb)}K "
            "(the paper's flatness premise)"
        )
    if feasible:
        best = min(feasible, key=lambda p: p.total_leakage)
        smallest = min(feasible, key=lambda p: p.size_bytes)
        findings.append(
            "smallest feasible L1 minimises total leakage"
            if best.size_bytes == smallest.size_bytes
            else f"UNEXPECTED: optimum at {best.size_kb:.0f}K"
        )
        if len(set(l1_assocs)) > 1:
            findings.append(
                f"optimum shape: {best.size_kb:.0f}K "
                f"{best.associativity}-way"
            )
    return ExperimentResult(
        experiment_id="E5",
        title=f"Section 5 L1 exploration ({workload}, L2={l2_size_kb}K fixed)",
        headers=[
            "L1 (KB)",
            "assoc",
            "m_L1",
            "feasible",
            "AMAT (ps)",
            "L1 leakage (mW)",
            "total leakage (mW)",
        ],
        rows=rows,
        findings=findings,
        series={"total leakage vs L1 size": (series_x, series_y)},
        x_label="L1 size (KB)",
        y_label="total leakage (mW)",
    )
