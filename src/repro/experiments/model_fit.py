"""E7 — Section 3 model-fit quality (the paper's implicit validity table).

The whole optimisation edifice of the paper rests on two fitted closed
forms per cache component.  This experiment characterises a cache over
the full design grid, fits both forms (plus the dynamic-energy form), and
tabulates the fit quality — R^2 in linear and log space, worst-case
relative error — together with the fitted exponents, whose physical
values are themselves a consistency check:

* the leakage Vth exponent should match the device's subthreshold slope
  (|a1| ~ ln(10)/S, about 26/V for ~90 mV/dec);
* the leakage Tox exponent should match gate-tunnelling sensitivity
  (~0.5 decades/Å);
* the delay Vth exponent k3 should be small and positive ("exponential
  growth with very small exponents").
"""

from __future__ import annotations

import math
from typing import Optional

from repro.experiments.figure1 import figure1_model
from repro.experiments.report import ExperimentResult
from repro.models.analytical import fit_cache_model
from repro.optimize.space import DesignSpace
from repro.technology.bptm import Technology
from repro.devices.subthreshold import subthreshold_swing
from repro.technology.bptm import bptm65


def run_model_fit(
    size_kb: int = 16,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
) -> ExperimentResult:
    """Fit the Section 3 forms to every component and tabulate quality."""
    technology = technology if technology is not None else bptm65()
    model = figure1_model(size_kb, technology)
    vths = toxes = None
    if space is not None:
        vths = space.vth_values
        toxes = space.tox_values_angstrom
    fitted = fit_cache_model(model, vths=vths, toxes_angstrom=toxes)

    rows = []
    worst_r2 = 1.0
    for name, component in fitted.components.items():
        leakage = component.leakage_report
        delay = component.delay_report
        rows.append(
            [
                name,
                f"{leakage.r_squared:.4f}",
                f"{leakage.log_r_squared:.4f}",
                f"{component.leakage_form.a1_exp:.1f}",
                f"{component.leakage_form.a2_exp:.2f}",
                f"{delay.r_squared:.4f}",
                f"{component.delay_form.k3:.2f}",
                f"{component.energy_report.r_squared:.4f}",
            ]
        )
        worst_r2 = min(worst_r2, leakage.r_squared, delay.r_squared)

    device_a1 = -math.log(10.0) / subthreshold_swing(technology)
    sample = next(iter(fitted.components.values()))
    findings = [
        f"worst fit R^2 over all components/forms: {worst_r2:.4f}"
        + (" (>= 0.98: forms explain the substrate)" if worst_r2 >= 0.98 else
           " UNEXPECTED: a form fits poorly"),
        f"fitted leakage Vth exponent {sample.leakage_form.a1_exp:.1f}/V vs "
        f"device subthreshold slope prediction {device_a1:.1f}/V",
        f"fitted leakage Tox exponent "
        f"{sample.leakage_form.gate_decades_per_angstrom:.2f} decades/A "
        "(physical tunnelling sensitivity is ~0.4-0.6)",
        f"delay Vth exponent k3 = {sample.delay_form.k3:.2f}/V is "
        + ("small and positive, as the paper observes"
           if 0 < sample.delay_form.k3 < 6 else "UNEXPECTED"),
    ]
    return ExperimentResult(
        experiment_id="E7",
        title=f"Section 3 model-fit quality ({size_kb} KB cache)",
        headers=[
            "component",
            "leak R2",
            "leak logR2",
            "a1 (1/V)",
            "a2 (1/A)",
            "delay R2",
            "k3 (1/V)",
            "energy R2",
        ],
        rows=rows,
        findings=findings,
    )
