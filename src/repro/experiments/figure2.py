"""E6 — Figure 2: the (Tox, Vth) tuple problem.

Solves the process-budget problem of Section 5 for the five budgets the
paper plots and reports each budget's total-energy-vs-AMAT Pareto curve
plus the achievable energy at a set of common AMAT checkpoints.  The
paper's claims, each checked as a finding:

1. the best curves are the three-value budgets (2 Tox + 3 Vth in the
   paper; our substrate puts 3 Tox + 2 Vth statistically level with it —
   within ~1.5 % — which we report honestly);
2. dual Tox + dual Vth is almost indistinguishable from the best
   ("in general a process with dual Tox and dual Vth is sufficient");
3. 1 Tox + 2 Vth outperforms 2 Tox + 1 Vth — Vth is the more effective
   knob (the Section 4 conclusion carried to the system level).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro import units
from repro.archsim.missmodel import calibrated_miss_model
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.experiments.report import ExperimentResult
from repro.optimize.space import DesignSpace, coarse_space
from repro.optimize.tuple_problem import (
    FIGURE2_BUDGETS,
    TupleBudget,
    TupleCurve,
    solve_tuple_problem,
)
from repro.technology.bptm import TOX_MAX_A, TOX_MIN_A, VTH_MAX, VTH_MIN
from repro.technology.bptm import Technology


def fast_space(technology: Optional[Technology] = None) -> DesignSpace:
    """A trimmed grid (5 Vth x 3 Tox) for quick tuple-problem runs.

    The full :func:`~repro.optimize.space.coarse_space` enumeration is
    exact but takes minutes; this grid preserves every ordering finding
    and runs in seconds.  With a ``technology`` the grid spans that
    node's own design box.
    """
    if technology is None:
        vth_min, vth_max = VTH_MIN, VTH_MAX
        tox_min_a, tox_max_a = TOX_MIN_A, TOX_MAX_A
    else:
        vth_min, vth_max = technology.vth_min, technology.vth_max
        tox_min_a, tox_max_a = technology.tox_min_a, technology.tox_max_a
    return DesignSpace(
        vth_values=tuple(np.linspace(vth_min, vth_max, 5)),
        tox_values_angstrom=tuple(np.linspace(tox_min_a, tox_max_a, 3)),
        vth_min=vth_min,
        vth_max=vth_max,
        tox_min_a=tox_min_a,
        tox_max_a=tox_max_a,
    )


def run_figure2(
    workload: str = "spec2000",
    l1_size_kb: int = 16,
    l2_size_kb: int = 1024,
    budgets: Sequence[TupleBudget] = FIGURE2_BUDGETS,
    fast: bool = True,
    space: Optional[DesignSpace] = None,
    technology: Optional[Technology] = None,
    memory: MainMemoryModel = MainMemoryModel(),
) -> ExperimentResult:
    """Solve the tuple problem and check the Figure 2 orderings.

    ``fast=True`` (default) uses the trimmed grid; pass ``fast=False``
    for the full coarse grid (minutes).
    """
    miss_model = calibrated_miss_model(workload)
    l1_model = CacheModel(l1_config(l1_size_kb), technology=technology)
    l2_model = CacheModel(l2_config(l2_size_kb), technology=technology)
    if space is None:
        space = (
            fast_space(l1_model.technology)
            if fast
            else coarse_space(technology=l1_model.technology)
        )
    curves: Dict[TupleBudget, TupleCurve] = solve_tuple_problem(
        l1_model, l2_model, miss_model, budgets=budgets, space=space,
        memory=memory,
    )

    # Common AMAT checkpoints spanning the overlap of all curves.
    slowest_start = max(curve.amats[0] for curve in curves.values())
    earliest_end = max(curve.amats[-1] for curve in curves.values())
    checkpoints = np.linspace(slowest_start * 1.02, earliest_end, 6)

    rows = []
    series = {}
    for budget, curve in curves.items():
        row = [budget.label]
        for checkpoint in checkpoints:
            energy = curve.energy_at(float(checkpoint))
            row.append(
                "-" if energy == float("inf") else f"{units.to_pj(energy):.1f}"
            )
        rows.append(row)
        series[budget.label] = (
            [units.to_ps(a) for a in curve.amats],
            [units.to_pj(e) for e in curve.energies],
        )

    def energy(n_tox: int, n_vth: int, checkpoint: float) -> float:
        return curves[TupleBudget(n_tox=n_tox, n_vth=n_vth)].energy_at(
            checkpoint
        )

    reference = float(checkpoints[-1])
    findings = []
    best_triple = min(energy(2, 3, reference), energy(3, 2, reference))
    findings.append(
        "a three-value budget is the best scheme "
        f"(2T+3V={units.to_pj(energy(2, 3, reference)):.1f} pJ, "
        f"3T+2V={units.to_pj(energy(3, 2, reference)):.1f} pJ)"
        if best_triple <= energy(2, 2, reference) + 1e-18
        else "UNEXPECTED: dual/dual beats the three-value budgets"
    )
    dual_gap = energy(2, 2, reference) / energy(2, 3, reference) - 1.0
    findings.append(
        f"2 Tox + 2 Vth is within {100 * dual_gap:.1f}% of 2 Tox + 3 Vth "
        "(dual/dual is sufficient)"
        if dual_gap < 0.05
        else f"UNEXPECTED: dual/dual {100 * dual_gap:.1f}% behind 2T+3V"
    )
    vth_wins = energy(1, 2, reference) < energy(2, 1, reference)
    findings.append(
        "1 Tox + 2 Vth outperforms 2 Tox + 1 Vth (Vth is the better knob)"
        if vth_wins
        else "UNEXPECTED: 2 Tox + 1 Vth beats 1 Tox + 2 Vth"
    )

    headers = ["budget"] + [
        f"E@{units.to_ps(c):.0f}ps (pJ)" for c in checkpoints
    ]
    return ExperimentResult(
        experiment_id="E6",
        title=f"Figure 2 - (Tox, Vth) tuple problem ({workload})",
        headers=headers,
        rows=rows,
        findings=findings,
        series=series,
        x_label="AMAT (ps)",
        y_label="total energy (pJ)",
    )
