"""E8/E9 — Figures 1 and 2 regenerated as technology-node sweeps.

The paper's headline prescription — set Tox conservatively thick and use
Vth as the delay knob — is read off Figure 1 (component level) and
Figure 2 (system level) at a single node, BPTM 65 nm.  These experiments
rerun both figures at every node of the scaled family
(:mod:`repro.technology.nodes`, 65 → 8 nm) under both scaling styles and
ask whether the prescription *survives scaling*, where gate tunnelling
explodes as the oxide thins and the Vth box loses headroom against the
falling supply.

* **E8** replays the Figure 1 sensitivity study per node: the delay span
  available by tuning Vth (at thick Tox) versus by tuning Tox (at the
  Vth floor), and the leakage ratio each knob commands, plus a per-node
  *fitted* analytical model (:func:`repro.models.analytical
  .fit_cache_model`) whose exponents corroborate the structural sweeps
  — the leakage-Vth exponent ``a1`` tracks subthreshold sensitivity and
  the gate decades/Å track tunnelling sensitivity at each node.
* **E9** resolves the (Tox, Vth) tuple problem of Figure 2 per node and
  checks the ordering claims (three-value budgets best, dual/dual
  sufficient, 1 Tox + 2 Vth beats 2 Tox + 1 Vth) at every node.

Both experiments assert the 65 nm slice is *bit-identical* to the plain
single-node E2/E6 runs — ``node_technology(65, style)`` is exactly the
anchor ``bptm65()``, so the node sweep is a strict superset of the
original study, not a reinterpretation of it.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro import units
from repro.archsim.missmodel import calibrated_miss_model
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.experiments.figure1 import figure1_model, fixed_curves, run_figure1
from repro.experiments.figure2 import fast_space, run_figure2
from repro.experiments.report import ExperimentResult
from repro.models.analytical import fit_cache_model
from repro.optimize.single_cache import fixed_knob_sweep
from repro.optimize.space import default_space
from repro.optimize.tuple_problem import TupleBudget, solve_tuple_problem
from repro.technology.nodes import NODES, SCALING_STYLES, node_technology

#: Nodes strictly below the 22 nm pivot the acceptance question names.
_DEEP_NODES = tuple(node for node in NODES if node < 22)


def _series_equal(a: dict, b: dict) -> bool:
    """True when two ExperimentResult series dicts match bit-for-bit."""
    if set(a) != set(b):
        return False
    return all(
        list(a[name][0]) == list(b[name][0])
        and list(a[name][1]) == list(b[name][1])
        for name in a
    )


def run_figure1_nodes(
    size_kb: int = 16,
    nodes: Sequence[int] = NODES,
    styles: Sequence[str] = SCALING_STYLES,
) -> ExperimentResult:
    """E8: the Figure 1 sensitivity study swept across the node family."""
    anchor = run_figure1(size_kb)
    anchor_identical = all(
        _series_equal(
            anchor.series,
            run_figure1(size_kb, technology=node_technology(65, style)).series,
        )
        for style in styles
    )

    rows = []
    series = {}
    # Per (style, node): does Vth keep the wider delay span, does Tox
    # keep the bigger leakage lever, and what do the fitted forms say?
    verdicts = {}
    for style in styles:
        floors_mw = []
        span_ratios = []
        for node in nodes:
            technology = node_technology(node, style)
            model = figure1_model(size_kb, technology)
            space = default_space(technology=technology)
            tox_curves, vth_curves = fixed_curves(technology)

            # The four Figure 1 curves at this node: Vth sweeps at the
            # two fixed oxides, Tox sweeps at the two fixed thresholds.
            vth_sweeps = [
                fixed_knob_sweep(model, fixed_tox_angstrom=tox_a, space=space)
                for tox_a in tox_curves
            ]
            tox_sweeps = [
                fixed_knob_sweep(model, fixed_vth=vth, space=space)
                for vth in vth_curves
            ]

            # E2's findings, recomputed per node: the widest delay span
            # and the biggest leakage ratio each knob commands across
            # *both* of its curves (at high fixed Vth the subthreshold
            # term is quenched, so the Tox curve there exposes the full
            # gate-tunnelling leverage).
            vth_delay_span = max(
                float(times.max() - times.min()) for times, _, _ in vth_sweeps
            )
            tox_delay_span = max(
                float(times.max() - times.min()) for times, _, _ in tox_sweeps
            )
            vth_leak_ratio = max(
                float(leaks.max() / leaks.min()) for _, leaks, _ in vth_sweeps
            )
            tox_leak_ratio = max(
                float(leaks.max() / leaks.min()) for _, leaks, _ in tox_sweeps
            )
            leaks_v = vth_sweeps[1][1]  # thick-oxide Vth curve
            vth_is_delay_knob = vth_delay_span > tox_delay_span
            tox_is_leak_lever = tox_leak_ratio > vth_leak_ratio
            verdicts[(style, node)] = (vth_is_delay_knob, tox_is_leak_lever)

            fitted = fit_cache_model(
                model,
                vths=space.vth_values,
                toxes_angstrom=space.tox_values_angstrom,
            )
            sample = next(iter(fitted.components.values()))

            span_ratio = vth_delay_span / tox_delay_span
            floors_mw.append(units.to_mw(float(leaks_v.min())))
            span_ratios.append(span_ratio)
            rows.append(
                [
                    style,
                    node,
                    f"{technology.vdd:.2f}",
                    f"{span_ratio:.2f}",
                    f"{tox_leak_ratio / vth_leak_ratio:.2f}",
                    f"{sample.leakage_form.a1_exp:.1f}",
                    f"{sample.leakage_form.gate_decades_per_angstrom:.2f}",
                    f"{sample.delay_form.k3:.2f}",
                    f"{fitted.worst_fit_r_squared():.3f}",
                    "Vth-knob"
                    if vth_is_delay_knob and tox_is_leak_lever
                    else "INVERTED",
                ]
            )
        series[f"{style}: leakage floor (mW)"] = (list(nodes), floors_mw)
        series[f"{style}: Vth/Tox delay-span ratio"] = (
            list(nodes),
            span_ratios,
        )

    findings = [
        "65 nm slice is bit-identical to the single-node E2 run"
        if anchor_identical
        else "UNEXPECTED: 65 nm slice differs from the single-node E2 run"
    ]
    deep = [
        (style, node)
        for style in styles
        for node in nodes
        if node in _DEEP_NODES
    ]
    if deep:
        delay_holds = all(verdicts[key][0] for key in deep)
        leak_broken = [key for key in deep if not verdicts[key][1]]
        if delay_holds and not leak_broken:
            findings.append(
                "'fix Tox thick, tune Vth' SURVIVES below 22 nm: Vth still "
                "commands the wider delay span and Tox the bigger leakage "
                "ratio at every deep node in both styles"
            )
        elif delay_holds:
            findings.append(
                "'fix Tox thick, tune Vth' HALF-SURVIVES below 22 nm: Vth "
                "keeps the wider delay span everywhere (tune Vth stands), "
                "but Tox loses leakage dominance at "
                + ", ".join(f"{n} nm ({s})" for s, n in leak_broken)
                + " — the scaled Tox box is too narrow for tunnelling to "
                "outswing the subthreshold lever of the Vth box"
            )
        else:
            broken = [key for key in deep if not all(verdicts[key])]
            findings.append(
                "'fix Tox thick, tune Vth' BREAKS below 22 nm at "
                + ", ".join(f"{n} nm ({s})" for s, n in broken)
            )
    return ExperimentResult(
        experiment_id="E8",
        title=f"Figure 1 node sweep - {size_kb} KB cache, 65-8 nm",
        headers=[
            "style",
            "node",
            "Vdd(V)",
            "dT(Vth)/dT(Tox)",
            "Pratio Tox/Vth",
            "fit a1(/V)",
            "fit dec/A",
            "fit k3",
            "fit R2",
            "verdict",
        ],
        rows=rows,
        findings=findings,
        series=series,
        x_label="node (nm)",
        y_label="leakage floor (mW) / span ratio",
    )


#: The ordering-relevant budgets of Figure 2.
_E9_BUDGETS = (
    TupleBudget(n_tox=1, n_vth=2),
    TupleBudget(n_tox=2, n_vth=1),
    TupleBudget(n_tox=2, n_vth=2),
    TupleBudget(n_tox=2, n_vth=3),
)


def run_figure2_nodes(
    workload: str = "spec2000",
    l1_size_kb: int = 16,
    l2_size_kb: int = 1024,
    nodes: Sequence[int] = NODES,
    styles: Sequence[str] = SCALING_STYLES,
) -> ExperimentResult:
    """E9: the Figure 2 tuple problem resolved at every node."""
    anchor = run_figure2(workload, l1_size_kb, l2_size_kb)
    anchor_identical = all(
        _series_equal(
            anchor.series,
            run_figure2(
                workload,
                l1_size_kb,
                l2_size_kb,
                technology=node_technology(65, style),
            ).series,
        )
        for style in styles
    )

    miss_model = calibrated_miss_model(workload)
    rows = []
    series = {}
    vth_verdicts = {}
    for style in styles:
        best_energies_pj = []
        for node in nodes:
            technology = node_technology(node, style)
            l1_model = CacheModel(
                l1_config(l1_size_kb), technology=technology
            )
            l2_model = CacheModel(
                l2_config(l2_size_kb), technology=technology
            )
            curves = solve_tuple_problem(
                l1_model,
                l2_model,
                miss_model,
                budgets=_E9_BUDGETS,
                space=fast_space(technology),
            )
            # The laxest AMAT every curve reaches: energy_at() there is
            # each budget's floor, the same reference E6 reads off.
            reference = max(
                float(curve.amats[-1]) for curve in curves.values()
            )

            def energy(n_tox: int, n_vth: int) -> float:
                return curves[
                    TupleBudget(n_tox=n_tox, n_vth=n_vth)
                ].energy_at(reference)

            vth_wins = energy(1, 2) < energy(2, 1)
            dual_gap = energy(2, 2) / energy(2, 3) - 1.0
            vth_verdicts[(style, node)] = vth_wins
            best_energies_pj.append(units.to_pj(energy(2, 3)))
            rows.append(
                [
                    style,
                    node,
                    f"{units.to_pj(energy(1, 2)):.1f}",
                    f"{units.to_pj(energy(2, 1)):.1f}",
                    f"{units.to_pj(energy(2, 2)):.1f}",
                    f"{units.to_pj(energy(2, 3)):.1f}",
                    f"{100 * dual_gap:.1f}%",
                    "Vth" if vth_wins else "Tox",
                ]
            )
        series[f"{style}: E(2T+3V) floor (pJ)"] = (
            list(nodes),
            best_energies_pj,
        )

    findings = [
        "65 nm slice is bit-identical to the single-node E6 run"
        if anchor_identical
        else "UNEXPECTED: 65 nm slice differs from the single-node E6 run"
    ]
    deep = [
        (style, node)
        for style in styles
        for node in nodes
        if node in _DEEP_NODES
    ]
    if deep and all(vth_verdicts[key] for key in deep):
        findings.append(
            "system level agrees below 22 nm: 1 Tox + 2 Vth still beats "
            "2 Tox + 1 Vth at every deep node in both styles"
        )
    elif deep:
        broken = [key for key in deep if not vth_verdicts[key]]
        findings.append(
            "system-level ordering FLIPS below 22 nm at "
            + ", ".join(f"{n} nm ({s})" for s, n in broken)
            + ": extra Tox values beat extra Vth values there"
        )
    return ExperimentResult(
        experiment_id="E9",
        title=f"Figure 2 node sweep - tuple problem ({workload}), 65-8 nm",
        headers=[
            "style",
            "node",
            "E(1T+2V)",
            "E(2T+1V)",
            "E(2T+2V)",
            "E(2T+3V)",
            "dual gap",
            "better knob",
        ],
        rows=rows,
        findings=findings,
        series=series,
        x_label="node (nm)",
        y_label="energy floor (pJ)",
    )
