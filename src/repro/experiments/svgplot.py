"""Minimal dependency-free SVG line charts.

The reproduction environment has no plotting stack, but "regenerate
Figure 1 / Figure 2" should still mean producing an actual figure.  This
module renders named (x, y) series — the
:attr:`~repro.experiments.report.ExperimentResult.series` payload — as a
self-contained SVG: axes, ticks, polyline per series, legend.  It is a
chart writer, not a charting library: one layout, sized for the paper's
two figures.

Usage::

    python -m repro.experiments.runner --svg out/   # one .svg per figure
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: Canvas layout (px).
WIDTH = 640
HEIGHT = 420
MARGIN_LEFT = 70
MARGIN_RIGHT = 160
MARGIN_TOP = 30
MARGIN_BOTTOM = 50

#: Colour cycle (colour-blind-safe Okabe-Ito subset).
COLORS = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")


def _nice_ticks(low: float, high: float, target: int = 6) -> List[float]:
    """Return round-numbered tick positions covering [low, high]."""
    if not (math.isfinite(low) and math.isfinite(high)):
        raise ReproError(f"non-finite axis range: [{low}, {high}]")
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiplier in (1, 2, 2.5, 5, 10):
        step = multiplier * magnitude
        if span / step <= target:
            break
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + 0.5 * step:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


class SvgLineChart:
    """One chart: add series, then render to an SVG string."""

    def __init__(self, title: str, x_label: str, y_label: str) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series: List[Tuple[str, Sequence[float], Sequence[float]]] = []

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> None:
        if len(xs) != len(ys):
            raise ReproError(
                f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values"
            )
        if not xs:
            raise ReproError(f"series {name!r} is empty")
        self._series.append((name, list(xs), list(ys)))

    # -- rendering --------------------------------------------------------

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for _, series_x, _ in self._series for x in series_x]
        ys = [y for _, _, series_y in self._series for y in series_y]
        return min(xs), max(xs), min(ys), max(ys)

    def render(self) -> str:
        """Return the chart as a complete SVG document string."""
        if not self._series:
            raise ReproError("chart has no series")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        x_ticks = _nice_ticks(x_lo, x_hi)
        y_ticks = _nice_ticks(min(y_lo, 0.0) if y_lo > 0 else y_lo, y_hi)
        x_lo, x_hi = min(x_ticks[0], x_lo), max(x_ticks[-1], x_hi)
        y_lo, y_hi = min(y_ticks[0], y_lo), max(y_ticks[-1], y_hi)

        plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
        plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

        def px(x: float) -> float:
            return MARGIN_LEFT + plot_w * (x - x_lo) / (x_hi - x_lo)

        def py(y: float) -> float:
            return MARGIN_TOP + plot_h * (1.0 - (y - y_lo) / (y_hi - y_lo))

        parts: List[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
            f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">'
        )
        parts.append(
            f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT}" y="18" font-family="sans-serif" '
            f'font-size="14" font-weight="bold">{self.title}</text>'
        )
        # Axes frame.
        parts.append(
            f'<rect x="{MARGIN_LEFT}" y="{MARGIN_TOP}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#333"/>'
        )
        # Grid + ticks.
        for tick in x_ticks:
            if not x_lo <= tick <= x_hi:
                continue
            x = px(tick)
            parts.append(
                f'<line x1="{x:.1f}" y1="{MARGIN_TOP}" x2="{x:.1f}" '
                f'y2="{MARGIN_TOP + plot_h}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{MARGIN_TOP + plot_h + 16}" '
                f'font-family="sans-serif" font-size="11" '
                f'text-anchor="middle">{_format_tick(tick)}</text>'
            )
        for tick in y_ticks:
            if not y_lo <= tick <= y_hi:
                continue
            y = py(tick)
            parts.append(
                f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
                f'x2="{MARGIN_LEFT + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
            )
            parts.append(
                f'<text x="{MARGIN_LEFT - 6}" y="{y + 4:.1f}" '
                f'font-family="sans-serif" font-size="11" '
                f'text-anchor="end">{_format_tick(tick)}</text>'
            )
        # Axis labels.
        parts.append(
            f'<text x="{MARGIN_LEFT + plot_w / 2:.0f}" y="{HEIGHT - 12}" '
            f'font-family="sans-serif" font-size="12" '
            f'text-anchor="middle">{self.x_label}</text>'
        )
        parts.append(
            f'<text x="16" y="{MARGIN_TOP + plot_h / 2:.0f}" '
            f'font-family="sans-serif" font-size="12" text-anchor="middle" '
            f'transform="rotate(-90 16 {MARGIN_TOP + plot_h / 2:.0f})">'
            f"{self.y_label}</text>"
        )
        # Series.
        for index, (name, xs, ys) in enumerate(self._series):
            color = COLORS[index % len(COLORS)]
            points = " ".join(
                f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="1.8"/>'
            )
            for x, y in zip(xs, ys):
                parts.append(
                    f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.4" '
                    f'fill="{color}"/>'
                )
            legend_y = MARGIN_TOP + 14 + 18 * index
            legend_x = MARGIN_LEFT + plot_w + 12
            parts.append(
                f'<line x1="{legend_x}" y1="{legend_y - 4}" '
                f'x2="{legend_x + 22}" y2="{legend_y - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{legend_x + 28}" y="{legend_y}" '
                f'font-family="sans-serif" font-size="11">{name}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def chart_from_series(
    title: str,
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    x_label: str,
    y_label: str,
) -> SvgLineChart:
    """Build a chart from an ExperimentResult's ``series`` mapping."""
    chart = SvgLineChart(title=title, x_label=x_label, y_label=y_label)
    for name, (xs, ys) in series.items():
        chart.add_series(name, xs, ys)
    return chart
