"""Plain-text rendering of experiment outputs.

No plotting dependency is assumed (the environment is offline); figures
are rendered as aligned numeric series the way the paper's curves would
be read off the axes, plus CSV export for external plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ReproError("table needs headers")
    columns = len(headers)
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != columns:
            raise ReproError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(columns)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    x_label: str,
    y_label: str,
    x_format: str = "{:.1f}",
    y_format: str = "{:.3f}",
) -> str:
    """Render named (x, y) series as labelled columns."""
    blocks = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ReproError(
                f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values"
            )
        rows = [
            (x_format.format(x), y_format.format(y)) for x, y in zip(xs, ys)
        ]
        blocks.append(
            f"[{name}]\n" + format_table([x_label, y_label], rows)
        )
    return "\n\n".join(blocks)


@dataclass
class ExperimentResult:
    """The output of one experiment.

    Attributes
    ----------
    experiment_id:
        DESIGN.md id, e.g. ``"E2"``.
    title:
        Human-readable title.
    headers / rows:
        The main results table.
    findings:
        Qualitative conclusions checked against the paper, one per line.
    series:
        Optional named (x, y) curves for figure-type experiments.
    x_label / y_label:
        Axis labels for the series.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List]
    findings: List[str] = field(default_factory=list)
    series: Dict[str, Tuple[List[float], List[float]]] = field(
        default_factory=dict
    )
    x_label: str = "x"
    y_label: str = "y"

    def render(self) -> str:
        """Render the whole result as readable text."""
        out = io.StringIO()
        out.write(f"=== {self.experiment_id}: {self.title} ===\n\n")
        out.write(format_table(self.headers, self.rows))
        out.write("\n")
        if self.series:
            out.write("\n")
            out.write(
                render_series(self.series, self.x_label, self.y_label)
            )
            out.write("\n")
        if self.findings:
            out.write("\nFindings:\n")
            for finding in self.findings:
                out.write(f"  * {finding}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Export the main table as CSV."""
        lines = [",".join(self.headers)]
        lines.extend(
            ",".join(str(cell) for cell in row) for row in self.rows
        )
        return "\n".join(lines) + "\n"
