"""Single-pass multi-configuration two-level hierarchy simulation.

The grid calibration in :mod:`repro.archsim.missmodel` needs the full
:class:`~repro.archsim.hierarchy.HierarchyResult` of ~a dozen (L1 size,
L2 size) combinations over the *same* multi-million-access trace.
Running :class:`~repro.archsim.hierarchy.ArrayTwoLevelHierarchy` once
per combination repeats nearly all of the work: every pass re-decodes
the same addresses, re-derives block/set indices, and — for the L2-curve
points, which all sit behind the same reference L1 — re-simulates an
identical L1 from scratch.

:class:`MultiConfigHierarchyEngine` simulates *all* configurations
concurrently in one sweep over each trace chunk, producing statistics
**bit-identical** to independent per-point runs (the property suite in
``tests/archsim/test_multiconfig.py`` locks this in).  Four layers of
sharing make it fast:

* **One decode.**  Points are grouped into *lanes* by their L1 shape;
  lanes sharing a block size share one vectorized block/set-index
  computation per chunk.  Nested power-of-two set counts need no extra
  arrays at all — a coarser set index is a bit-prefix of a finer one, so
  every lane masks the same shifted-block list with its own
  ``n_sets - 1``.
* **Run compression.**  Consecutive accesses to the same block are
  guaranteed LRU hits on the block at the top of its set's recency
  order, in every configuration at once (an MRU block cannot be the LRU
  victim while associativity >= 1).  Each chunk is compressed with numpy
  to its block-boundary events plus per-run ORed write flags; typical
  synthetic traces shed ~50 % of their accesses before the Python loop
  ever sees them.  The ORed flag drives the dirty bits, so write-back
  accounting stays exact.
* **An all-caches MRU fast path.**  Within a group, set indices refine:
  the blocks mapping to a fine set are a subset of those mapping to the
  coarse set it nests in, so *fewer* blocks separate a reuse in a finer
  cache (Mattson's inclusion, per set).  In particular an MRU hit in
  the fewest-sets cache is an MRU hit in **every** cache of the group,
  whose only state change is ORing the write flag into the dirty bit.
  That collapses ~80 % of events (measured, spec2000-like) to a single
  compare — and to literally no state change when the run was clean.
* **One L1 per lane, replayed L2s.**  Each lane advances its L1 state
  once per event and records the resulting L2 traffic (dirty-victim
  write-back followed by the demand fill, in simulation order).  Every
  point sharing the lane replays that recorded stream into its own L2 —
  the reference L1 in front of the whole L2 size grid is simulated
  once, not once per size.  Identical (L1, L2) points collapse to a
  single simulation entirely.

The per-chunk inner loops are generated (``compile``/``exec``) from the
lane layout at construction time: one fused loop advances every lane's
set state with straight-line, local-variable-only code.  2-way and
direct-mapped levels use an exact two-slot/one-slot encoding (plain
Python lists indexed by set); other associativities use the same
insertion-ordered-dict core as
:class:`~repro.archsim.setassoc.ArraySetAssociativeCache`.

All three array-engine policies are supported.  Run compression is
policy-independent — a just-accessed block is resident under LRU, FIFO
and random alike, and hits never touch replacement state in the
fill-order policies — but the MRU guard fast path leans on Mattson set
refinement (a stack-algorithm property) and is only emitted for LRU.
FIFO swaps the slot/dict encodings for fill-order variants (no
reinsert-on-hit; the victim is the oldest fill).  Random draws victims
from per-cache seeded :class:`random.Random` streams — L1 on ``seed``,
every follower L2 on ``seed + 1``, the exact streams
:class:`~repro.archsim.hierarchy.ArrayTwoLevelHierarchy` uses per
point — so each point's statistics stay bit-identical no matter how
points are grouped into lanes or sharded across workers.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.archsim.hierarchy import HierarchyResult
from repro.archsim.setassoc import _validate_shape
from repro.archsim.stats import CacheStats
from repro.archsim.trace import DEFAULT_CHUNK, TraceLike, as_buffer
from repro.cache.config import CacheConfig

#: (size_bytes, block_bytes, associativity) — the identity of one level.
_Shape = Tuple[int, int, int]

#: Sentinel distinguishing "absent" from any dirty-bit value in the
#: ordered-dict sets (lets the hit path run on one hash probe).
_MISSING = object()

#: Replacement policies with generated kernels (the array-engine set).
_POLICIES = ("lru", "fifo", "random")


def _shape(config: CacheConfig) -> _Shape:
    return (config.size_bytes, config.block_bytes, config.associativity)


# --------------------------------------------------------------------------
# code generation: one fused loop per cache group
# --------------------------------------------------------------------------
#
# A "group" is a list of cache states driven by the same compressed event
# stream (all L1 lanes sharing a block size; all L2 followers of one lane
# sharing a block size), ordered by ascending set count so index 0 is the
# MRU-fast-path guard.  The generated function unrolls the per-cache
# logic so each event advances every cache with local-variable code only.
#
# Loop variables: b = block address, sb = block address >> block shift
# (set index before masking), x = is_write of the run's first access
# (miss classification), aw = OR of every write flag in the run (dirty
# bit), a = raw address of the run's first access (L2 demand traffic).

_PROLOGUE = {
    "slot2": (
        "    u{i}=g[{i}]['mru']; v{i}=g[{i}]['lru']; "
        "d{i}=g[{i}]['dirty_mru']; e{i}=g[{i}]['dirty_lru']; "
        "k{i}=g[{i}]['mask']\n"
    ),
    "slot1": (
        "    u{i}=g[{i}]['mru']; d{i}=g[{i}]['dirty_mru']; "
        "k{i}=g[{i}]['mask']\n"
    ),
    "dict": "    S{i}=g[{i}]['sets']; k{i}=g[{i}]['mask']; A{i}=g[{i}]['assoc']\n",
}

# FIFO reuses the LRU state layouts (the slots/dicts just hold fill
# order instead of recency order); random additionally binds the cache's
# seeded victim chooser.
_CHOICE = "    C{i}=g[{i}]['choice']\n"
_PROLOGUE["fslot2"] = _PROLOGUE["slot2"]
_PROLOGUE["fdict"] = _PROLOGUE["dict"]
_PROLOGUE["rslot2"] = _PROLOGUE["slot2"] + _CHOICE
_PROLOGUE["rslot1"] = _PROLOGUE["slot1"] + _CHOICE
_PROLOGUE["rdict"] = _PROLOGUE["dict"] + _CHOICE

_COUNTERS = "    h{i}=0; mi{i}=0; rm{i}=0; wm{i}=0; ev{i}=0; wb{i}=0; mem{i}=0\n"

_EVENTS = (
    "    oaap{i}=g[{i}]['ops_addr'].append; "
    "owap{i}=g[{i}]['ops_write'].append\n"
)

_SLOT2 = """\
{shead}
            m = u{i}[s]
            if b == m:
                h{i} += 1
                if aw:
                    d{i}[s] = True
            elif b == v{i}[s]:
                h{i} += 1
                u{i}[s] = b; v{i}[s] = m
                t = e{i}[s]; e{i}[s] = d{i}[s]; d{i}[s] = t or aw
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                victim = v{i}[s]
                u{i}[s] = b; v{i}[s] = m
                t = e{i}[s]; e{i}[s] = d{i}[s]; d{i}[s] = aw
                if victim != -1:
                    ev{i} += 1
                    if t:
                        wb{i} += 1
{dirty_victim}{miss}"""

_SLOT1 = """\
{shead}
            m = u{i}[s]
            if b == m:
                h{i} += 1
                if aw:
                    d{i}[s] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                t = d{i}[s]
                u{i}[s] = b; d{i}[s] = aw
                if m != -1:
                    ev{i} += 1
                    if t:
                        wb{i} += 1
{dirty_victim}{miss}"""

_DICT = """\
            r = S{i}[{sx}]
            t = r.pop(b, MS)
            if t is not MS:
                h{i} += 1
                r[b] = t or aw
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                if len(r) >= A{i}:
                    victim = next(iter(r))
                    if r.pop(victim):
                        wb{i} += 1
{dirty_victim}                    ev{i} += 1
{miss}                r[b] = aw
"""

# FIFO two-slot: u{i} holds the newer fill, v{i} the older.  Hits never
# promote (the only change a hit may make is setting the dirty bit); the
# victim is always the older fill, and a miss shifts new -> old.
_FSLOT2 = """\
{shead}
            m = u{i}[s]
            if b == m:
                h{i} += 1
                if aw:
                    d{i}[s] = True
            elif b == v{i}[s]:
                h{i} += 1
                if aw:
                    e{i}[s] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                victim = v{i}[s]
                u{i}[s] = b; v{i}[s] = m
                t = e{i}[s]; e{i}[s] = d{i}[s]; d{i}[s] = aw
                if victim != -1:
                    ev{i} += 1
                    if t:
                        wb{i} += 1
{dirty_victim}{miss}"""

# Random two-slot: same fill-order slots as FIFO, but a full set's
# victim is drawn from the seeded per-cache stream.  The candidate tuple
# is (older, newer) — exactly ``list(resident)`` in the array engine —
# so the rng consumes identical state and picks identical victims.  An
# unfilled set evicts nothing and draws nothing, like the array engine.
_RSLOT2 = """\
{shead}
            m = u{i}[s]
            if b == m:
                h{i} += 1
                if aw:
                    d{i}[s] = True
            elif b == v{i}[s]:
                h{i} += 1
                if aw:
                    e{i}[s] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                victim = v{i}[s]
                if victim == -1:
                    u{i}[s] = b; v{i}[s] = m
                    e{i}[s] = d{i}[s]; d{i}[s] = aw
                else:
                    victim = C{i}((victim, m))
                    ev{i} += 1
                    if victim == m:
                        t = d{i}[s]
                        u{i}[s] = b; d{i}[s] = aw
                    else:
                        t = e{i}[s]
                        u{i}[s] = b; v{i}[s] = m
                        e{i}[s] = d{i}[s]; d{i}[s] = aw
                    if t:
                        wb{i} += 1
{dirty_victim}{miss}"""

# Random direct-mapped: the victim is forced, but the array engine still
# calls ``choice`` on the one-element candidate list (``_randbelow(1)``
# draws bits), so the kernel must burn the same rng state to keep later
# draws aligned.
_RSLOT1 = """\
{shead}
            m = u{i}[s]
            if b == m:
                h{i} += 1
                if aw:
                    d{i}[s] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                t = d{i}[s]
                u{i}[s] = b; d{i}[s] = aw
                if m != -1:
                    C{i}((m,))
                    ev{i} += 1
                    if t:
                        wb{i} += 1
{dirty_victim}{miss}"""

# FIFO dict: no pop-and-reinsert on hit, so insertion order *is* fill
# order and the victim is the first key.
_FDICT = """\
            r = S{i}[{sx}]
            t = r.get(b, MS)
            if t is not MS:
                h{i} += 1
                if aw:
                    r[b] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                if len(r) >= A{i}:
                    victim = next(iter(r))
                    if r.pop(victim):
                        wb{i} += 1
{dirty_victim}                    ev{i} += 1
{miss}                r[b] = aw
"""

# Random dict: fill-order residency with a seeded victim draw over the
# full set (``list(r)`` matches the array engine's candidate order).
_RDICT = """\
            r = S{i}[{sx}]
            t = r.get(b, MS)
            if t is not MS:
                h{i} += 1
                if aw:
                    r[b] = True
            else:
                mi{i} += 1
                if x:
                    wm{i} += 1
                else:
                    rm{i} += 1
                if len(r) >= A{i}:
                    victim = C{i}(list(r))
                    if r.pop(victim):
                        wb{i} += 1
{dirty_victim}                    ev{i} += 1
{miss}                r[b] = aw
"""

_EPILOGUE = """\
    st = g[{i}]['stats']
    st.accesses += h{i} + mi{i} + hall
    st.hits += h{i} + hall
    st.misses += mi{i}
    st.read_misses += rm{i}
    st.write_misses += wm{i}
    st.evictions += ev{i}
    st.writebacks += wb{i}
    g[{i}]['memory'] += mem{i}
"""


_SLOT_TEMPLATES = {
    "slot2": _SLOT2,
    "slot1": _SLOT1,
    "fslot2": _FSLOT2,
    "rslot2": _RSLOT2,
    "rslot1": _RSLOT1,
}

_DICT_TEMPLATES = {"dict": _DICT, "fdict": _FDICT, "rdict": _RDICT}


def _cache_section(i: int, kind: str, events: bool, memory: bool) -> str:
    """One cache's per-event code block (slow path of the fused loop)."""
    indent = " " * 24
    # The one-slot kinds hold their victim in `m`; the rest bind `victim`.
    victim_name = "m" if kind in ("slot1", "rslot1") else "victim"
    dirty_victim = ""
    if events:
        dirty_victim += f"{indent}oaap{i}({victim_name})\n"
        dirty_victim += f"{indent}owap{i}(True)\n"
    if memory:
        dirty_victim += f"{indent}mem{i} += 1\n"
    miss_indent = " " * 16
    miss = ""
    if memory:
        miss += f"{miss_indent}mem{i} += 1\n"
    if events:
        miss += f"{miss_indent}oaap{i}(a)\n"
        miss += f"{miss_indent}owap{i}(False)\n"
    if kind in _DICT_TEMPLATES:
        sx = "s0" if i == 0 else f"sb & k{i}"
        return _DICT_TEMPLATES[kind].format(
            i=i, sx=sx, dirty_victim=dirty_victim, miss=miss
        )
    shead = "            s = s0" if i == 0 else f"            s = sb & k{i}"
    return _SLOT_TEMPLATES[kind].format(i=i, shead=shead,
                                        dirty_victim=dirty_victim, miss=miss)


def _dedent4(text: str) -> str:
    """Lift a section generated for the guarded layout by one level."""
    return "".join(
        line[4:] if line.startswith("    ") else line
        for line in text.splitlines(keepends=True)
    )


def _dirty_store(i: int, kind: str) -> str:
    """Fast-path dirty-bit update for an all-caches MRU hit."""
    sx = "s0" if i == 0 else f"sb & k{i}"
    if kind == "dict":
        return f"                S{i}[{sx}][b] = True\n"
    return f"                d{i}[{sx}] = True\n"


def _build_group_runner(
    kinds: Sequence[str], events: Sequence[bool], memory: bool,
    guarded: bool = True,
):
    """Compile the fused chunk loop for one cache group.

    ``kinds[i]`` selects the state encoding of cache ``i`` (``kinds[0]``
    is the fewest-sets guard); ``events[i]`` toggles L2-traffic
    recording for that cache (L1 lanes with at least one follower) and
    ``memory`` toggles main-memory counting for the whole group (L2
    followers).  ``guarded`` emits the all-caches MRU fast path — valid
    only for LRU, where Mattson set refinement makes an MRU hit in the
    fewest-sets cache an MRU hit everywhere; FIFO/random groups run
    every event through the per-cache sections.
    """
    guard = kinds[0]
    any_events = any(events)
    lines: List[str] = ["def _run(bl, sbl, xl, awl, al, g):\n"]
    for i, kind in enumerate(kinds):
        lines.append(_PROLOGUE[kind].format(i=i))
        lines.append(_COUNTERS.format(i=i))
        if events[i]:
            lines.append(_EVENTS.format(i=i))
    guard_mru = "u0"
    if guarded and guard == "dict":
        guard_mru = "gm"
        lines.append("    gm = g[0]['guard_mru']\n")
    lines.append("    hall = 0\n")
    if any_events:
        lines.append("    for b, sb, x, aw, a in zip(bl, sbl, xl, awl, al):\n")
    else:
        lines.append("    for b, sb, x, aw in zip(bl, sbl, xl, awl):\n")
    lines.append("        s0 = sb & k0\n")
    if guarded:
        lines.append(f"        if b == {guard_mru}[s0]:\n")
        lines.append("            hall += 1\n")
        lines.append("            if aw:\n")
        for i, kind in enumerate(kinds):
            lines.append(_dirty_store(i, kind))
        lines.append("        else:\n")
        for i, kind in enumerate(kinds):
            lines.append(_cache_section(i, kind, events[i], memory))
        if guard == "dict":
            lines.append("            gm[s0] = b\n")
    else:
        for i, kind in enumerate(kinds):
            lines.append(_dedent4(_cache_section(i, kind, events[i], memory)))
    for i in range(len(kinds)):
        lines.append(_EPILOGUE.format(i=i))
    source = "".join(lines)
    namespace: Dict[str, object] = {"MS": _MISSING}
    exec(compile(source, "<multiconfig-group>", "exec"), namespace)
    runner = namespace["_run"]
    runner._source = source  # introspection hook for tests
    return runner


def _compress(blocks: np.ndarray, writes: np.ndarray):
    """Collapse runs of consecutive equal blocks to (indices, run-OR).

    Returns ``(kept_indices, run_any_write, skipped)`` where ``skipped``
    is the number of dropped accesses — each a guaranteed MRU hit whose
    only architectural effect (the dirty bit) is carried by the ORed
    write flag of its run.
    """
    n = blocks.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool), 0
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
    kept = np.nonzero(keep)[0]
    return kept, np.logical_or.reduceat(writes, kept), int(n - kept.size)


#: State encoding per (associativity class, policy).  FIFO reuses the
#: one-slot LRU kernel — with a single way there is nothing to reorder.
_KINDS = {
    2: {"lru": "slot2", "fifo": "fslot2", "random": "rslot2"},
    1: {"lru": "slot1", "fifo": "slot1", "random": "rslot1"},
    None: {"lru": "dict", "fifo": "fdict", "random": "rdict"},
}


def _state_for(
    shape: _Shape, name: str, events: bool,
    policy: str = "lru", seed: int = 0,
) -> dict:
    """Allocate the per-set state for one cache of the given shape.

    A random-policy cache owns its rng stream, created here from
    ``seed`` — per cache, not per lane group or shard, so victim draws
    depend only on the cache's own miss sequence and results are stable
    under any point grouping or ``jobs=`` sharding.
    """
    size_bytes, block_bytes, associativity = shape
    n_sets = _validate_shape(size_bytes, block_bytes, associativity, name)
    kind = _KINDS.get(associativity, _KINDS[None])[policy]
    state: dict = {
        "kind": kind,
        "mask": n_sets - 1,
        "assoc": associativity,
        "stats": CacheStats(),
        "memory": 0,
    }
    if kind in ("slot2", "fslot2", "rslot2"):
        state["mru"] = [-1] * n_sets
        state["lru"] = [-1] * n_sets
        state["dirty_mru"] = [False] * n_sets
        state["dirty_lru"] = [False] * n_sets
    elif kind in ("slot1", "rslot1"):
        state["mru"] = [-1] * n_sets
        state["dirty_mru"] = [False] * n_sets
    else:
        state["sets"] = [dict() for _ in range(n_sets)]
    if policy == "random":
        state["choice"] = random.Random(seed).choice
    if events:
        state["ops_addr"] = []
        state["ops_write"] = []
    return state


def _group_by_block(states: Sequence[dict]) -> List[Tuple[int, List[dict]]]:
    """Partition cache states by block size, each ordered by set count.

    Index 0 of every partition is the fewest-sets cache — the fast-path
    guard — which gets an auxiliary MRU list when dict-encoded.
    """
    by_block: Dict[int, List[dict]] = {}
    for state in states:
        by_block.setdefault(state["block_bytes"], []).append(state)
    groups = []
    for block_bytes, members in sorted(by_block.items()):
        members.sort(key=lambda state: state["mask"])
        guard = members[0]
        if guard["kind"] == "dict" and "guard_mru" not in guard:
            guard["guard_mru"] = [-1] * (guard["mask"] + 1)
        groups.append((block_bytes, members))
    return groups


class _Lane:
    """One distinct L1 shape plus every L2 that sits behind it."""

    __slots__ = ("shape", "state", "followers", "follower_groups",
                 "policy", "seed")

    def __init__(self, shape: _Shape, policy: str = "lru",
                 seed: int = 0) -> None:
        self.shape = shape
        self.policy = policy
        self.seed = seed
        self.state = _state_for(shape, "L1", events=True,
                                policy=policy, seed=seed)
        self.state["block_bytes"] = shape[1]
        self.followers: Dict[_Shape, dict] = {}
        self.follower_groups: List[tuple] = []

    def follower(self, shape: _Shape) -> dict:
        state = self.followers.get(shape)
        if state is None:
            # Each follower gets its own seed+1 stream — the stream an
            # independent ArrayTwoLevelHierarchy would hand this L2.
            state = _state_for(shape, "L2", events=False,
                               policy=self.policy, seed=self.seed + 1)
            state["block_bytes"] = shape[1]
            self.followers[shape] = state
        return state

    def compile_runners(self) -> None:
        """Group followers by block size and build each fused loop."""
        self.follower_groups = []
        for block_bytes, states in _group_by_block(list(self.followers.values())):
            runner = _build_group_runner(
                [state["kind"] for state in states],
                events=[False] * len(states),
                memory=True,
                guarded=self.policy == "lru",
            )
            self.follower_groups.append((block_bytes, states, runner))


class MultiConfigHierarchyEngine:
    """Simulate many (L1, L2) configurations in one pass over a trace.

    Parameters
    ----------
    points:
        Sequence of ``(l1_config, l2_config)`` pairs.  Duplicate pairs
        (and shared L1 shapes) are simulated once and fanned back out.
        ``l2_config`` may be ``None`` for callers that only need the L1
        statistics of that point (the grid calibration's L1 curve):
        the lane then records no L2 traffic at all, and the point's
        result carries an all-zero L2 ``CacheStats`` and
        ``memory_accesses == 0``.  The L1 statistics are unaffected —
        the L2 is strictly downstream of the L1 in this hierarchy.
    policy:
        ``"lru"``, ``"fifo"`` or ``"random"`` — same set, and same
        semantics, as
        :class:`~repro.archsim.hierarchy.ArrayTwoLevelHierarchy`.
    seed:
        Random-policy seed: every lane L1 draws from
        ``random.Random(seed)`` and every follower L2 from
        ``random.Random(seed + 1)``, matching the per-point array
        engine streams regardless of lane grouping.

    :meth:`run` returns one :class:`HierarchyResult` per input point, in
    input order, each bit-identical to an independent
    ``ArrayTwoLevelHierarchy(l1, l2, policy, seed).run(trace)`` (L1-only
    points match on the L1 statistics).
    """

    def __init__(
        self,
        points: Sequence[Tuple[CacheConfig, Optional[CacheConfig]]],
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if policy not in _POLICIES:
            raise SimulationError(
                f"MultiConfigHierarchyEngine: unknown replacement policy "
                f"{policy!r}; expected 'lru', 'fifo' or 'random'"
            )
        self.policy = policy
        self.seed = seed
        points = list(points)
        if not points:
            raise SimulationError(
                "MultiConfigHierarchyEngine needs at least one "
                "(l1_config, l2_config) point"
            )
        self._lanes: Dict[_Shape, _Lane] = {}
        self._point_map: List[Tuple[_Lane, dict]] = []
        for l1_config, l2_config in points:
            lane_shape = _shape(l1_config)
            lane = self._lanes.get(lane_shape)
            if lane is None:
                lane = _Lane(lane_shape, policy, seed)
                self._lanes[lane_shape] = lane
            follower = (
                lane.follower(_shape(l2_config))
                if l2_config is not None else None
            )
            self._point_map.append((lane, follower))

        # L1 lanes grouped by block size: shared decode + one fused
        # loop.  Only lanes with followers record their L2 traffic.
        self._lane_groups = []
        for block_bytes, states in _group_by_block(
            [lane.state for lane in self._lanes.values()]
        ):
            by_id = {id(lane.state): lane for lane in self._lanes.values()}
            event_flags = [bool(by_id[id(state)].followers)
                           for state in states]
            runner = _build_group_runner(
                [state["kind"] for state in states],
                events=event_flags,
                memory=False,
                guarded=policy == "lru",
            )
            self._lane_groups.append(
                (block_bytes, states, runner, any(event_flags))
            )
        for lane in self._lanes.values():
            lane.compile_runners()

    # -- introspection ---------------------------------------------------

    @property
    def n_points(self) -> int:
        return len(self._point_map)

    @property
    def n_lanes(self) -> int:
        """Distinct L1 shapes actually simulated."""
        return len(self._lanes)

    @property
    def n_followers(self) -> int:
        """Distinct (L1, L2) simulations actually advanced."""
        return sum(len(lane.followers) for lane in self._lanes.values())

    # -- main entry ------------------------------------------------------

    def access_chunk(
        self, addresses: np.ndarray, is_write: np.ndarray
    ) -> None:
        """Advance every configuration through one chunk of accesses."""
        for block_bytes, states, runner, wants_events in self._lane_groups:
            shift = block_bytes.bit_length() - 1
            blocks = addresses & -block_bytes
            kept, any_write, skipped = _compress(blocks, is_write)
            kept_blocks = blocks[kept]
            runner(
                kept_blocks.tolist(),
                (kept_blocks >> shift).tolist(),
                is_write[kept].tolist(),
                any_write.tolist(),
                addresses[kept].tolist() if wants_events else (),
                states,
            )
            if skipped:
                for state in states:
                    stats = state["stats"]
                    stats.accesses += skipped
                    stats.hits += skipped
        # Replay each lane's recorded L2 traffic into its followers.
        for lane in self._lanes.values():
            ops_addr = lane.state["ops_addr"]
            if not ops_addr:
                continue
            ops_write = lane.state["ops_write"]
            addr_array = np.array(ops_addr, dtype=np.int64)
            write_array = np.array(ops_write, dtype=bool)
            ops_addr.clear()
            ops_write.clear()
            for block_bytes, states, runner in lane.follower_groups:
                shift = block_bytes.bit_length() - 1
                blocks = addr_array & -block_bytes
                kept, any_write, skipped = _compress(blocks, write_array)
                kept_blocks = blocks[kept]
                runner(
                    kept_blocks.tolist(),
                    (kept_blocks >> shift).tolist(),
                    write_array[kept].tolist(),
                    any_write.tolist(),
                    (),
                    states,
                )
                if skipped:
                    for state in states:
                        stats = state["stats"]
                        stats.accesses += skipped
                        stats.hits += skipped

    def run(
        self, trace: TraceLike, chunk_size: int = DEFAULT_CHUNK
    ) -> List[HierarchyResult]:
        """Simulate a whole trace; one result per point, in input order."""
        for chunk in as_buffer(trace).iter_chunks(chunk_size):
            self.access_chunk(chunk.addresses, np.asarray(chunk.is_write))
        return self.results()

    def results(self) -> List[HierarchyResult]:
        """Snapshot statistics collected so far (points share nothing)."""
        return [
            HierarchyResult(
                l1=replace(lane.state["stats"]),
                l2=(replace(follower["stats"]) if follower is not None
                    else CacheStats()),
                memory_accesses=(follower["memory"]
                                 if follower is not None else 0),
            )
            for lane, follower in self._point_map
        ]


def simulate_configurations(
    points: Sequence[Tuple[CacheConfig, Optional[CacheConfig]]],
    trace: TraceLike,
    chunk_size: int = DEFAULT_CHUNK,
    policy: str = "lru",
    seed: int = 0,
) -> List[HierarchyResult]:
    """One-shot convenience wrapper over :class:`MultiConfigHierarchyEngine`."""
    return MultiConfigHierarchyEngine(points, policy, seed).run(
        trace, chunk_size=chunk_size
    )
