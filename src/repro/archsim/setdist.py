"""Per-set Mattson profiling: exact LRU grids from one trace pass.

Mattson's inclusion property holds *per cache set*: under LRU, an access
hits a ``(n_sets, associativity)`` cache iff its reuse distance measured
inside its own set is below the associativity.  One pass that maintains
per-set LRU depth histograms therefore answers every ``(size, assoc)``
point sharing a set geometry exactly — no fully-associative
approximation, miss counts bit-identical to
:class:`~repro.archsim.setassoc.ArraySetAssociativeCache`.

The sweep is organised as a *contraction cascade* over the requested set
counts (ascending powers of two, i.e. successive refinements of the set
partition):

* Each level re-sorts the surviving events into set-major order (stable
  sort by set index) and *contracts* runs of the same block: an event
  adjacent to its own block in set-major order has per-set depth 0 at
  this and every finer level, so it is merged away (write flags OR into
  the run head).  Event counts shrink monotonically as sets refine, so
  the marginal cost of an extra grid level decays — a dense ~200-point
  grid costs barely more than the 12-point reference grid.
* Depth histograms are then evaluated *fine -> coarse* with a backward
  overflow carry: per-set depth is monotone non-decreasing as sets
  coarsen, so an event that already saturated the depth cap at a finer
  level is binned at the cap without rescanning.  In practice >99% of
  deep windows stay saturated, which removes almost all wide scans at
  the coarse levels.
* Residual window scans run on contiguous rows of a
  ``sliding_window_view`` over the (padded) predecessor array with a
  doubling width schedule — no per-lane index matrices.

Two-level grids replay the reference L1 exactly: the L1 miss and dirty
write-back event stream at the reference geometry is reconstructed in
closed form from the per-set predecessor structure (valid for reference
associativity 1 or 2, where hit depth has a closed form on contracted
streams) and pushed through a second cascade at the L2 block size.

Entry points: :func:`per_set_profiles` (one level, one block size) and
:func:`two_level_profiles` (L1 grid + L2 grid behind the reference L1).
Results come back as :class:`SetDistanceProfile` objects whose
``miss_count``/``miss_rate`` answer any associativity in the profiled
range from a cached cumulative tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.units import is_power_of_two
from repro.archsim.trace import TraceLike, as_buffer

__all__ = [
    "SetDistanceProfile",
    "per_set_profiles",
    "reference_event_stream",
    "two_level_profiles",
]

#: Width of the first residual-scan round (lanes per query).
_SCAN_WIDTH = 16

#: Maximum scan width; doubling rounds stop growing here.
_MAX_SCAN_WIDTH = 512

#: Padding past the layout end so sliding-window rows of exhausting
#: queries stay in bounds (>= the maximum scan width).
_PAD = _MAX_SCAN_WIDTH + 8

#: Depth histograms are stored as int8 during evaluation.
_DEPTH_CAP_LIMIT = 127


# --------------------------------------------------------------------------
# results
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SetDistanceProfile:
    """Exact per-set LRU depth histogram for one (block_bytes, n_sets).

    ``depth_counts[k]`` counts accesses whose per-set LRU stack depth is
    exactly ``k`` for ``k < depth_cap``; ``depth_counts[depth_cap]``
    lumps every depth >= ``depth_cap``; cold (first-touch) accesses are
    tracked separately.  When the profile was built with ``min_assoc >
    1`` the profiler skips windows that provably hit at every requested
    associativity, so counts below ``min_assoc`` are partial and miss
    counts are only defined for associativities in
    ``[min_assoc, depth_cap]``.
    """

    block_bytes: int
    n_sets: int
    depth_cap: int
    min_assoc: int
    cold_misses: int
    total_accesses: int
    depth_counts: Tuple[int, ...]

    def _tail(self) -> np.ndarray:
        """tail[k] = number of accesses with depth >= k (cached)."""
        cache = getattr(self, "_tail_cache", None)
        if cache is None:
            counts = np.asarray(self.depth_counts[::-1], dtype=np.int64)
            cache = np.cumsum(counts)[::-1]
            object.__setattr__(self, "_tail_cache", cache)
        return cache

    def miss_count(self, associativity: int) -> int:
        """Exact LRU miss count at ``(n_sets, associativity)``."""
        if not self.min_assoc <= associativity <= self.depth_cap:
            raise SimulationError(
                f"associativity {associativity} outside the profiled "
                f"range [{self.min_assoc}, {self.depth_cap}] "
                f"(n_sets={self.n_sets})"
            )
        return self.cold_misses + int(self._tail()[associativity])

    def miss_rate(self, associativity: int) -> float:
        """Exact LRU miss rate at ``(n_sets, associativity)``."""
        if self.total_accesses == 0:
            return 0.0
        return self.miss_count(associativity) / self.total_accesses

    def size_bytes(self, associativity: int) -> int:
        """Capacity of the cache this (n_sets, assoc) point describes."""
        return self.n_sets * associativity * self.block_bytes


# --------------------------------------------------------------------------
# validation
# --------------------------------------------------------------------------


def _require_power_of_two(value, label: str) -> int:
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise SimulationError(f"{label} must be an int, got {value!r}")
    value = int(value)
    if not is_power_of_two(value):
        raise SimulationError(
            f"{label} must be a positive power of two, got {value}"
        )
    return value


def _normalize_set_counts(set_counts, label: str) -> List[int]:
    levels = sorted({
        _require_power_of_two(count, f"{label} entry") for count in set_counts
    })
    if not levels:
        raise SimulationError(f"{label} must name at least one set count")
    return levels


def _validate_depths(depth_cap: int, min_assoc: int, label: str) -> None:
    if not 1 <= depth_cap <= _DEPTH_CAP_LIMIT:
        raise SimulationError(
            f"{label} depth_cap must be in [1, {_DEPTH_CAP_LIMIT}], "
            f"got {depth_cap}"
        )
    if not 1 <= min_assoc <= depth_cap:
        raise SimulationError(
            f"{label} min_assoc must be in [1, depth_cap={depth_cap}], "
            f"got {min_assoc}"
        )


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------


def _argsort2(x: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative int32 via two 16-bit radix passes."""
    lo = (x & np.int32(0xFFFF)).astype(np.uint16)
    o1 = np.argsort(lo, kind="stable").astype(np.int32)
    hi = (x >> np.int32(16)).astype(np.uint16)[o1]
    o2 = np.argsort(hi, kind="stable").astype(np.int32)
    return o1[o2]


def _set_key(blocks: np.ndarray, n_sets: int) -> np.ndarray:
    """Per-level sort key: the set index, in the narrowest useful dtype."""
    if n_sets == 1:
        return np.zeros(blocks.size, np.uint8)
    if blocks.dtype == np.uint16:
        # carry is already masked to the finest geometry's set bits
        return blocks & np.uint16(n_sets - 1)
    sets = blocks & blocks.dtype.type(n_sets - 1)
    if n_sets <= 256:
        return sets.astype(np.uint8)
    if n_sets <= 65536:
        return sets.astype(np.uint16)
    return sets.astype(np.int32)


def _contract(bb: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run-start mask + indices for a set-major layout."""
    rs = np.empty(bb.size, bool)
    rs[0] = True
    np.not_equal(bb[1:], bb[:-1], out=rs[1:])
    starts = np.flatnonzero(rs).astype(np.int32)
    return rs, starts


def _scan(prev_padded, pm, wm, cap, width):
    """Capped window-first counts via contiguous sliding windows.

    Window lanes are contiguous in the layout, so each round gathers
    *rows* of a sliding_window_view — no per-lane index matrix.  Rows
    that cannot exhaust their window this round need no validity mask;
    exhausting rows read into the pad / foreign lanes, which the mask
    discards.
    """
    nq = pm.size
    cnt = np.zeros(nq, np.int32)
    live = np.arange(nq, dtype=np.int32)
    out = np.empty(nq, np.int32)
    base = pm + np.int32(1)
    start = 0  # uniform: every survivor has scanned the same widths
    while live.size:
        swv = np.lib.stride_tricks.sliding_window_view(prev_padded, width)
        rows = swv[base + np.int32(start)]
        hit = rows <= pm[:, None]
        exhaust = wm <= np.int32(start + width)
        if exhaust.any():
            # lanes past the window read pad/foreign values: mask them
            ex = np.flatnonzero(exhaust)
            offs = np.arange(start, start + width, dtype=np.int32)
            hit[ex] &= offs[None, :] < wm[ex, None]
        cnt = cnt + hit.sum(axis=1, dtype=np.int32)
        start += width
        done = (cnt >= cap) | exhaust
        out[live[done]] = cnt[done]
        keep = ~done
        live = live[keep]
        pm = pm[keep]
        wm = wm[keep]
        base = base[keep]
        cnt = cnt[keep]
        width = min(width * 2, _MAX_SCAN_WIDTH)
    return np.minimum(out, np.int32(cap)).astype(np.int8)


def _level_bins(prev, prev_padded, hints, amin, cap):
    """Depth histogram for one level with backward overflow carry.

    ``hints`` marks events whose depth at the next-finer set count
    already reached ``cap``; depth only grows as sets coarsen, so those
    are binned at ``cap`` without rescanning.  Returns ``(bins,
    overflow)`` where ``bins[k]`` counts evaluated queries of depth
    exactly ``k`` (k < cap) and ``bins[cap]`` counts depth >= cap;
    ``overflow`` flags events with depth >= cap for the next-coarser
    level.
    """
    q = np.flatnonzero(prev >= 0).astype(np.int32)
    ov = np.zeros(prev.size, bool)
    n_ov = 0
    if hints is not None:
        hq = hints[q]
        if hq.any():
            qo = q[hq]
            ov[qo] = True
            n_ov = qo.size
            q = q[~hq]
    p = prev[q]
    w = q - p - np.int32(1)
    if amin > 1:
        # w < amin proves depth < amin: a hit at every requested assoc
        keepm = w >= np.int32(amin)
        q = q[keepm]
        p = p[keepm]
        w = w[keepm]
    d = np.empty(q.size, np.int8)
    if cap == 1:
        # every surviving (non-contracted) reuse has depth >= 1
        d[:] = 1
    elif cap == 2:
        # contracted stream: w == 1 <=> d == 1, w >= 2 => d >= 2
        d[:] = 1
        d[w >= 2] = 2
    else:
        d[:] = 1
        d[w == 2] = 2
        m3 = np.flatnonzero(w == 3)
        if m3.size:
            d[m3] = np.int8(2) + (prev[q[m3] - 1] <= p[m3]).view(np.int8)
        mg = np.flatnonzero(w >= 4)
        if mg.size:
            if cap > 8:
                # shallow windows exhaust in one 16-wide round; only
                # windows wider than that need the doubled schedule
                sm = w[mg] <= np.int32(_SCAN_WIDTH)
                for sel, width in (
                    (mg[sm], _SCAN_WIDTH),
                    (mg[~sm], 2 * _SCAN_WIDTH),
                ):
                    if sel.size:
                        d[sel] = _scan(prev_padded, p[sel], w[sel], cap, width)
            else:
                d[mg] = _scan(prev_padded, p[mg], w[mg], cap, _SCAN_WIDTH)
    bins = np.bincount(d.astype(np.int64), minlength=cap + 1)
    bins[cap] += n_ov
    ov[q[d == np.int8(cap)]] = True
    return bins, ov


class _Cascade:
    """Contraction cascade over one block size.

    ``advance()`` refines the set-major layout level by level (coarse ->
    fine) and snapshots each level; ``grid_bins()`` then walks the
    snapshots fine -> coarse so overflow carries backward (depth is
    monotone non-decreasing under set coarsening).
    """

    def __init__(self, blocks, n_total, *, aw=None, t=None, rank=None,
                 ref_sets=None):
        self.b = blocks          # true block ids (set bits live here)
        self.rank = rank         # dense equality key (or None -> use b)
        self.aw = aw             # uint8 run-ORed write flags
        self.t = t               # original positions (for event ordering)
        self.prev = None
        self._pbuf = None
        self.ob = None           # block-grouped order (kept to ref level)
        self.n_total = n_total   # raw accesses incl. contracted-away
        self.cold = 0
        self.ref_sets = ref_sets
        self.ref = None          # (b, aw, t, prev, ob) at the ref level
        self.states = []         # (n_sets, prev, pbuf, osel-into-parent)

    def _eq(self):
        return self.b if self.rank is None else self.rank

    def advance(self, n_sets):
        """Refine the layout to ``n_sets``, contract, maintain prev."""
        key = _set_key(self.b, n_sets)
        order = np.argsort(key, kind="stable").astype(np.int32)
        eq = self._eq()
        bb = eq[order]
        rs, starts = _contract(bb)
        osel = order[starts]
        first = self.prev is None
        n_new = starts.size
        if not first:
            n_old = order.size
            # sentinel slot: po == -1 gathers inv[-1] -> n_old -> rid[-1] == -1
            inv = np.empty(n_old + 1, np.int32)
            inv[order] = np.arange(n_old, dtype=np.int32)
            inv[n_old] = n_old
            rid = np.empty(n_old + 1, np.int32)
            np.cumsum(rs, dtype=np.int32, out=rid[:n_old])
            rid[:n_old] -= np.int32(1)
            rid[n_old] = -1
            po = self.prev[osel]
            pbuf = np.empty(n_new + _PAD, np.int32)
            pbuf[n_new:] = n_new  # pad lanes are masked; value is arbitrary
            pbuf[:n_new] = rid[inv[po]]
            prev2 = pbuf[:n_new]
            if self.ob is not None:
                sm = np.zeros(order.size, bool)
                sm[osel] = True
                ni = np.empty(order.size, np.int32)
                ni[osel] = np.arange(n_new, dtype=np.int32)
                self.ob = ni[self.ob[sm[self.ob]]]
        self.b = self.b[osel]
        if self.rank is not None:
            self.rank = bb[starts]
        if self.aw is not None:
            self.aw = np.maximum.reduceat(self.aw[order], starts)
        if self.t is not None:
            self.t = self.t[osel]
        if first:
            eq2 = self._eq()
            if eq2.dtype == np.int32:
                ob = _argsort2(eq2)
            else:
                ob = np.argsort(eq2, kind="stable").astype(np.int32)
            same = eq2[ob[1:]] == eq2[ob[:-1]]
            pbuf = np.full(n_new + _PAD, -1, np.int32)
            pbuf[n_new:] = n_new
            prev2 = pbuf[:n_new]
            prev2[ob[1:][same]] = ob[:-1][same]
            self.ob = ob
            self.cold = int((prev2 < 0).sum())
        self.prev = prev2
        self._pbuf = pbuf
        self.states.append((n_sets, prev2, pbuf, None if first else osel))
        if self.ref_sets == n_sets:
            self.ref = (self.b, self.aw, self.t, self.prev, self.ob)
            self.aw = None
            self.t = None
            self.ob = None

    def grid_bins(self, amin, cap):
        """Per-level depth histograms, evaluated fine -> coarse."""
        out = {}
        child_ov = None
        states = self.states
        for i in range(len(states) - 1, -1, -1):
            level, prev, pbuf, _ = states[i]
            hints = None
            if child_ov is not None:
                cosel = states[i + 1][3]
                hints = np.zeros(prev.size, bool)
                hints[cosel] = child_ov
            bins, child_ov = _level_bins(prev, pbuf, hints, amin, cap)
            out[level] = bins
        return out


# --------------------------------------------------------------------------
# trace plumbing
# --------------------------------------------------------------------------


def _compress(addresses, is_write, block_bytes):
    """Block-align + drop adjacent same-block repeats (depth-0 reuses).

    Returns ``(blocks, any_write, positions)`` where ``any_write`` is
    the run-OR of write flags (uint8, None when ``is_write`` is None)
    and ``positions`` indexes the run heads in the raw trace.
    """
    shift = block_bytes.bit_length() - 1
    b_all = addresses >> np.int64(shift)
    if int(b_all.max()) <= np.iinfo(np.int32).max:
        b_all = b_all.astype(np.int32)
    keep = np.empty(b_all.size, bool)
    keep[0] = True
    np.not_equal(b_all[1:], b_all[:-1], out=keep[1:])
    kept = np.flatnonzero(keep).astype(np.int32)
    b = b_all[kept]
    if is_write is None:
        return b, None, kept
    wr = np.asarray(is_write)
    # run-OR of write flags: one cumsum gather yields both run boundaries
    # (int32 is safe: the engine indexes the trace with int32 throughout)
    cw = np.cumsum(wr, dtype=np.int32)
    g = np.empty(kept.size + 1, np.int32)
    g[0] = 0
    g[1:-1] = cw[kept[1:] - np.int32(1)]
    g[-1] = cw[-1]
    aw = (np.diff(g) > 0).view(np.uint8)
    return b, aw, kept


def _empty_profile(block_bytes, n_sets, depth_cap, min_assoc):
    return SetDistanceProfile(
        block_bytes=block_bytes,
        n_sets=n_sets,
        depth_cap=depth_cap,
        min_assoc=min_assoc,
        cold_misses=0,
        total_accesses=0,
        depth_counts=(0,) * (depth_cap + 1),
    )


def _profiles_from_cascade(cascade, bins_by_level, block_bytes, depth_cap,
                           min_assoc):
    events = {level: prev.size for level, prev, _, _ in cascade.states}
    profiles = {}
    for level, bins in bins_by_level.items():
        counts = [0] * (depth_cap + 1)
        # events contracted away at (or before) this level have depth 0
        counts[0] = cascade.n_total - events[level]
        for k in range(1, depth_cap + 1):
            counts[k] = int(bins[k])
        profiles[level] = SetDistanceProfile(
            block_bytes=block_bytes,
            n_sets=level,
            depth_cap=depth_cap,
            min_assoc=min_assoc,
            cold_misses=cascade.cold,
            total_accesses=cascade.n_total,
            depth_counts=tuple(counts),
        )
    return profiles


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------


def per_set_profiles(
    trace: TraceLike,
    *,
    set_counts: Sequence[int],
    block_bytes: int = 64,
    depth_cap: int,
    min_assoc: int = 1,
) -> Dict[int, SetDistanceProfile]:
    """Per-set LRU depth profiles for every requested set count.

    One pass over the trace answers the exact LRU miss count of every
    ``(n_sets, associativity)`` cache with ``n_sets`` in ``set_counts``
    and associativity in ``[min_assoc, depth_cap]`` — bit-identical to
    simulating each point.  ``set_counts`` entries must be powers of two
    (``1`` profiles a fully-associative cache); ``min_assoc > 1``
    skips provably-hitting windows for speed at the cost of the shallow
    histogram entries.
    """
    block_bytes = _require_power_of_two(block_bytes, "block_bytes")
    levels = _normalize_set_counts(set_counts, "set_counts")
    _validate_depths(depth_cap, min_assoc, "per_set_profiles")
    buffer = as_buffer(trace)
    n = buffer.addresses.size
    if n == 0:
        return {
            level: _empty_profile(block_bytes, level, depth_cap, min_assoc)
            for level in levels
        }
    blocks, _, _ = _compress(buffer.addresses, None, block_bytes)
    cascade = _Cascade(blocks, n)
    for level in levels:
        cascade.advance(level)
    bins = cascade.grid_bins(min_assoc, depth_cap)
    return _profiles_from_cascade(
        cascade, bins, block_bytes, depth_cap, min_assoc
    )


def _ref_event_stream(cascade, ref_sets, ref_assoc, ratio_shift):
    """Reconstruct the reference-L1 miss + write-back stream in order.

    Works on the snapshot captured at the reference level.  On a
    contracted stream the reference hit/miss outcome has a closed form
    for associativity 1 (every surviving reuse misses) and 2 (window
    width >= 2 iff depth >= 2); the victim of a miss in a full set is
    the block of the event ``ref_assoc`` positions back in set-major
    order, and its dirtiness at eviction is the per-block dirty state
    after that event.  Returns ``(stream_blocks, stream_ranks, total)``
    where blocks are L2-sized (shifted by ``ratio_shift``) and ranks
    are a dense equality key.
    """
    b2, aw2, t2, prev2, ob = cascade.ref
    n2 = b2.size
    dt = b2.dtype.type
    q = np.flatnonzero(prev2 >= 0).astype(np.int32)
    w = q - prev2[q] - np.int32(1)
    miss_mask = prev2 < 0
    miss_mask[q[w >= np.int32(ref_assoc)]] = True
    # per-set occupancy before each event == colds seen so far in the set
    sets2 = b2 & dt(ref_sets - 1)
    newset = np.empty(n2, bool)
    newset[0] = True
    np.not_equal(sets2[1:], sets2[:-1], out=newset[1:])
    colds = prev2 < 0
    cs = np.cumsum(colds, dtype=np.int32)
    set_starts = np.flatnonzero(newset).astype(np.int32)
    base = cs[set_starts] - colds[set_starts]
    sizes = np.diff(np.append(set_starts, np.int32(n2)))
    occ_before = cs - colds.view(np.int8) - np.repeat(base, sizes)
    # per-block dirty-after: segmented running max of 2*fills + writes
    seg = np.cumsum(miss_mask[ob], dtype=np.int32)
    val = seg * np.int32(2) + aw2[ob]
    acc = np.maximum.accumulate(val)
    dirty_after = np.empty(n2, bool)
    dirty_after[ob] = (acc & 1).astype(bool)
    # dense L2-block ranks from the block-grouped order
    b64s = b2[ob] >> dt(ratio_shift)
    nb = np.empty(n2, bool)
    nb[0] = True
    np.not_equal(b64s[1:], b64s[:-1], out=nb[1:])
    r64 = np.empty(n2, np.int32)
    r64[ob] = np.cumsum(nb, dtype=np.int32) - np.int32(1)
    n64 = int(r64.max()) + 1

    miss_idx = np.flatnonzero(miss_mask).astype(np.int32)
    evict = occ_before[miss_idx] >= np.int32(ref_assoc)
    wb_flag = np.zeros(miss_idx.size, bool)
    ev = miss_idx[evict]
    wb_flag[evict] = dirty_after[ev - np.int32(ref_assoc)]
    order = _argsort2(t2[miss_idx])
    miss_sorted = miss_idx[order]
    wb_sorted = wb_flag[order]
    nmiss = miss_sorted.size
    shift = np.cumsum(wb_sorted, dtype=np.int32)
    # each write-back lands immediately before the miss that evicts it
    pos_demand = np.arange(nmiss, dtype=np.int32) + shift
    total = nmiss + int(shift[-1]) if nmiss else 0
    stream_b = np.empty(total, b2.dtype)
    stream_r = np.empty(total, np.int32)
    stream_b[pos_demand] = b2[miss_sorted] >> dt(ratio_shift)
    stream_r[pos_demand] = r64[miss_sorted]
    wb_pos = pos_demand[wb_sorted] - 1
    victims = miss_sorted[wb_sorted] - np.int32(ref_assoc)
    stream_b[wb_pos] = b2[victims] >> dt(ratio_shift)
    stream_r[wb_pos] = r64[victims]
    if n64 <= 65535:
        stream_r = stream_r.astype(np.uint16)
    return stream_b, stream_r, total


def reference_event_stream(
    trace: TraceLike,
    *,
    ref_sets: int,
    ref_assoc: int = 2,
    l1_block_bytes: int = 32,
    l2_block_bytes: int = 64,
) -> Tuple[np.ndarray, int]:
    """The exact L2 access stream behind one reference L1, in order.

    Replays the ``(ref_sets, ref_assoc)`` L1 in closed form (see
    :func:`two_level_profiles`) and returns ``(blocks, total)``: the
    demand-miss + dirty-write-back event stream the L2 serves, as
    ``l2_block_bytes``-granular block ids in stream order, each
    write-back placed immediately before the miss that evicts it.
    ``total`` equals ``blocks.size``.  Profiling this stream directly —
    e.g. with :func:`~repro.archsim.stackdist.stack_distance_profile`
    machinery — models the write-back stream's *own* reuse distances
    instead of approximating them from the demand profile.
    """
    l1_block_bytes = _require_power_of_two(l1_block_bytes, "l1_block_bytes")
    l2_block_bytes = _require_power_of_two(l2_block_bytes, "l2_block_bytes")
    if l2_block_bytes < l1_block_bytes:
        raise SimulationError(
            f"l2_block_bytes {l2_block_bytes} must be >= l1_block_bytes "
            f"{l1_block_bytes}"
        )
    ref_sets = _require_power_of_two(ref_sets, "ref_sets")
    if ref_assoc not in (1, 2):
        raise SimulationError(
            f"reference_event_stream supports reference associativity 1 "
            f"or 2 (closed-form replay), got {ref_assoc}"
        )
    ratio_shift = (l2_block_bytes // l1_block_bytes).bit_length() - 1
    buffer = as_buffer(trace)
    n = buffer.addresses.size
    if n == 0:
        return np.empty(0, np.int64), 0
    blocks, aw, kept = _compress(
        buffer.addresses, buffer.is_write, l1_block_bytes
    )
    cascade = _Cascade(blocks, n, aw=aw, t=kept, ref_sets=ref_sets)
    cascade.advance(ref_sets)
    stream_b, _, total = _ref_event_stream(
        cascade, ref_sets, ref_assoc, ratio_shift
    )
    return stream_b.astype(np.int64), total


def two_level_profiles(
    trace: TraceLike,
    *,
    l1_set_counts: Sequence[int],
    l2_set_counts: Sequence[int],
    ref_sets: int,
    ref_assoc: int = 2,
    l1_block_bytes: int = 32,
    l2_block_bytes: int = 64,
    l1_depth_cap: int,
    l2_depth_cap: int,
    l1_min_assoc: int = 1,
    l2_min_assoc: int = 1,
) -> Tuple[Dict[int, SetDistanceProfile], Dict[int, SetDistanceProfile]]:
    """L1 grid profiles plus L2 grid profiles behind a reference L1.

    The L1 cascade runs at ``l1_block_bytes`` over ``l1_set_counts``
    (``ref_sets`` is profiled too, whether or not it was requested); the
    miss + dirty write-back event stream of the reference
    ``(ref_sets, ref_assoc)`` L1 is then reconstructed exactly and
    pushed through a second cascade at ``l2_block_bytes`` over
    ``l2_set_counts``.  L2 profile totals count L2 accesses (demand
    misses + write-backs), so their ``miss_rate`` is the local L2 miss
    rate — bit-identical to
    :class:`~repro.archsim.hierarchy.ArrayTwoLevelHierarchy` under LRU.

    ``ref_assoc`` must be 1 or 2: the replay leans on the closed-form
    hit depth of contracted streams, which stops at depth 2.
    """
    l1_block_bytes = _require_power_of_two(l1_block_bytes, "l1_block_bytes")
    l2_block_bytes = _require_power_of_two(l2_block_bytes, "l2_block_bytes")
    if l2_block_bytes < l1_block_bytes:
        raise SimulationError(
            f"l2_block_bytes {l2_block_bytes} must be >= l1_block_bytes "
            f"{l1_block_bytes}"
        )
    ref_sets = _require_power_of_two(ref_sets, "ref_sets")
    if ref_assoc not in (1, 2):
        raise SimulationError(
            f"two_level_profiles supports reference associativity 1 or 2 "
            f"(closed-form replay), got {ref_assoc}"
        )
    l1_levels = _normalize_set_counts(
        list(l1_set_counts) + [ref_sets], "l1_set_counts"
    )
    l2_requested = list(l2_set_counts)
    l2_levels = (
        _normalize_set_counts(l2_requested, "l2_set_counts")
        if l2_requested else []
    )
    _validate_depths(l1_depth_cap, l1_min_assoc, "l1")
    _validate_depths(l2_depth_cap, l2_min_assoc, "l2")
    if l1_min_assoc > ref_assoc or ref_assoc > l1_depth_cap:
        raise SimulationError(
            f"ref_assoc {ref_assoc} must lie inside the profiled L1 "
            f"range [{l1_min_assoc}, {l1_depth_cap}]"
        )
    ratio_shift = (l2_block_bytes // l1_block_bytes).bit_length() - 1

    buffer = as_buffer(trace)
    n = buffer.addresses.size
    if n == 0:
        l1_profiles = {
            level: _empty_profile(
                l1_block_bytes, level, l1_depth_cap, l1_min_assoc
            )
            for level in l1_levels
        }
        l2_profiles = {
            level: _empty_profile(
                l2_block_bytes, level, l2_depth_cap, l2_min_assoc
            )
            for level in l2_levels
        }
        return l1_profiles, l2_profiles

    blocks, aw, kept = _compress(
        buffer.addresses, buffer.is_write, l1_block_bytes
    )
    cascade = _Cascade(blocks, n, aw=aw, t=kept, ref_sets=ref_sets)
    for level in l1_levels:
        cascade.advance(level)
    l1_bins = cascade.grid_bins(l1_min_assoc, l1_depth_cap)
    l1_profiles = _profiles_from_cascade(
        cascade, l1_bins, l1_block_bytes, l1_depth_cap, l1_min_assoc
    )
    if not l2_levels:
        return l1_profiles, {}

    stream_b, stream_r, total = _ref_event_stream(
        cascade, ref_sets, ref_assoc, ratio_shift
    )
    if total == 0:
        return l1_profiles, {
            level: _empty_profile(
                l2_block_bytes, level, l2_depth_cap, l2_min_assoc
            )
            for level in l2_levels
        }
    # contract the event stream once, mask block ids down to the finest
    # requested set bits (narrow carry), and rank-key equality
    keep2 = np.empty(total, bool)
    keep2[0] = True
    np.not_equal(stream_r[1:], stream_r[:-1], out=keep2[1:])
    kept2 = np.flatnonzero(keep2).astype(np.int32)
    max_sets = l2_levels[-1]
    masked = stream_b[kept2] & stream_b.dtype.type(max_sets - 1)
    if max_sets <= 65536:
        carry = masked.astype(np.uint16)
    else:
        carry = masked.astype(np.int32)
    cascade2 = _Cascade(carry, total, rank=stream_r[kept2])
    for level in l2_levels:
        cascade2.advance(level)
    l2_bins = cascade2.grid_bins(l2_min_assoc, l2_depth_cap)
    l2_profiles = _profiles_from_cascade(
        cascade2, l2_bins, l2_block_bytes, l2_depth_cap, l2_min_assoc
    )
    return l1_profiles, l2_profiles
