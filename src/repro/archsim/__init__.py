"""Architectural simulation substrate.

Section 5 of the paper uses "architectural simulations to gather cache
access statistics for each L1 and L2 cache size combination", collected
from SPEC2000, SPECWEB and TPC-C.  We do not have those proprietary traces
or the authors' simulator, so this package builds the equivalent pipeline:

* :mod:`~repro.archsim.trace` — memory-access records, streams, and the
  struct-of-arrays :class:`TraceBuffer` the array engines consume;
* :mod:`~repro.archsim.workloads` — seeded synthetic address generators
  parameterised to reproduce the published locality profiles of the three
  suites (power-law reuse + streaming + working-set mixes), in both
  per-record and vectorized (:func:`synthetic_trace_buffer`) forms;
* :mod:`~repro.archsim.replacement` — LRU / FIFO / random policies;
* :mod:`~repro.archsim.setassoc` — write-back set-associative caches:
  per-record with pluggable policies, and the chunked array engine with
  LRU / FIFO / seeded-random fast paths;
* :mod:`~repro.archsim.hierarchy` — the two-level L1/L2/memory system
  (per-record and array variants, statistics bit-identical);
* :mod:`~repro.archsim.multiconfig` — the batched calibration engine:
  simulates a whole (L1, L2) configuration grid in one trace sweep with
  generated fused kernels, bit-identical per point to
  :class:`ArrayTwoLevelHierarchy`;
* :mod:`~repro.archsim.stats` — hit/miss accounting;
* :mod:`~repro.archsim.missmodel` — an analytical miss-rate model
  calibrated against the simulator (parallel + disk-memoized), used by
  the optimisers so that design sweeps don't re-simulate millions of
  accesses per candidate;
* :mod:`~repro.archsim.stackdist` — Mattson stack-distance profiling in
  O(n log n) (vectorized offline + streaming Fenwick engines; one pass
  predicts the whole miss-rate-vs-size curve);
* :mod:`~repro.archsim.setdist` — the per-set generalisation: one
  contraction-cascade pass answers every set-associative (size, assoc)
  LRU point exactly, the engine behind ``estimator="setdist"``
  calibration;
* :mod:`~repro.archsim.amat` — average memory access time.
"""

from repro.archsim.trace import (
    DEFAULT_CHUNK,
    MemoryAccess,
    TraceBuffer,
    TraceStream,
    as_buffer,
)
from repro.archsim.stats import CacheStats
from repro.archsim.replacement import (
    ReplacementPolicy,
    LruPolicy,
    FifoPolicy,
    RandomPolicy,
    make_policy,
)
from repro.archsim.setassoc import ArraySetAssociativeCache, SetAssociativeCache
from repro.archsim.hierarchy import (
    ArrayTwoLevelHierarchy,
    HierarchyResult,
    TwoLevelHierarchy,
    simulate_hierarchy,
)
from repro.archsim.workloads import (
    WorkloadSpec,
    synthetic_trace,
    synthetic_trace_buffer,
    synthetic_trace_chunks,
    SPEC2000_LIKE,
    SPECWEB_LIKE,
    TPCC_LIKE,
    STANDARD_WORKLOADS,
)
from repro.archsim.multiconfig import (
    MultiConfigHierarchyEngine,
    simulate_configurations,
)
from repro.archsim.missmodel import (
    MissRateModel,
    blended_miss_model,
    calibrated_miss_model,
    measure_miss_model,
)
from repro.archsim.setdist import (
    SetDistanceProfile,
    per_set_profiles,
    two_level_profiles,
)
from repro.archsim.stackdist import (
    FenwickTree,
    OlkenProfiler,
    StackDistanceProfile,
    stack_distance_profile,
)
from repro.archsim.amat import amat_two_level

__all__ = [
    "DEFAULT_CHUNK",
    "MemoryAccess",
    "TraceBuffer",
    "TraceStream",
    "as_buffer",
    "CacheStats",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
    "SetAssociativeCache",
    "ArraySetAssociativeCache",
    "TwoLevelHierarchy",
    "ArrayTwoLevelHierarchy",
    "HierarchyResult",
    "simulate_hierarchy",
    "MultiConfigHierarchyEngine",
    "simulate_configurations",
    "WorkloadSpec",
    "synthetic_trace",
    "synthetic_trace_buffer",
    "synthetic_trace_chunks",
    "SPEC2000_LIKE",
    "SPECWEB_LIKE",
    "TPCC_LIKE",
    "STANDARD_WORKLOADS",
    "MissRateModel",
    "blended_miss_model",
    "calibrated_miss_model",
    "measure_miss_model",
    "StackDistanceProfile",
    "stack_distance_profile",
    "FenwickTree",
    "OlkenProfiler",
    "SetDistanceProfile",
    "per_set_profiles",
    "two_level_profiles",
    "amat_two_level",
]
