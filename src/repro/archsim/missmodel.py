"""Analytical miss-rate model calibrated against the simulator.

The Section 5 optimisers sweep dozens of (L1 size, L2 size, knob) design
points; re-simulating hundreds of thousands of accesses per point would
dominate runtime without changing the answer.  Instead, the simulator is
run once per (workload, cache size) on a reference grid and the resulting
local miss-rate curves are interpolated in log2(size) — the standard
shape of miss-rate-vs-size data.

``CALIBRATED_TABLES`` holds curves pre-measured with
:func:`measure_miss_model` (2 M accesses, seed 1, L1 32 B blocks / 2-way,
L2 64 B blocks / 8-way, the L2 curve measured behind a 16 KB L1).  The
test suite re-measures them against a live simulation with a tolerance,
so the table cannot silently drift from the simulator.

Note the L2 *local* miss-rate convention: misses over L2 accesses.  The
curves bake in the reference L1's filtering; Section 5's experiments vary
one level at a time around that reference point, matching the paper's
methodology of per-combination architectural runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import SimulationError
from repro.archsim.hierarchy import TwoLevelHierarchy
from repro.archsim.workloads import STANDARD_WORKLOADS, WorkloadSpec, synthetic_trace
from repro.cache.config import CacheConfig

#: Reference shapes used for calibration.
REFERENCE_L1_BLOCK = 32
REFERENCE_L1_ASSOC = 2
REFERENCE_L2_BLOCK = 64
REFERENCE_L2_ASSOC = 8
REFERENCE_L1_KB = 16
REFERENCE_L2_KB = 1024

#: Sizes (KiB) on the calibration grid.
L1_GRID_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)
L2_GRID_KB: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)


def _interpolate_log2(curve: Dict[int, float], size_bytes: int) -> float:
    """Piecewise-linear interpolation of miss rate in log2(size).

    Clamps outside the grid (miss curves flatten at both ends).
    """
    if size_bytes <= 0:
        raise SimulationError(f"size must be positive, got {size_bytes}")
    points = sorted(curve.items())
    x = math.log2(size_bytes)
    xs = [math.log2(size) for size, _ in points]
    ys = [rate for _, rate in points]
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    for i in range(1, len(xs)):
        if x <= xs[i]:
            t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
            return ys[i - 1] + t * (ys[i] - ys[i - 1])
    return ys[-1]


@dataclass(frozen=True)
class MissRateModel:
    """Interpolated local miss-rate curves for one workload.

    Attributes
    ----------
    workload:
        Suite name.
    l1_curve / l2_curve:
        size-bytes -> local miss rate measurement grids.
    """

    workload: str
    l1_curve: Tuple[Tuple[int, float], ...]
    l2_curve: Tuple[Tuple[int, float], ...]

    def l1_miss_rate(self, size_bytes: int) -> float:
        """Local L1 miss rate at the given capacity."""
        return _interpolate_log2(dict(self.l1_curve), size_bytes)

    def l2_local_miss_rate(self, size_bytes: int) -> float:
        """Local L2 miss rate at the given capacity (behind the ref L1)."""
        return _interpolate_log2(dict(self.l2_curve), size_bytes)


def measure_miss_model(
    spec: WorkloadSpec,
    n_accesses: int = 300_000,
    seed: int = 1,
    l1_grid_kb: Sequence[int] = L1_GRID_KB,
    l2_grid_kb: Sequence[int] = L2_GRID_KB,
) -> MissRateModel:
    """Measure a fresh :class:`MissRateModel` by simulation.

    The L1 curve is measured with the reference L2; the L2 curve with the
    reference L1 (the paper's one-variable-at-a-time methodology).
    """
    l1_curve = []
    for kb in l1_grid_kb:
        hierarchy = TwoLevelHierarchy(
            CacheConfig(
                size_bytes=kb * 1024,
                block_bytes=REFERENCE_L1_BLOCK,
                associativity=REFERENCE_L1_ASSOC,
                name="L1",
            ),
            CacheConfig(
                size_bytes=REFERENCE_L2_KB * 1024,
                block_bytes=REFERENCE_L2_BLOCK,
                associativity=REFERENCE_L2_ASSOC,
                name="L2",
            ),
        )
        result = hierarchy.run(
            synthetic_trace(spec, n_accesses, seed=seed, block_bytes=64)
        )
        l1_curve.append((kb * 1024, result.l1_miss_rate))

    l2_curve = []
    for kb in l2_grid_kb:
        hierarchy = TwoLevelHierarchy(
            CacheConfig(
                size_bytes=REFERENCE_L1_KB * 1024,
                block_bytes=REFERENCE_L1_BLOCK,
                associativity=REFERENCE_L1_ASSOC,
                name="L1",
            ),
            CacheConfig(
                size_bytes=kb * 1024,
                block_bytes=REFERENCE_L2_BLOCK,
                associativity=REFERENCE_L2_ASSOC,
                name="L2",
            ),
        )
        result = hierarchy.run(
            synthetic_trace(spec, n_accesses, seed=seed, block_bytes=64)
        )
        l2_curve.append((kb * 1024, result.l2_local_miss_rate))

    return MissRateModel(
        workload=spec.name,
        l1_curve=tuple(l1_curve),
        l2_curve=tuple(l2_curve),
    )


#: Pre-measured curves (2,000,000 accesses, seed 1; see module docstring
#: for the reference shapes).  Regenerate with
#: ``python tools/calibrate_missmodel.py``.
CALIBRATED_TABLES: Dict[str, MissRateModel] = {
    "spec2000": MissRateModel(
        workload="spec2000",
        l1_curve=(
            (4096, 0.06104),
            (8192, 0.05870),
            (16384, 0.05704),
            (32768, 0.05573),
            (65536, 0.05469),
        ),
        l2_curve=(
            (131072, 0.55718),
            (262144, 0.52964),
            (524288, 0.48001),
            (1048576, 0.39601),
            (2097152, 0.29803),
            (4194304, 0.27988),
            (8388608, 0.27986),
        ),
    ),
    "specweb": MissRateModel(
        workload="specweb",
        l1_curve=(
            (4096, 0.08273),
            (8192, 0.08008),
            (16384, 0.07823),
            (32768, 0.07692),
            (65536, 0.07584),
        ),
        l2_curve=(
            (131072, 0.54397),
            (262144, 0.53274),
            (524288, 0.51434),
            (1048576, 0.48206),
            (2097152, 0.43059),
            (4194304, 0.37623),
            (8388608, 0.36628),
        ),
    ),
    "tpcc": MissRateModel(
        workload="tpcc",
        l1_curve=(
            (4096, 0.11692),
            (8192, 0.11361),
            (16384, 0.11133),
            (32768, 0.10975),
            (65536, 0.10848),
        ),
        l2_curve=(
            (131072, 0.69447),
            (262144, 0.68569),
            (524288, 0.67317),
            (1048576, 0.65165),
            (2097152, 0.61260),
            (4194304, 0.55133),
            (8388608, 0.49478),
        ),
    ),
}


def blended_miss_model(weights: Dict[str, float] = None) -> MissRateModel:
    """Return a weighted blend of the calibrated workload curves.

    The paper aggregates "results from various benchmark suites such as
    SPEC2000, SPECWEB, TPC/C, etc."; this helper produces the aggregate
    profile.  ``weights`` maps workload name -> weight (normalised
    internally); default is an equal blend of the three standard suites.
    """
    if weights is None:
        weights = {name: 1.0 for name in STANDARD_WORKLOADS}
    if not weights:
        raise SimulationError("blend needs at least one workload")
    total = sum(weights.values())
    if total <= 0:
        raise SimulationError("blend weights must sum to a positive value")
    models = {
        name: calibrated_miss_model(name) for name in weights
    }
    reference = next(iter(models.values()))
    l1_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l1_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l1_curve
    )
    l2_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l2_local_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l2_curve
    )
    label = "+".join(sorted(weights))
    return MissRateModel(
        workload=f"blend({label})", l1_curve=l1_curve, l2_curve=l2_curve
    )


def calibrated_miss_model(workload: str = "spec2000") -> MissRateModel:
    """Return the pre-measured model for a standard workload.

    Falls back to a live measurement if the table has not been populated
    for that workload (slower, but always available).
    """
    if workload in CALIBRATED_TABLES:
        return CALIBRATED_TABLES[workload]
    if workload not in STANDARD_WORKLOADS:
        raise SimulationError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(STANDARD_WORKLOADS)}"
        )
    model = measure_miss_model(STANDARD_WORKLOADS[workload])
    CALIBRATED_TABLES[workload] = model
    return model
