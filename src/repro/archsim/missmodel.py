"""Analytical miss-rate model calibrated against the simulator.

The Section 5 optimisers sweep dozens of (L1 size, L2 size, knob) design
points; re-simulating hundreds of thousands of accesses per point would
dominate runtime without changing the answer.  Instead, the simulator is
run once per (workload, cache size) on a reference grid and the resulting
local miss-rate curves are interpolated in log2(size) — the standard
shape of miss-rate-vs-size data.

``CALIBRATED_TABLES`` holds curves pre-measured with
:func:`measure_miss_model` (2 M accesses, seed 1, L1 32 B blocks / 2-way,
L2 64 B blocks / 8-way, the L2 curve measured behind a 16 KB L1).  The
test suite re-measures them against a live simulation with a tolerance,
so the table cannot silently drift from the simulator.

Calibration itself is engineered for scale: the default
``engine="multiconfig"`` path simulates the *entire* (level, size) grid
in one sweep over the trace
(:class:`~repro.archsim.multiconfig.MultiConfigHierarchyEngine` — one
address decode, shared set indices, the reference L1 in front of the L2
grid simulated once), bit-identical to the per-point ``engine="array"``
fallback at a fraction of the cost.  ``jobs=N`` fans lane-coherent
shards of the grid over a ``ProcessPoolExecutor``, every worker
streaming chunks of one shared memory-mapped trace (materialised once,
never regenerated per point), and the measured curves are memoised on
disk keyed by a fingerprint of every input (workload spec, trace
length, seed, grids, reference shapes, engine) — a warm re-calibration
is a file read.

Note the L2 *local* miss-rate convention: misses over L2 accesses.  The
curves bake in the reference L1's filtering; Section 5's experiments vary
one level at a time around that reference point, matching the paper's
methodology of per-combination architectural runs.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.archsim.hierarchy import ArrayTwoLevelHierarchy, TwoLevelHierarchy
from repro.archsim.multiconfig import MultiConfigHierarchyEngine
from repro.archsim.trace import TraceBuffer
from repro.archsim.workloads import (
    STANDARD_WORKLOADS,
    WorkloadSpec,
    synthetic_trace,
    synthetic_trace_buffer,
)
from repro.cache.config import CacheConfig
from repro.perf.disk_cache import DiskCache, make_fingerprint

#: Reference shapes used for calibration.
REFERENCE_L1_BLOCK = 32
REFERENCE_L1_ASSOC = 2
REFERENCE_L2_BLOCK = 64
REFERENCE_L2_ASSOC = 8
REFERENCE_L1_KB = 16
REFERENCE_L2_KB = 1024

#: Sizes (KiB) on the calibration grid.
L1_GRID_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)
L2_GRID_KB: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)


def _interpolate_log2(curve: Dict[int, float], size_bytes: int) -> float:
    """Piecewise-linear interpolation of miss rate in log2(size).

    Clamps outside the grid (miss curves flatten at both ends).
    """
    if size_bytes <= 0:
        raise SimulationError(f"size must be positive, got {size_bytes}")
    points = sorted(curve.items())
    x = math.log2(size_bytes)
    xs = [math.log2(size) for size, _ in points]
    ys = [rate for _, rate in points]
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    for i in range(1, len(xs)):
        if x <= xs[i]:
            t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
            return ys[i - 1] + t * (ys[i] - ys[i - 1])
    return ys[-1]


@dataclass(frozen=True)
class MissRateModel:
    """Interpolated local miss-rate curves for one workload.

    Attributes
    ----------
    workload:
        Suite name.
    l1_curve / l2_curve:
        size-bytes -> local miss rate measurement grids.
    """

    workload: str
    l1_curve: Tuple[Tuple[int, float], ...]
    l2_curve: Tuple[Tuple[int, float], ...]

    def l1_miss_rate(self, size_bytes: int) -> float:
        """Local L1 miss rate at the given capacity."""
        return _interpolate_log2(dict(self.l1_curve), size_bytes)

    def l2_local_miss_rate(self, size_bytes: int) -> float:
        """Local L2 miss rate at the given capacity (behind the ref L1)."""
        return _interpolate_log2(dict(self.l2_curve), size_bytes)


#: Bump when measurement semantics change: it is folded into the disk
#: fingerprint, so stale cached curves can never be served.  Format 6:
#: the ``"setdist"`` estimator joins the estimator axis (exact per-set
#: Mattson profiling, bit-identical to the grid path for LRU), re-keying
#: every entry.  Format 5 added the replacement policy and canonical
#: fingerprint parts.
_CALIBRATION_FORMAT = 6

#: Replacement policies the calibration engines support.
_POLICIES = ("lru", "fifo", "random")


def _point_configs(level: str, kb: int) -> Tuple[CacheConfig, CacheConfig]:
    """L1/L2 shapes for one calibration point (vary one level at a time)."""
    l1_kb = kb if level == "l1" else REFERENCE_L1_KB
    l2_kb = kb if level == "l2" else REFERENCE_L2_KB
    return (
        CacheConfig(
            size_bytes=l1_kb * 1024,
            block_bytes=REFERENCE_L1_BLOCK,
            associativity=REFERENCE_L1_ASSOC,
            name="L1",
        ),
        CacheConfig(
            size_bytes=l2_kb * 1024,
            block_bytes=REFERENCE_L2_BLOCK,
            associativity=REFERENCE_L2_ASSOC,
            name="L2",
        ),
    )


def _measure_point(
    spec: WorkloadSpec,
    level: str,
    kb: int,
    n_accesses: int,
    seed: int,
    engine: str,
    policy: str = "lru",
) -> float:
    """Simulate one (level, size) point; returns its local miss rate.

    Module-level so :class:`ProcessPoolExecutor` workers can pickle it.
    """
    l1_config, l2_config = _point_configs(level, kb)
    if engine == "array":
        result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
            synthetic_trace_buffer(spec, n_accesses, seed=seed, block_bytes=64)
        )
    else:
        result = TwoLevelHierarchy(l1_config, l2_config, policy).run(
            synthetic_trace(spec, n_accesses, seed=seed, block_bytes=64)
        )
    return result.l1_miss_rate if level == "l1" else result.l2_local_miss_rate


def _multiconfig_rates(
    points: Sequence[Tuple[str, int]], trace, policy: str = "lru"
) -> List[float]:
    """Simulate every (level, size) point in one multi-config sweep.

    L1-curve points only contribute their L1 miss rate, so their shared
    reference L2 is elided entirely (``l2_config=None``): the engine
    simulates each distinct L1 shape once as a lane and the reference L1
    feeding the whole L2 grid once, instead of one full hierarchy per
    point.  Rates are bit-identical to per-point ``engine="array"`` runs
    under every policy: random-policy rng streams live per cache (not
    per shard), so the sweep matches each point's own seeded draws.
    """
    engine_points = []
    for level, kb in points:
        l1_config, l2_config = _point_configs(level, kb)
        engine_points.append(
            (l1_config, None) if level == "l1" else (l1_config, l2_config)
        )
    results = MultiConfigHierarchyEngine(engine_points, policy).run(trace)
    return [
        result.l1_miss_rate if level == "l1" else result.l2_local_miss_rate
        for (level, _), result in zip(points, results)
    ]


def _load_trace_files(addresses_path: str, writes_path: str) -> TraceBuffer:
    """Memory-map a materialised trace (see :func:`_materialize_trace`).

    ``mmap_mode="r"`` keeps the arrays backed by the page cache, so N
    pool workers share one physical copy of the trace instead of
    regenerating (or unpickling) it N times.
    """
    return TraceBuffer(
        np.load(addresses_path, mmap_mode="r"),
        np.load(writes_path, mmap_mode="r"),
    )


def _measure_shard(
    shard: Sequence[Tuple[str, int]],
    addresses_path: str,
    writes_path: str,
    engine: str,
    policy: str = "lru",
) -> List[float]:
    """Worker entry: rates for one shard of the grid off the shared trace."""
    trace = _load_trace_files(addresses_path, writes_path)
    if engine == "multiconfig":
        return _multiconfig_rates(shard, trace, policy)
    rates = []
    for level, kb in shard:
        l1_config, l2_config = _point_configs(level, kb)
        result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
            trace
        )
        rates.append(
            result.l1_miss_rate if level == "l1"
            else result.l2_local_miss_rate
        )
    return rates


def _shard_points(
    points: Sequence[Tuple[str, int]], jobs: int
) -> List[List[Tuple[str, int]]]:
    """Partition grid points into at most ``jobs`` lane-coherent shards.

    Points sharing an L1 shape stay together (all L2-curve points sit
    behind the one reference L1), so no worker re-simulates a lane
    another worker already owns; each L2-curve point costs roughly one
    follower, so shards are balanced greedily by point count.
    """
    groups: Dict[Tuple[int, int, int], List[Tuple[str, int]]] = {}
    for level, kb in points:
        l1_config, _ = _point_configs(level, kb)
        key = (
            l1_config.size_bytes,
            l1_config.block_bytes,
            l1_config.associativity,
        )
        groups.setdefault(key, []).append((level, kb))
    shards: List[List[Tuple[str, int]]] = [[] for _ in range(jobs)]
    for group in sorted(groups.values(), key=len, reverse=True):
        min(shards, key=len).extend(group)
    return [shard for shard in shards if shard]


def _calibration_fingerprint(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    engine: str,
    estimator: str,
    policy: str,
) -> str:
    """Fold every input that determines the curves into one string.

    The engine tag participates: ``"multiconfig"`` and ``"array"``
    produce bit-identical curves, but keying them separately keeps the
    invalidation contract trivial — any semantic divergence ever
    introduced between engines can never serve a stale entry.
    """
    return make_fingerprint(
        _CALIBRATION_FORMAT,
        spec,
        n_accesses,
        seed,
        tuple(l1_grid_kb),
        tuple(l2_grid_kb),
        (REFERENCE_L1_BLOCK, REFERENCE_L1_ASSOC, REFERENCE_L1_KB),
        (REFERENCE_L2_BLOCK, REFERENCE_L2_ASSOC, REFERENCE_L2_KB),
        engine,
        estimator,
        policy,
    )


def _stackdist_estimate(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
) -> MissRateModel:
    """Estimate both curves from one stack-distance pass over the trace.

    Mattson's inclusion property turns a single O(n log n) profile into
    the miss rate of *every* fully-associative LRU capacity at once, so
    the whole (level, size) grid costs two profiling passes (one per
    block granularity) instead of one simulation per point.  The price is
    a model mismatch — the grid path simulates the real set-associative
    shapes — quantified by the test suite; it is the cheap first look,
    not the calibration of record.

    The L2 *local* rate is derived from global rates: with the reference
    L1 as the filter, the L2 serves the reference L1's misses *plus its
    dirty write-backs*, so
    ``local(C2) = global_64B(C2) / (global_32B(ref L1) * (1 + wb))``
    clamped to 1, where ``wb`` is the reference L1's measured
    write-backs-per-miss ratio.  The write-back stream is measured
    exactly — one L1-only lane of the multi-config engine over the same
    trace — which removes the denominator half of the estimator's
    historical positive bias.  The remaining error (the L1 filter
    reorders and write-extends the stream the L2 sees, which the global
    profile cannot model) is pinned by
    ``tests/archsim/test_missmodel_stackdist.py``; the L1 error is
    negligible.
    """
    from repro.archsim.stackdist import stack_distance_profile

    buffer = synthetic_trace_buffer(spec, n_accesses, seed=seed, block_bytes=64)
    profile_l1 = stack_distance_profile(
        buffer, block_bytes=REFERENCE_L1_BLOCK
    )
    l1_rates = profile_l1.miss_curve(
        [kb * 1024 // REFERENCE_L1_BLOCK for kb in l1_grid_kb]
    )
    filter_rate = profile_l1.miss_rate(
        REFERENCE_L1_KB * 1024 // REFERENCE_L1_BLOCK
    )
    profile_l2 = stack_distance_profile(
        buffer, block_bytes=REFERENCE_L2_BLOCK
    )
    l2_global = profile_l2.miss_curve(
        [kb * 1024 // REFERENCE_L2_BLOCK for kb in l2_grid_kb]
    )
    reference_l1, _ = _point_configs("l2", REFERENCE_L2_KB)
    reference = MultiConfigHierarchyEngine([(reference_l1, None)]).run(
        buffer
    )[0]
    writeback_ratio = (
        reference.l1.writebacks / reference.l1.misses
        if reference.l1.misses else 0.0
    )
    l2_denominator = filter_rate * (1.0 + writeback_ratio)
    return MissRateModel(
        workload=spec.name,
        l1_curve=tuple(
            (kb * 1024, l1_rates[kb * 1024 // REFERENCE_L1_BLOCK])
            for kb in l1_grid_kb
        ),
        l2_curve=tuple(
            (
                kb * 1024,
                min(
                    1.0,
                    l2_global[kb * 1024 // REFERENCE_L2_BLOCK]
                    / l2_denominator,
                )
                if l2_denominator > 0.0
                else 0.0,
            )
            for kb in l2_grid_kb
        ),
    )


def _reference_sets(level: str, kb: int) -> int:
    """Set count of one grid point on its level's reference shape."""
    block, assoc = (
        (REFERENCE_L1_BLOCK, REFERENCE_L1_ASSOC)
        if level == "l1"
        else (REFERENCE_L2_BLOCK, REFERENCE_L2_ASSOC)
    )
    size_bytes = kb * 1024
    sets = size_bytes // (block * assoc)
    if sets < 1 or sets * block * assoc != size_bytes:
        raise SimulationError(
            f"{level} size {kb} KiB does not divide into {assoc}-way "
            f"{block}-byte sets"
        )
    return sets


def _setdist_rates(
    points: Sequence[Tuple[str, int]], trace
) -> List[float]:
    """Exact LRU rates for every (level, size) point in one per-set pass.

    The per-set Mattson profiler (:mod:`repro.archsim.setdist`) turns
    each point into a ``(n_sets, assoc)`` lookup on its level's
    reference shape: one contraction cascade over the trace covers the
    whole L1 grid, the reference L1's miss + dirty write-back stream is
    replayed exactly through a second cascade for the L2 grid, and every
    rate is bit-identical to :func:`_multiconfig_rates` under LRU — at a
    cost that is independent of how many grid points are requested.
    """
    from repro.archsim.setdist import two_level_profiles

    sets_for = {point: _reference_sets(*point) for point in points}
    l1_set_counts = sorted(
        {sets for (level, _), sets in sets_for.items() if level == "l1"}
    )
    l2_set_counts = sorted(
        {sets for (level, _), sets in sets_for.items() if level == "l2"}
    )
    l1_profiles, l2_profiles = two_level_profiles(
        trace,
        l1_set_counts=l1_set_counts,
        l2_set_counts=l2_set_counts,
        ref_sets=_reference_sets("l1", REFERENCE_L1_KB),
        ref_assoc=REFERENCE_L1_ASSOC,
        l1_block_bytes=REFERENCE_L1_BLOCK,
        l2_block_bytes=REFERENCE_L2_BLOCK,
        l1_depth_cap=REFERENCE_L1_ASSOC,
        l2_depth_cap=REFERENCE_L2_ASSOC,
        l1_min_assoc=REFERENCE_L1_ASSOC,
        l2_min_assoc=REFERENCE_L2_ASSOC,
    )
    return [
        l1_profiles[sets_for[point]].miss_rate(REFERENCE_L1_ASSOC)
        if point[0] == "l1"
        else l2_profiles[sets_for[point]].miss_rate(REFERENCE_L2_ASSOC)
        for point in points
    ]


def _setdist_estimate(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
) -> MissRateModel:
    """Measure both curves exactly with the per-set Mattson profiler.

    Unlike :func:`_stackdist_estimate` this is not an approximation:
    per-set stack distances answer the real set-associative reference
    shapes, so the curves are bit-identical to the grid estimator under
    LRU while the trace pass costs the same whether the grids hold 12
    points or 200 (see ``docs/PERFORMANCE.md``).
    """
    buffer = synthetic_trace_buffer(
        spec, n_accesses, seed=seed, block_bytes=64
    )
    points: List[Tuple[str, int]] = [("l1", kb) for kb in l1_grid_kb]
    points += [("l2", kb) for kb in l2_grid_kb]
    rates = dict(zip(points, _setdist_rates(points, buffer)))
    return MissRateModel(
        workload=spec.name,
        l1_curve=tuple(
            (kb * 1024, rates[("l1", kb)]) for kb in l1_grid_kb
        ),
        l2_curve=tuple(
            (kb * 1024, rates[("l2", kb)]) for kb in l2_grid_kb
        ),
    )


def measure_miss_model(
    spec: WorkloadSpec,
    n_accesses: int = 300_000,
    seed: int = 1,
    l1_grid_kb: Sequence[int] = L1_GRID_KB,
    l2_grid_kb: Sequence[int] = L2_GRID_KB,
    jobs: Optional[int] = None,
    use_disk_cache: bool = True,
    cache_dir=None,
    engine: str = "multiconfig",
    estimator: str = "grid",
    policy: str = "lru",
) -> MissRateModel:
    """Measure a fresh :class:`MissRateModel` by simulation.

    The L1 curve is measured with the reference L2; the L2 curve with the
    reference L1 (the paper's one-variable-at-a-time methodology).

    Parameters beyond the grids:

    jobs:
        Fan lane-coherent shards of the grid over a
        ``ProcessPoolExecutor`` with this many workers.  The trace is
        materialised to disk once (``.npy``) and every worker streams
        chunks of the same memory-mapped copy — nothing is regenerated
        per point.  ``None`` (default) runs serially in-process, where
        one in-memory buffer feeds the whole grid.  Results are
        identical either way; serial is usually faster below ~10 M
        accesses because the multi-config sweep already shares most of
        the work a second worker would duplicate.
    use_disk_cache / cache_dir:
        Memoise the measured curves on disk
        (:class:`repro.perf.DiskCache`, namespace ``missmodel``), keyed
        by a fingerprint of the workload spec, trace length, seed,
        grids, reference cache shapes, and engine.  A warm call is a
        file read.
    engine:
        ``"multiconfig"`` (default) simulates the whole grid in one
        sweep (:class:`~repro.archsim.multiconfig.MultiConfigHierarchyEngine`);
        ``"array"`` runs the chunked array hierarchy once per point —
        bit-identical curves, kept as the cross-check and non-LRU
        escape hatch; ``"object"`` keeps the original per-record
        generator/simulator pair (the cross-validation path, serial
        only under ``jobs``'s sharding too).
    estimator:
        ``"grid"`` (default) simulates every (level, size) point on the
        set-associative reference shapes; ``"setdist"`` answers the same
        grid exactly — bit-identical curves — from one per-set
        stack-distance pass whose cost does not grow with the grid (see
        :func:`_setdist_estimate`); ``"stackdist"`` derives the grid
        from one fully-associative profile — cheaper still, but an
        approximation with a quantified accuracy cost (see
        :func:`_stackdist_estimate`).  ``engine`` and ``jobs`` are
        irrelevant to both profiling estimators.
    policy:
        Replacement policy at both levels — ``"lru"`` (default),
        ``"fifo"`` or ``"random"``; every engine produces bit-identical
        curves per policy.  The stackdist and setdist estimators are
        Mattson stack-algorithm constructions, which only model LRU.
    """
    if engine not in ("multiconfig", "array", "object"):
        raise SimulationError(
            f"unknown engine {engine!r}; expected 'multiconfig', "
            f"'array' or 'object'"
        )
    if estimator not in ("grid", "stackdist", "setdist"):
        raise SimulationError(
            f"unknown estimator {estimator!r}; expected 'grid', "
            f"'stackdist' or 'setdist'"
        )
    if policy not in _POLICIES:
        raise SimulationError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if estimator != "grid" and policy != "lru":
        raise SimulationError(
            f"estimator={estimator!r} models LRU only (Mattson stack "
            f"distances have no meaning under {policy!r}); use the grid "
            "estimator for non-LRU policies"
        )
    fingerprint = _calibration_fingerprint(
        spec, n_accesses, seed, l1_grid_kb, l2_grid_kb, engine, estimator,
        policy,
    )
    cache = (
        DiskCache("missmodel", directory=cache_dir) if use_disk_cache else None
    )
    if cache is not None:
        payload = cache.load(fingerprint)
        if payload is not None:
            return MissRateModel(
                workload=payload["workload"],
                l1_curve=tuple(
                    (int(size), float(rate))
                    for size, rate in payload["l1_curve"]
                ),
                l2_curve=tuple(
                    (int(size), float(rate))
                    for size, rate in payload["l2_curve"]
                ),
            )

    if estimator in ("stackdist", "setdist"):
        estimate = (
            _stackdist_estimate if estimator == "stackdist"
            else _setdist_estimate
        )
        model = estimate(
            spec, n_accesses, seed, l1_grid_kb, l2_grid_kb
        )
        if cache is not None:
            cache.store(
                fingerprint,
                {
                    "workload": model.workload,
                    "l1_curve": [list(point) for point in model.l1_curve],
                    "l2_curve": [list(point) for point in model.l2_curve],
                },
            )
        return model

    points: List[Tuple[str, int]] = [("l1", kb) for kb in l1_grid_kb]
    points += [("l2", kb) for kb in l2_grid_kb]
    if (
        jobs is not None and jobs > 1 and len(points) > 1
        and engine in ("multiconfig", "array")
    ):
        # Materialise the trace once; workers stream chunk views of the
        # same memory-mapped arrays instead of regenerating it.
        shards = _shard_points(points, jobs)
        scratch = tempfile.mkdtemp(prefix="repro-missmodel-")
        try:
            buffer = synthetic_trace_buffer(
                spec, n_accesses, seed=seed, block_bytes=64
            )
            addresses_path = os.path.join(scratch, "addresses.npy")
            writes_path = os.path.join(scratch, "writes.npy")
            np.save(addresses_path, buffer.addresses)
            np.save(writes_path, buffer.is_write)
            del buffer
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                shard_rates = list(
                    pool.map(
                        _measure_shard,
                        shards,
                        [addresses_path] * len(shards),
                        [writes_path] * len(shards),
                        [engine] * len(shards),
                        [policy] * len(shards),
                    )
                )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        by_point = {
            point: rate
            for shard, measured in zip(shards, shard_rates)
            for point, rate in zip(shard, measured)
        }
        rates = [by_point[point] for point in points]
    elif engine == "multiconfig":
        # Serial fast path: one sweep of one trace buffer covers the grid.
        buffer = synthetic_trace_buffer(
            spec, n_accesses, seed=seed, block_bytes=64
        )
        rates = _multiconfig_rates(points, buffer, policy)
    elif engine == "array":
        # Per-point fallback: one trace buffer feeds every point.
        buffer = synthetic_trace_buffer(
            spec, n_accesses, seed=seed, block_bytes=64
        )
        rates = []
        for level, kb in points:
            l1_config, l2_config = _point_configs(level, kb)
            result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
                buffer
            )
            rates.append(
                result.l1_miss_rate
                if level == "l1"
                else result.l2_local_miss_rate
            )
    else:
        rates = [
            _measure_point(spec, level, kb, n_accesses, seed, engine, policy)
            for level, kb in points
        ]

    curves = dict(zip(points, rates))
    model = MissRateModel(
        workload=spec.name,
        l1_curve=tuple(
            (kb * 1024, curves[("l1", kb)]) for kb in l1_grid_kb
        ),
        l2_curve=tuple(
            (kb * 1024, curves[("l2", kb)]) for kb in l2_grid_kb
        ),
    )
    if cache is not None:
        cache.store(
            fingerprint,
            {
                "workload": model.workload,
                "l1_curve": [list(point) for point in model.l1_curve],
                "l2_curve": [list(point) for point in model.l2_curve],
            },
        )
    return model


#: Pre-measured curves (2,000,000 accesses, seed 1; the default
#: ``engine="multiconfig"`` sweep and the per-point ``engine="array"``
#: path produce these bit-identically — see module docstring for the
#: reference shapes).  Regenerate with
#: ``python tools/calibrate_missmodel.py``.
CALIBRATED_TABLES: Dict[str, MissRateModel] = {
    "spec2000": MissRateModel(
        workload="spec2000",
        l1_curve=(
            (4096, 0.06122),
            (8192, 0.05882),
            (16384, 0.05713),
            (32768, 0.05590),
            (65536, 0.05482),
        ),
        l2_curve=(
            (131072, 0.55752),
            (262144, 0.53061),
            (524288, 0.47999),
            (1048576, 0.39603),
            (2097152, 0.29746),
            (4194304, 0.27942),
            (8388608, 0.27941),
        ),
    ),
    "specweb": MissRateModel(
        workload="specweb",
        l1_curve=(
            (4096, 0.08263),
            (8192, 0.07994),
            (16384, 0.07811),
            (32768, 0.07679),
            (65536, 0.07570),
        ),
        l2_curve=(
            (131072, 0.54294),
            (262144, 0.53175),
            (524288, 0.51353),
            (1048576, 0.48146),
            (2097152, 0.43048),
            (4194304, 0.37503),
            (8388608, 0.36520),
        ),
    ),
    "tpcc": MissRateModel(
        workload="tpcc",
        l1_curve=(
            (4096, 0.11729),
            (8192, 0.11395),
            (16384, 0.11172),
            (32768, 0.11009),
            (65536, 0.10884),
        ),
        l2_curve=(
            (131072, 0.69424),
            (262144, 0.68555),
            (524288, 0.67365),
            (1048576, 0.65223),
            (2097152, 0.61349),
            (4194304, 0.55284),
            (8388608, 0.49570),
        ),
    ),
}


def blended_miss_model(
    weights: Dict[str, float] = None, policy: str = "lru"
) -> MissRateModel:
    """Return a weighted blend of the calibrated workload curves.

    The paper aggregates "results from various benchmark suites such as
    SPEC2000, SPECWEB, TPC/C, etc."; this helper produces the aggregate
    profile.  ``weights`` maps workload name -> weight (normalised
    internally); default is an equal blend of the three standard suites.
    Non-LRU ``policy`` blends the per-policy curves of
    :func:`calibrated_miss_model`.
    """
    if weights is None:
        weights = {name: 1.0 for name in STANDARD_WORKLOADS}
    if not weights:
        raise SimulationError("blend needs at least one workload")
    total = sum(weights.values())
    if total <= 0:
        raise SimulationError("blend weights must sum to a positive value")
    models = {
        name: calibrated_miss_model(name, policy) for name in weights
    }
    reference = next(iter(models.values()))
    l1_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l1_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l1_curve
    )
    l2_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l2_local_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l2_curve
    )
    label = "+".join(sorted(weights))
    return MissRateModel(
        workload=f"blend({label})", l1_curve=l1_curve, l2_curve=l2_curve
    )


#: Trace length for on-demand non-LRU calibrations (the committed LRU
#: tables were measured at 2 M; the default here keeps a cold per-policy
#: request subsecond — curves land in the disk cache either way).
POLICY_CALIBRATION_ACCESSES = 300_000

#: In-process memo of on-demand non-LRU calibrations, keyed by
#: (workload, policy).  LRU stays in :data:`CALIBRATED_TABLES`.
_POLICY_TABLES: Dict[Tuple[str, str], MissRateModel] = {}

#: Trace length for on-demand non-grid-estimator calibrations — matches
#: the committed tables' provenance (2 M accesses, seed 1), so the
#: setdist curves are the exact unrounded values behind
#: :data:`CALIBRATED_TABLES`.
ESTIMATOR_CALIBRATION_ACCESSES = 2_000_000

#: In-process memo of on-demand estimator calibrations, keyed by
#: (workload, estimator).  The grid estimator stays in
#: :data:`CALIBRATED_TABLES`.
_ESTIMATOR_TABLES: Dict[Tuple[str, str], MissRateModel] = {}


def calibrated_miss_model(
    workload: str = "spec2000",
    policy: str = "lru",
    estimator: str = "grid",
) -> MissRateModel:
    """Return the pre-measured model for a standard workload.

    LRU with the grid estimator (the default) serves the committed
    :data:`CALIBRATED_TABLES`; FIFO and random measure on demand at
    :data:`POLICY_CALIBRATION_ACCESSES` accesses, memoised in-process
    and on disk.  ``estimator="setdist"`` (or ``"stackdist"``) measures
    on demand with that estimator at
    :data:`ESTIMATOR_CALIBRATION_ACCESSES` accesses (LRU only; setdist
    matches the grid tables bit-for-bit before their 5-decimal
    rounding).  Falls back to a live measurement if the LRU table has
    not been populated for that workload (slower, but always available).
    """
    if policy not in _POLICIES:
        raise SimulationError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if estimator not in ("grid", "stackdist", "setdist"):
        raise SimulationError(
            f"unknown estimator {estimator!r}; expected 'grid', "
            f"'stackdist' or 'setdist'"
        )
    if estimator != "grid":
        if policy != "lru":
            raise SimulationError(
                f"estimator={estimator!r} models LRU only; use the grid "
                "estimator for non-LRU policies"
            )
        if workload not in STANDARD_WORKLOADS:
            raise SimulationError(
                f"unknown workload {workload!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        key = (workload, estimator)
        model = _ESTIMATOR_TABLES.get(key)
        if model is None:
            model = measure_miss_model(
                STANDARD_WORKLOADS[workload],
                n_accesses=ESTIMATOR_CALIBRATION_ACCESSES,
                estimator=estimator,
            )
            _ESTIMATOR_TABLES[key] = model
        return model
    if policy != "lru":
        if workload not in STANDARD_WORKLOADS:
            raise SimulationError(
                f"unknown workload {workload!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        key = (workload, policy)
        model = _POLICY_TABLES.get(key)
        if model is None:
            model = measure_miss_model(
                STANDARD_WORKLOADS[workload],
                n_accesses=POLICY_CALIBRATION_ACCESSES,
                policy=policy,
            )
            _POLICY_TABLES[key] = model
        return model
    if workload in CALIBRATED_TABLES:
        return CALIBRATED_TABLES[workload]
    if workload not in STANDARD_WORKLOADS:
        raise SimulationError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(STANDARD_WORKLOADS)}"
        )
    model = measure_miss_model(STANDARD_WORKLOADS[workload])
    CALIBRATED_TABLES[workload] = model
    return model
