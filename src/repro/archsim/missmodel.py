"""Analytical miss-rate model calibrated against the simulator.

The Section 5 optimisers sweep dozens of (L1 size, L2 size, knob) design
points; re-simulating hundreds of thousands of accesses per point would
dominate runtime without changing the answer.  Instead, the simulator is
run once per (workload, cache size) on a reference grid and the resulting
local miss-rate curves are interpolated in log2(size) — the standard
shape of miss-rate-vs-size data.

``CALIBRATED_TABLES`` holds curves pre-measured with
:func:`measure_miss_model` (2 M accesses, seed 1, L1 32 B blocks / 2-way,
L2 64 B blocks / 8-way, the L2 curve measured behind a 16 KB L1).  The
test suite re-measures them against a live simulation with a tolerance,
so the table cannot silently drift from the simulator.

Calibration itself is engineered for scale: the default
``engine="multiconfig"`` path simulates the *entire* (level, size) grid
in one sweep over the trace
(:class:`~repro.archsim.multiconfig.MultiConfigHierarchyEngine` — one
address decode, shared set indices, the reference L1 in front of the L2
grid simulated once), bit-identical to the per-point ``engine="array"``
fallback at a fraction of the cost.  ``jobs=N`` fans lane-coherent
shards of the grid over a ``ProcessPoolExecutor``, every worker
streaming chunks of one shared memory-mapped trace (materialised once,
never regenerated per point), and the measured curves are memoised on
disk keyed by a fingerprint of every input (workload spec, trace
length, seed, grids, reference shapes, engine) — a warm re-calibration
is a file read.

Note the L2 *local* miss-rate convention: misses over L2 accesses.  The
curves bake in the reference L1's filtering; Section 5's experiments vary
one level at a time around that reference point, matching the paper's
methodology of per-combination architectural runs.

Two axes beyond the original calibration contract:

* **Associativity** is a first-class grid axis: ``l1_assocs`` /
  ``l2_assocs`` measure each size at several set-associativities (the
  reference shape is always included so the plain curves keep their
  meaning), and :meth:`MissRateModel.l1_miss_rate` takes an optional
  ``associativity``.
* The **profile store** (:mod:`repro.perf.profile_store`) serves
  covered grids by slicing a precomputed dense (size, assoc) surface —
  bit-identical to direct simulation — so a warmed workload answers any
  sub-grid with zero trace passes.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.archsim.hierarchy import ArrayTwoLevelHierarchy, TwoLevelHierarchy
from repro.archsim.multiconfig import MultiConfigHierarchyEngine
from repro.archsim.trace import TraceBuffer
from repro.archsim.workloads import (
    STANDARD_WORKLOADS,
    WorkloadSpec,
    synthetic_trace,
    synthetic_trace_buffer,
)
from repro.cache.config import CacheConfig
from repro.perf.disk_cache import DiskCache, make_fingerprint

#: Reference shapes used for calibration.
REFERENCE_L1_BLOCK = 32
REFERENCE_L1_ASSOC = 2
REFERENCE_L2_BLOCK = 64
REFERENCE_L2_ASSOC = 8
REFERENCE_L1_KB = 16
REFERENCE_L2_KB = 1024

#: Sizes (KiB) on the calibration grid.
L1_GRID_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)
L2_GRID_KB: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)


def _interpolate_log2(curve: Dict[int, float], size_bytes: int) -> float:
    """Piecewise-linear interpolation of miss rate in log2(size).

    Clamps outside the grid (miss curves flatten at both ends).
    """
    if size_bytes <= 0:
        raise SimulationError(f"size must be positive, got {size_bytes}")
    points = sorted(curve.items())
    x = math.log2(size_bytes)
    xs = [math.log2(size) for size, _ in points]
    ys = [rate for _, rate in points]
    if x <= xs[0]:
        return ys[0]
    if x >= xs[-1]:
        return ys[-1]
    for i in range(1, len(xs)):
        if x <= xs[i]:
            t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
            return ys[i - 1] + t * (ys[i] - ys[i - 1])
    return ys[-1]


@dataclass(frozen=True)
class MissRateModel:
    """Interpolated local miss-rate curves for one workload.

    Attributes
    ----------
    workload:
        Suite name.
    l1_curve / l2_curve:
        size-bytes -> local miss rate measurement grids at the reference
        associativities (2-way L1, 8-way L2).
    l1_assoc_curves / l2_assoc_curves:
        Optional associativity -> curve maps for calibrations that swept
        the assoc axis; empty for reference-shape-only calibrations, so
        existing models compare equal to their pre-axis selves.
    """

    workload: str
    l1_curve: Tuple[Tuple[int, float], ...]
    l2_curve: Tuple[Tuple[int, float], ...]
    l1_assoc_curves: Tuple[
        Tuple[int, Tuple[Tuple[int, float], ...]], ...
    ] = ()
    l2_assoc_curves: Tuple[
        Tuple[int, Tuple[Tuple[int, float], ...]], ...
    ] = ()

    def _curve(
        self, level: str, associativity: Optional[int]
    ) -> Tuple[Tuple[int, float], ...]:
        base = self.l1_curve if level == "l1" else self.l2_curve
        if associativity is None:
            return base
        curves = dict(
            self.l1_assoc_curves if level == "l1" else self.l2_assoc_curves
        )
        if associativity in curves:
            return curves[associativity]
        reference = (
            REFERENCE_L1_ASSOC if level == "l1" else REFERENCE_L2_ASSOC
        )
        if associativity == reference:
            return base
        raise SimulationError(
            f"{level} associativity {associativity} was not measured for "
            f"workload {self.workload!r}; measured: "
            f"{sorted(curves) or [reference]}"
        )

    def l1_miss_rate(
        self, size_bytes: int, associativity: Optional[int] = None
    ) -> float:
        """Local L1 miss rate at the given capacity (and associativity)."""
        return _interpolate_log2(
            dict(self._curve("l1", associativity)), size_bytes
        )

    def l2_local_miss_rate(
        self, size_bytes: int, associativity: Optional[int] = None
    ) -> float:
        """Local L2 miss rate at the given capacity (behind the ref L1)."""
        return _interpolate_log2(
            dict(self._curve("l2", associativity)), size_bytes
        )


#: Bump when measurement semantics change: it is folded into the disk
#: fingerprint, so stale cached curves can never be served.  Format 8:
#: the ``"stackdist"`` estimator derives its L2 curve from the
#: reconstructed write-back event stream (exact, replacing the
#: denominator-scaled demand approximation).  Format 7 made
#: associativity a real grid axis (``l1_assocs`` / ``l2_assocs``);
#: format 6 added the ``"setdist"`` estimator; format 5 the replacement
#: policy and canonical fingerprint parts.
_CALIBRATION_FORMAT = 8

#: Replacement policies the calibration engines support.
_POLICIES = ("lru", "fifo", "random")


def _point_assoc(level: str, assoc: Optional[int]) -> int:
    """Associativity of one grid point (reference shape when unspecified)."""
    if assoc is not None:
        return assoc
    return REFERENCE_L1_ASSOC if level == "l1" else REFERENCE_L2_ASSOC


def _normalize_point(point) -> Tuple[str, int, int]:
    """Accept ``(level, kb)`` or ``(level, kb, assoc)``; return the latter."""
    if len(point) == 2:
        level, kb = point
        assoc = None
    else:
        level, kb, assoc = point
    return level, kb, _point_assoc(level, assoc)


def _point_configs(
    level: str, kb: int, assoc: Optional[int] = None
) -> Tuple[CacheConfig, CacheConfig]:
    """L1/L2 shapes for one calibration point (vary one level at a time)."""
    assoc = _point_assoc(level, assoc)
    l1_kb, l1_assoc = (
        (kb, assoc) if level == "l1" else (REFERENCE_L1_KB, REFERENCE_L1_ASSOC)
    )
    l2_kb, l2_assoc = (
        (kb, assoc) if level == "l2" else (REFERENCE_L2_KB, REFERENCE_L2_ASSOC)
    )
    return (
        CacheConfig(
            size_bytes=l1_kb * 1024,
            block_bytes=REFERENCE_L1_BLOCK,
            associativity=l1_assoc,
            name="L1",
        ),
        CacheConfig(
            size_bytes=l2_kb * 1024,
            block_bytes=REFERENCE_L2_BLOCK,
            associativity=l2_assoc,
            name="L2",
        ),
    )


def _measure_point(
    spec: WorkloadSpec,
    level: str,
    kb: int,
    n_accesses: int,
    seed: int,
    engine: str,
    policy: str = "lru",
    assoc: Optional[int] = None,
) -> float:
    """Simulate one (level, size) point; returns its local miss rate.

    Module-level so :class:`ProcessPoolExecutor` workers can pickle it.
    """
    l1_config, l2_config = _point_configs(level, kb, assoc)
    if engine == "array":
        result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
            synthetic_trace_buffer(spec, n_accesses, seed=seed, block_bytes=64)
        )
    else:
        result = TwoLevelHierarchy(l1_config, l2_config, policy).run(
            synthetic_trace(spec, n_accesses, seed=seed, block_bytes=64)
        )
    return result.l1_miss_rate if level == "l1" else result.l2_local_miss_rate


def _multiconfig_rates(
    points: Sequence[Tuple], trace, policy: str = "lru"
) -> List[float]:
    """Simulate every (level, size[, assoc]) point in one sweep.

    L1-curve points only contribute their L1 miss rate, so their shared
    reference L2 is elided entirely (``l2_config=None``): the engine
    simulates each distinct L1 shape once as a lane and the reference L1
    feeding the whole L2 grid once, instead of one full hierarchy per
    point.  Rates are bit-identical to per-point ``engine="array"`` runs
    under every policy: random-policy rng streams live per cache (not
    per shard), so the sweep matches each point's own seeded draws.
    """
    normalized = [_normalize_point(point) for point in points]
    engine_points = []
    for level, kb, assoc in normalized:
        l1_config, l2_config = _point_configs(level, kb, assoc)
        engine_points.append(
            (l1_config, None) if level == "l1" else (l1_config, l2_config)
        )
    results = MultiConfigHierarchyEngine(engine_points, policy).run(trace)
    return [
        result.l1_miss_rate if level == "l1" else result.l2_local_miss_rate
        for (level, _, _), result in zip(normalized, results)
    ]


def _load_trace_files(addresses_path: str, writes_path: str) -> TraceBuffer:
    """Memory-map a materialised trace (see :func:`_materialize_trace`).

    ``mmap_mode="r"`` keeps the arrays backed by the page cache, so N
    pool workers share one physical copy of the trace instead of
    regenerating (or unpickling) it N times.
    """
    return TraceBuffer(
        np.load(addresses_path, mmap_mode="r"),
        np.load(writes_path, mmap_mode="r"),
    )


def _measure_shard(
    shard: Sequence[Tuple],
    addresses_path: str,
    writes_path: str,
    engine: str,
    policy: str = "lru",
) -> List[float]:
    """Worker entry: rates for one shard of the grid off the shared trace."""
    trace = _load_trace_files(addresses_path, writes_path)
    if engine == "multiconfig":
        return _multiconfig_rates(shard, trace, policy)
    rates = []
    for point in shard:
        level, kb, assoc = _normalize_point(point)
        l1_config, l2_config = _point_configs(level, kb, assoc)
        result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
            trace
        )
        rates.append(
            result.l1_miss_rate if level == "l1"
            else result.l2_local_miss_rate
        )
    return rates


def _shard_points(
    points: Sequence[Tuple], jobs: int
) -> List[List[Tuple]]:
    """Partition grid points into at most ``jobs`` lane-coherent shards.

    Points sharing an L1 shape stay together (all L2-curve points sit
    behind the one reference L1), so no worker re-simulates a lane
    another worker already owns; each L2-curve point costs roughly one
    follower, so shards are balanced greedily by point count.
    """
    groups: Dict[Tuple[int, int, int], List[Tuple]] = {}
    for point in points:
        level, kb, assoc = _normalize_point(point)
        l1_config, _ = _point_configs(level, kb, assoc)
        key = (
            l1_config.size_bytes,
            l1_config.block_bytes,
            l1_config.associativity,
        )
        groups.setdefault(key, []).append(point)
    shards: List[List[Tuple]] = [[] for _ in range(jobs)]
    for group in sorted(groups.values(), key=len, reverse=True):
        min(shards, key=len).extend(group)
    return [shard for shard in shards if shard]


def _calibration_fingerprint(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    engine: str,
    estimator: str,
    policy: str,
    l1_assocs: Sequence[int],
    l2_assocs: Sequence[int],
) -> str:
    """Fold every input that determines the curves into one string.

    The engine tag participates: ``"multiconfig"`` and ``"array"``
    produce bit-identical curves, but keying them separately keeps the
    invalidation contract trivial — any semantic divergence ever
    introduced between engines can never serve a stale entry.
    """
    return make_fingerprint(
        _CALIBRATION_FORMAT,
        spec,
        n_accesses,
        seed,
        tuple(l1_grid_kb),
        tuple(l2_grid_kb),
        (REFERENCE_L1_BLOCK, REFERENCE_L1_ASSOC, REFERENCE_L1_KB),
        (REFERENCE_L2_BLOCK, REFERENCE_L2_ASSOC, REFERENCE_L2_KB),
        engine,
        estimator,
        policy,
        tuple(l1_assocs),
        tuple(l2_assocs),
    )


def _stackdist_estimate(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
) -> MissRateModel:
    """Estimate both curves from one stack-distance pass over the trace.

    Mattson's inclusion property turns a single O(n log n) profile into
    the miss rate of *every* fully-associative LRU capacity at once, so
    the L1 grid costs one profiling pass instead of one simulation per
    point.  The price at L1 is a model mismatch — the grid path
    simulates the real set-associative shapes — quantified by the test
    suite; it is the cheap first look, not the calibration of record.

    The L2 *local* curve no longer approximates: the reference L1's
    demand-miss + dirty-write-back event stream is reconstructed
    exactly (:func:`~repro.archsim.setdist.reference_event_stream`) and
    that stream's *own* reuse distances are profiled per set at the
    reference L2 shape, so the write-back stream's distinct reuse
    behaviour is modelled directly instead of scaling the demand
    denominator by a measured write-back ratio.  The stream is a small
    fraction of the trace, so the extra cascade is cheap; the resulting
    curve matches the simulation grid bit-for-bit (the historical
    ~0.006 positive bias is closed), pinned by
    ``tests/archsim/test_missmodel_stackdist.py``.
    """
    from repro.archsim.setdist import per_set_profiles, reference_event_stream
    from repro.archsim.stackdist import stack_distance_profile

    buffer = synthetic_trace_buffer(spec, n_accesses, seed=seed, block_bytes=64)
    profile_l1 = stack_distance_profile(
        buffer, block_bytes=REFERENCE_L1_BLOCK
    )
    l1_rates = profile_l1.miss_curve(
        [kb * 1024 // REFERENCE_L1_BLOCK for kb in l1_grid_kb]
    )
    ref_sets = REFERENCE_L1_KB * 1024 // (
        REFERENCE_L1_BLOCK * REFERENCE_L1_ASSOC
    )
    stream, total = reference_event_stream(
        buffer,
        ref_sets=ref_sets,
        ref_assoc=REFERENCE_L1_ASSOC,
        l1_block_bytes=REFERENCE_L1_BLOCK,
        l2_block_bytes=REFERENCE_L2_BLOCK,
    )
    l2_sets = {
        kb: kb * 1024 // (REFERENCE_L2_BLOCK * REFERENCE_L2_ASSOC)
        for kb in l2_grid_kb
    }
    if total:
        stream_profiles = per_set_profiles(
            stream * REFERENCE_L2_BLOCK,
            set_counts=sorted(set(l2_sets.values())),
            block_bytes=REFERENCE_L2_BLOCK,
            depth_cap=REFERENCE_L2_ASSOC,
        )
        l2_curve = tuple(
            (
                kb * 1024,
                stream_profiles[l2_sets[kb]].miss_rate(REFERENCE_L2_ASSOC),
            )
            for kb in l2_grid_kb
        )
    else:
        l2_curve = tuple((kb * 1024, 0.0) for kb in l2_grid_kb)
    return MissRateModel(
        workload=spec.name,
        l1_curve=tuple(
            (kb * 1024, l1_rates[kb * 1024 // REFERENCE_L1_BLOCK])
            for kb in l1_grid_kb
        ),
        l2_curve=l2_curve,
    )


def _point_sets(level: str, kb: int, assoc: Optional[int] = None) -> int:
    """Set count of one grid point on its level's block size."""
    block = REFERENCE_L1_BLOCK if level == "l1" else REFERENCE_L2_BLOCK
    assoc = _point_assoc(level, assoc)
    size_bytes = kb * 1024
    sets = size_bytes // (block * assoc)
    if sets < 1 or sets * block * assoc != size_bytes:
        raise SimulationError(
            f"{level} size {kb} KiB does not divide into {assoc}-way "
            f"{block}-byte sets"
        )
    return sets


def _setdist_rates(
    points: Sequence[Tuple], trace
) -> List[float]:
    """Exact LRU rates for every (level, size[, assoc]) point in one pass.

    The per-set Mattson profiler (:mod:`repro.archsim.setdist`) turns
    each point into a ``(n_sets, assoc)`` lookup on its level's block
    size: one contraction cascade over the trace covers the whole L1
    grid, the reference L1's miss + dirty write-back stream is replayed
    exactly through a second cascade for the L2 grid, and every rate is
    bit-identical to :func:`_multiconfig_rates` under LRU — at a cost
    that is independent of how many grid points are requested.  Depth
    histograms are exact per (set count, depth), so the profiled
    depth-cap/min-assoc window never changes any rate.
    """
    from repro.archsim.setdist import two_level_profiles

    normalized = [_normalize_point(point) for point in points]
    sets_for = {
        point: _point_sets(*point) for point in set(normalized)
    }
    l1_set_counts = sorted(
        {sets for (level, _, _), sets in sets_for.items() if level == "l1"}
    )
    l2_set_counts = sorted(
        {sets for (level, _, _), sets in sets_for.items() if level == "l2"}
    )
    # The reference L1 replay needs its own associativity inside the L1
    # profiling window, so the window spans the requested assocs plus
    # the reference shape.
    l1_assocs = [a for level, _, a in normalized if level == "l1"]
    l1_assocs.append(REFERENCE_L1_ASSOC)
    l2_assocs = [a for level, _, a in normalized if level == "l2"]
    l2_assocs = l2_assocs or [REFERENCE_L2_ASSOC]
    l1_profiles, l2_profiles = two_level_profiles(
        trace,
        l1_set_counts=l1_set_counts,
        l2_set_counts=l2_set_counts,
        ref_sets=_point_sets("l1", REFERENCE_L1_KB),
        ref_assoc=REFERENCE_L1_ASSOC,
        l1_block_bytes=REFERENCE_L1_BLOCK,
        l2_block_bytes=REFERENCE_L2_BLOCK,
        l1_depth_cap=max(l1_assocs),
        l2_depth_cap=max(l2_assocs),
        l1_min_assoc=min(l1_assocs),
        l2_min_assoc=min(l2_assocs),
    )
    return [
        l1_profiles[sets_for[point]].miss_rate(point[2])
        if point[0] == "l1"
        else l2_profiles[sets_for[point]].miss_rate(point[2])
        for point in normalized
    ]


def _validate_assocs(
    assocs: Optional[Sequence[int]], level: str
) -> Optional[Tuple[int, ...]]:
    """Validate a requested associativity axis (None passes through)."""
    if assocs is None:
        return None
    validated: List[int] = []
    for assoc in assocs:
        if (
            not isinstance(assoc, (int, np.integer))
            or isinstance(assoc, bool)
            or assoc < 1
            or (int(assoc) & (int(assoc) - 1))
        ):
            raise SimulationError(
                f"{level}_assocs entries must be positive power-of-two "
                f"ints, got {assoc!r}"
            )
        validated.append(int(assoc))
    if not validated:
        raise SimulationError(f"{level}_assocs must not be empty")
    if len(set(validated)) != len(validated):
        raise SimulationError(
            f"{level}_assocs must not repeat values, got {list(assocs)}"
        )
    return tuple(validated)


def _grid_points(
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    l1_assocs: Sequence[int],
    l2_assocs: Sequence[int],
) -> List[Tuple[str, int, int]]:
    """The full (level, kb, assoc) calibration grid, L1 block then L2."""
    points = [
        ("l1", kb, assoc) for assoc in l1_assocs for kb in l1_grid_kb
    ]
    points += [
        ("l2", kb, assoc) for assoc in l2_assocs for kb in l2_grid_kb
    ]
    return points


def _build_model(
    spec_name: str,
    rates: Sequence[float],
    points: Sequence[Tuple[str, int, int]],
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    l1_assocs: Sequence[int],
    l2_assocs: Sequence[int],
    with_l1_axis: bool,
    with_l2_axis: bool,
) -> MissRateModel:
    """Assemble a model from per-point rates (assoc curves on demand)."""
    curves = dict(zip(points, rates))
    return MissRateModel(
        workload=spec_name,
        l1_curve=tuple(
            (kb * 1024, curves[("l1", kb, REFERENCE_L1_ASSOC)])
            for kb in l1_grid_kb
        ),
        l2_curve=tuple(
            (kb * 1024, curves[("l2", kb, REFERENCE_L2_ASSOC)])
            for kb in l2_grid_kb
        ),
        l1_assoc_curves=tuple(
            (
                assoc,
                tuple(
                    (kb * 1024, curves[("l1", kb, assoc)])
                    for kb in l1_grid_kb
                ),
            )
            for assoc in l1_assocs
        )
        if with_l1_axis
        else (),
        l2_assoc_curves=tuple(
            (
                assoc,
                tuple(
                    (kb * 1024, curves[("l2", kb, assoc)])
                    for kb in l2_grid_kb
                ),
            )
            for assoc in l2_assocs
        )
        if with_l2_axis
        else (),
    )


def _model_payload(model: MissRateModel) -> dict:
    """JSON-serialisable disk-cache payload for one model."""
    payload = {
        "workload": model.workload,
        "l1_curve": [list(point) for point in model.l1_curve],
        "l2_curve": [list(point) for point in model.l2_curve],
    }
    if model.l1_assoc_curves:
        payload["l1_assoc_curves"] = [
            [assoc, [list(point) for point in curve]]
            for assoc, curve in model.l1_assoc_curves
        ]
    if model.l2_assoc_curves:
        payload["l2_assoc_curves"] = [
            [assoc, [list(point) for point in curve]]
            for assoc, curve in model.l2_assoc_curves
        ]
    return payload


def _model_from_payload(payload: dict) -> MissRateModel:
    """Reconstruct a model from its disk-cache payload."""

    def curve(points) -> Tuple[Tuple[int, float], ...]:
        return tuple((int(size), float(rate)) for size, rate in points)

    def assoc_curves(entries) -> Tuple:
        return tuple((int(assoc), curve(points)) for assoc, points in entries)

    return MissRateModel(
        workload=payload["workload"],
        l1_curve=curve(payload["l1_curve"]),
        l2_curve=curve(payload["l2_curve"]),
        l1_assoc_curves=assoc_curves(payload.get("l1_assoc_curves", ())),
        l2_assoc_curves=assoc_curves(payload.get("l2_assoc_curves", ())),
    )


def measure_miss_model(
    spec: WorkloadSpec,
    n_accesses: int = 300_000,
    seed: int = 1,
    l1_grid_kb: Sequence[int] = L1_GRID_KB,
    l2_grid_kb: Sequence[int] = L2_GRID_KB,
    jobs: Optional[int] = None,
    use_disk_cache: bool = True,
    cache_dir=None,
    engine: str = "multiconfig",
    estimator: str = "grid",
    policy: str = "lru",
    l1_assocs: Optional[Sequence[int]] = None,
    l2_assocs: Optional[Sequence[int]] = None,
    profile_store: str = "auto",
) -> MissRateModel:
    """Measure a fresh :class:`MissRateModel` by simulation.

    The L1 curve is measured with the reference L2; the L2 curve with the
    reference L1 (the paper's one-variable-at-a-time methodology).

    Parameters beyond the grids:

    jobs:
        Fan lane-coherent shards of the grid over a
        ``ProcessPoolExecutor`` with this many workers.  The trace is
        materialised to disk once (``.npy``) and every worker streams
        chunks of the same memory-mapped copy — nothing is regenerated
        per point.  ``None`` (default) runs serially in-process, where
        one in-memory buffer feeds the whole grid.  Results are
        identical either way; serial is usually faster below ~10 M
        accesses because the multi-config sweep already shares most of
        the work a second worker would duplicate.
    use_disk_cache / cache_dir:
        Memoise the measured curves on disk
        (:class:`repro.perf.DiskCache`, namespace ``missmodel``), keyed
        by a fingerprint of the workload spec, trace length, seed,
        grids, reference cache shapes, and engine.  A warm call is a
        file read.
    engine:
        ``"multiconfig"`` (default) simulates the whole grid in one
        sweep (:class:`~repro.archsim.multiconfig.MultiConfigHierarchyEngine`);
        ``"array"`` runs the chunked array hierarchy once per point —
        bit-identical curves, kept as the cross-check and non-LRU
        escape hatch; ``"object"`` keeps the original per-record
        generator/simulator pair (the cross-validation path, serial
        only under ``jobs``'s sharding too).
    estimator:
        ``"grid"`` (default) simulates every (level, size) point on the
        set-associative reference shapes; ``"setdist"`` answers the same
        grid exactly — bit-identical curves — from one per-set
        stack-distance pass whose cost does not grow with the grid (see
        :func:`_setdist_rates`); ``"stackdist"`` derives the grid
        from one fully-associative profile — cheaper still, but an
        approximation with a quantified accuracy cost (see
        :func:`_stackdist_estimate`).  ``engine`` and ``jobs`` are
        irrelevant to both profiling estimators.
    policy:
        Replacement policy at both levels — ``"lru"`` (default),
        ``"fifo"`` or ``"random"``; every engine produces bit-identical
        curves per policy.  The stackdist and setdist estimators are
        Mattson stack-algorithm constructions, which only model LRU.
    l1_assocs / l2_assocs:
        Optional associativity axes (positive power-of-two ints).  Each
        level's grid becomes sizes x assocs; the reference
        associativity is always measured too, so ``l1_curve`` /
        ``l2_curve`` keep their reference-shape meaning and the
        requested axes land in ``l1_assoc_curves`` / ``l2_assoc_curves``.
        ``None`` (default) measures the reference shape only and leaves
        the assoc curves empty.  Not supported by the (fully
        associative) stackdist estimator.
    profile_store:
        ``"auto"`` (default) serves the requested grid by slicing a
        dense precomputed (size, assoc) surface
        (:mod:`repro.perf.profile_store`) when one is already resident
        in memory or on disk — bit-identical to direct simulation, zero
        trace passes — and otherwise measures exactly as before.
        ``"always"`` computes the dense surface on a miss (one trace
        pass answers *every* future sub-grid); ``"off"`` never consults
        the store.  Only grids covered by the surface (4–64 KB L1,
        128 KB–8 MB L2, power-of-two assocs up to 16) and exact
        configurations (``estimator`` setdist, or grid with the
        multiconfig engine) are eligible.
    """
    if engine not in ("multiconfig", "array", "object"):
        raise SimulationError(
            f"unknown engine {engine!r}; expected 'multiconfig', "
            f"'array' or 'object'"
        )
    if estimator not in ("grid", "stackdist", "setdist"):
        raise SimulationError(
            f"unknown estimator {estimator!r}; expected 'grid', "
            f"'stackdist' or 'setdist'"
        )
    if policy not in _POLICIES:
        raise SimulationError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if estimator != "grid" and policy != "lru":
        raise SimulationError(
            f"estimator={estimator!r} models LRU only (Mattson stack "
            f"distances have no meaning under {policy!r}); use the grid "
            "estimator for non-LRU policies"
        )
    if profile_store not in ("auto", "always", "off"):
        raise SimulationError(
            f"unknown profile_store mode {profile_store!r}; expected "
            f"'auto', 'always' or 'off'"
        )
    l1_axis = _validate_assocs(l1_assocs, "l1")
    l2_axis = _validate_assocs(l2_assocs, "l2")
    if estimator == "stackdist" and (l1_axis or l2_axis):
        raise SimulationError(
            "the stackdist estimator is fully associative and cannot "
            "measure an associativity axis; use estimator='grid' or "
            "'setdist'"
        )
    measured_l1 = (
        tuple(sorted(set(l1_axis) | {REFERENCE_L1_ASSOC}))
        if l1_axis
        else (REFERENCE_L1_ASSOC,)
    )
    measured_l2 = (
        tuple(sorted(set(l2_axis) | {REFERENCE_L2_ASSOC}))
        if l2_axis
        else (REFERENCE_L2_ASSOC,)
    )
    points = _grid_points(l1_grid_kb, l2_grid_kb, measured_l1, measured_l2)
    if l1_axis or l2_axis:
        for level, kb, assoc in points:
            _point_sets(level, kb, assoc)  # raises on bad geometry
    fingerprint = _calibration_fingerprint(
        spec, n_accesses, seed, l1_grid_kb, l2_grid_kb, engine, estimator,
        policy, measured_l1, measured_l2,
    )
    cache = (
        DiskCache("missmodel", directory=cache_dir) if use_disk_cache else None
    )
    if cache is not None:
        payload = cache.load(fingerprint)
        if payload is not None:
            return _model_from_payload(payload)

    # Profile-store serving tier: slice a dense precomputed surface
    # instead of sweeping the trace.  Only configurations whose direct
    # path the surface reproduces bit-for-bit are eligible (setdist, or
    # the grid estimator on the multiconfig engine — the surface itself
    # is one setdist cascade for LRU, one multiconfig union pass
    # otherwise).
    store_eligible = profile_store != "off" and (
        estimator == "setdist"
        or (estimator == "grid" and engine == "multiconfig")
    )
    if store_eligible:
        from repro.perf import profile_store as profile_store_tier

        block = {
            "l1": REFERENCE_L1_BLOCK,
            "l2": REFERENCE_L2_BLOCK,
        }
        covered = all(
            profile_store_tier.covers_point(
                level, kb * 1024, assoc, block_bytes=block[level]
            )
            for level, kb, assoc in points
        )
        if covered:
            surface = profile_store_tier.get_store(cache_dir).surface(
                spec,
                policy=policy,
                n_accesses=n_accesses,
                seed=seed,
                compute=profile_store == "always",
            )
            if surface is not None:
                rates = [
                    surface.miss_rate(level, kb * 1024, assoc)
                    for level, kb, assoc in points
                ]
                model = _build_model(
                    spec.name, rates, points, l1_grid_kb, l2_grid_kb,
                    measured_l1, measured_l2,
                    l1_axis is not None, l2_axis is not None,
                )
                if cache is not None:
                    cache.store(fingerprint, _model_payload(model))
                return model

    if estimator == "stackdist":
        model = _stackdist_estimate(
            spec, n_accesses, seed, l1_grid_kb, l2_grid_kb
        )
        if cache is not None:
            cache.store(fingerprint, _model_payload(model))
        return model

    if estimator == "setdist":
        buffer = synthetic_trace_buffer(
            spec, n_accesses, seed=seed, block_bytes=64
        )
        rates = _setdist_rates(points, buffer)
        model = _build_model(
            spec.name, rates, points, l1_grid_kb, l2_grid_kb,
            measured_l1, measured_l2,
            l1_axis is not None, l2_axis is not None,
        )
        if cache is not None:
            cache.store(fingerprint, _model_payload(model))
        return model

    if (
        jobs is not None and jobs > 1 and len(points) > 1
        and engine in ("multiconfig", "array")
    ):
        # Materialise the trace once; workers stream chunk views of the
        # same memory-mapped arrays instead of regenerating it.
        shards = _shard_points(points, jobs)
        scratch = tempfile.mkdtemp(prefix="repro-missmodel-")
        try:
            buffer = synthetic_trace_buffer(
                spec, n_accesses, seed=seed, block_bytes=64
            )
            addresses_path = os.path.join(scratch, "addresses.npy")
            writes_path = os.path.join(scratch, "writes.npy")
            np.save(addresses_path, buffer.addresses)
            np.save(writes_path, buffer.is_write)
            del buffer
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                shard_rates = list(
                    pool.map(
                        _measure_shard,
                        shards,
                        [addresses_path] * len(shards),
                        [writes_path] * len(shards),
                        [engine] * len(shards),
                        [policy] * len(shards),
                    )
                )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        by_point = {
            point: rate
            for shard, measured in zip(shards, shard_rates)
            for point, rate in zip(shard, measured)
        }
        rates = [by_point[point] for point in points]
    elif engine == "multiconfig":
        # Serial fast path: one sweep of one trace buffer covers the grid.
        buffer = synthetic_trace_buffer(
            spec, n_accesses, seed=seed, block_bytes=64
        )
        rates = _multiconfig_rates(points, buffer, policy)
    elif engine == "array":
        # Per-point fallback: one trace buffer feeds every point.
        buffer = synthetic_trace_buffer(
            spec, n_accesses, seed=seed, block_bytes=64
        )
        rates = []
        for level, kb, assoc in points:
            l1_config, l2_config = _point_configs(level, kb, assoc)
            result = ArrayTwoLevelHierarchy(l1_config, l2_config, policy).run(
                buffer
            )
            rates.append(
                result.l1_miss_rate
                if level == "l1"
                else result.l2_local_miss_rate
            )
    else:
        rates = [
            _measure_point(
                spec, level, kb, n_accesses, seed, engine, policy, assoc
            )
            for level, kb, assoc in points
        ]

    model = _build_model(
        spec.name, rates, points, l1_grid_kb, l2_grid_kb,
        measured_l1, measured_l2, l1_axis is not None, l2_axis is not None,
    )
    if cache is not None:
        cache.store(fingerprint, _model_payload(model))
    return model


def peek_miss_model(
    spec: WorkloadSpec,
    n_accesses: int = 300_000,
    seed: int = 1,
    l1_grid_kb: Sequence[int] = L1_GRID_KB,
    l2_grid_kb: Sequence[int] = L2_GRID_KB,
    cache_dir=None,
    engine: str = "multiconfig",
    estimator: str = "grid",
    policy: str = "lru",
    l1_assocs: Optional[Sequence[int]] = None,
    l2_assocs: Optional[Sequence[int]] = None,
) -> Optional[MissRateModel]:
    """Serve a model without ever computing, or return ``None``.

    The serving tiers of :func:`measure_miss_model` only: the missmodel
    disk cache (exact-fingerprint hit) and the profile store's memory /
    disk tiers (dense-surface slice).  A surface computation in flight
    on another thread is *not* awaited — this is the service daemon's
    "can I answer synchronously?" probe, and it must never block on a
    trace pass.  Arguments mirror :func:`measure_miss_model`; a request
    this function cannot serve should be measured there.
    """
    l1_axis = _validate_assocs(l1_assocs, "l1")
    l2_axis = _validate_assocs(l2_assocs, "l2")
    if estimator == "stackdist" and (l1_axis or l2_axis):
        return None
    measured_l1 = (
        tuple(sorted(set(l1_axis) | {REFERENCE_L1_ASSOC}))
        if l1_axis
        else (REFERENCE_L1_ASSOC,)
    )
    measured_l2 = (
        tuple(sorted(set(l2_axis) | {REFERENCE_L2_ASSOC}))
        if l2_axis
        else (REFERENCE_L2_ASSOC,)
    )
    points = _grid_points(l1_grid_kb, l2_grid_kb, measured_l1, measured_l2)
    fingerprint = _calibration_fingerprint(
        spec, n_accesses, seed, l1_grid_kb, l2_grid_kb, engine, estimator,
        policy, measured_l1, measured_l2,
    )
    cache = DiskCache("missmodel", directory=cache_dir)
    payload = cache.load(fingerprint)
    if payload is not None:
        return _model_from_payload(payload)
    if not (
        estimator == "setdist"
        or (estimator == "grid" and engine == "multiconfig")
    ):
        return None
    from repro.perf import profile_store as profile_store_tier

    block = {"l1": REFERENCE_L1_BLOCK, "l2": REFERENCE_L2_BLOCK}
    if not all(
        profile_store_tier.covers_point(
            level, kb * 1024, assoc, block_bytes=block[level]
        )
        for level, kb, assoc in points
    ):
        return None
    surface = profile_store_tier.get_store(cache_dir).peek(
        spec, policy=policy, n_accesses=n_accesses, seed=seed
    )
    if surface is None:
        return None
    rates = [
        surface.miss_rate(level, kb * 1024, assoc)
        for level, kb, assoc in points
    ]
    model = _build_model(
        spec.name, rates, points, l1_grid_kb, l2_grid_kb,
        measured_l1, measured_l2, l1_axis is not None, l2_axis is not None,
    )
    cache.store(fingerprint, _model_payload(model))
    return model


#: Pre-measured curves (2,000,000 accesses, seed 1; the default
#: ``engine="multiconfig"`` sweep and the per-point ``engine="array"``
#: path produce these bit-identically — see module docstring for the
#: reference shapes).  Regenerate with
#: ``python tools/calibrate_missmodel.py``.
CALIBRATED_TABLES: Dict[str, MissRateModel] = {
    "spec2000": MissRateModel(
        workload="spec2000",
        l1_curve=(
            (4096, 0.06122),
            (8192, 0.05882),
            (16384, 0.05713),
            (32768, 0.05590),
            (65536, 0.05482),
        ),
        l2_curve=(
            (131072, 0.55752),
            (262144, 0.53061),
            (524288, 0.47999),
            (1048576, 0.39603),
            (2097152, 0.29746),
            (4194304, 0.27942),
            (8388608, 0.27941),
        ),
    ),
    "specweb": MissRateModel(
        workload="specweb",
        l1_curve=(
            (4096, 0.08263),
            (8192, 0.07994),
            (16384, 0.07811),
            (32768, 0.07679),
            (65536, 0.07570),
        ),
        l2_curve=(
            (131072, 0.54294),
            (262144, 0.53175),
            (524288, 0.51353),
            (1048576, 0.48146),
            (2097152, 0.43048),
            (4194304, 0.37503),
            (8388608, 0.36520),
        ),
    ),
    "tpcc": MissRateModel(
        workload="tpcc",
        l1_curve=(
            (4096, 0.11729),
            (8192, 0.11395),
            (16384, 0.11172),
            (32768, 0.11009),
            (65536, 0.10884),
        ),
        l2_curve=(
            (131072, 0.69424),
            (262144, 0.68555),
            (524288, 0.67365),
            (1048576, 0.65223),
            (2097152, 0.61349),
            (4194304, 0.55284),
            (8388608, 0.49570),
        ),
    ),
}


def blended_miss_model(
    weights: Dict[str, float] = None,
    policy: str = "lru",
    surface: bool = False,
    cache_dir=None,
) -> MissRateModel:
    """Return a weighted blend of the calibrated workload curves.

    The paper aggregates "results from various benchmark suites such as
    SPEC2000, SPECWEB, TPC/C, etc."; this helper produces the aggregate
    profile.  ``weights`` maps workload name -> weight (normalised
    internally); default is an equal blend of the three standard suites.
    Non-LRU ``policy`` blends the per-policy curves of
    :func:`calibrated_miss_model`.  ``surface=True`` blends the
    associativity-complete models of :func:`calibrated_miss_surface`
    instead, so the blend too answers non-reference shapes.
    """
    if weights is None:
        weights = {name: 1.0 for name in STANDARD_WORKLOADS}
    if not weights:
        raise SimulationError("blend needs at least one workload")
    total = sum(weights.values())
    if total <= 0:
        raise SimulationError("blend weights must sum to a positive value")
    if surface:
        models = {
            name: calibrated_miss_surface(name, policy, cache_dir=cache_dir)
            for name in weights
        }
    else:
        models = {
            name: calibrated_miss_model(name, policy) for name in weights
        }
    reference = next(iter(models.values()))
    l1_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l1_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l1_curve
    )
    l2_curve = tuple(
        (
            size,
            sum(
                weights[name] / total * models[name].l2_local_miss_rate(size)
                for name in weights
            ),
        )
        for size, _ in reference.l2_curve
    )
    l1_assoc_curves = tuple(
        (
            assoc,
            tuple(
                (
                    size,
                    sum(
                        weights[name]
                        / total
                        * models[name].l1_miss_rate(size, assoc)
                        for name in weights
                    ),
                )
                for size, _ in curve
            ),
        )
        for assoc, curve in reference.l1_assoc_curves
    )
    l2_assoc_curves = tuple(
        (
            assoc,
            tuple(
                (
                    size,
                    sum(
                        weights[name]
                        / total
                        * models[name].l2_local_miss_rate(size, assoc)
                        for name in weights
                    ),
                )
                for size, _ in curve
            ),
        )
        for assoc, curve in reference.l2_assoc_curves
    )
    label = "+".join(sorted(weights))
    return MissRateModel(
        workload=f"blend({label})",
        l1_curve=l1_curve,
        l2_curve=l2_curve,
        l1_assoc_curves=l1_assoc_curves,
        l2_assoc_curves=l2_assoc_curves,
    )


#: Trace length for on-demand non-LRU calibrations (the committed LRU
#: tables were measured at 2 M; the default here keeps a cold per-policy
#: request subsecond — curves land in the disk cache either way).
POLICY_CALIBRATION_ACCESSES = 300_000

#: In-process memo of on-demand non-LRU calibrations, keyed by
#: (workload, policy).  LRU stays in :data:`CALIBRATED_TABLES`.
_POLICY_TABLES: Dict[Tuple[str, str], MissRateModel] = {}

#: Trace length for on-demand non-grid-estimator calibrations — matches
#: the committed tables' provenance (2 M accesses, seed 1), so the
#: setdist curves are the exact unrounded values behind
#: :data:`CALIBRATED_TABLES`.
ESTIMATOR_CALIBRATION_ACCESSES = 2_000_000

#: In-process memo of on-demand estimator calibrations, keyed by
#: (workload, estimator).  The grid estimator stays in
#: :data:`CALIBRATED_TABLES`.
_ESTIMATOR_TABLES: Dict[Tuple[str, str], MissRateModel] = {}


def calibrated_miss_model(
    workload: str = "spec2000",
    policy: str = "lru",
    estimator: str = "grid",
) -> MissRateModel:
    """Return the pre-measured model for a standard workload.

    LRU with the grid estimator (the default) serves the committed
    :data:`CALIBRATED_TABLES`; FIFO and random measure on demand at
    :data:`POLICY_CALIBRATION_ACCESSES` accesses, memoised in-process
    and on disk.  ``estimator="setdist"`` (or ``"stackdist"``) measures
    on demand with that estimator at
    :data:`ESTIMATOR_CALIBRATION_ACCESSES` accesses (LRU only; setdist
    matches the grid tables bit-for-bit before their 5-decimal
    rounding).  Falls back to a live measurement if the LRU table has
    not been populated for that workload (slower, but always available).
    """
    if policy not in _POLICIES:
        raise SimulationError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if estimator not in ("grid", "stackdist", "setdist"):
        raise SimulationError(
            f"unknown estimator {estimator!r}; expected 'grid', "
            f"'stackdist' or 'setdist'"
        )
    if estimator != "grid":
        if policy != "lru":
            raise SimulationError(
                f"estimator={estimator!r} models LRU only; use the grid "
                "estimator for non-LRU policies"
            )
        if workload not in STANDARD_WORKLOADS:
            raise SimulationError(
                f"unknown workload {workload!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        key = (workload, estimator)
        model = _ESTIMATOR_TABLES.get(key)
        if model is None:
            model = measure_miss_model(
                STANDARD_WORKLOADS[workload],
                n_accesses=ESTIMATOR_CALIBRATION_ACCESSES,
                estimator=estimator,
            )
            _ESTIMATOR_TABLES[key] = model
        return model
    if policy != "lru":
        if workload not in STANDARD_WORKLOADS:
            raise SimulationError(
                f"unknown workload {workload!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        key = (workload, policy)
        model = _POLICY_TABLES.get(key)
        if model is None:
            model = measure_miss_model(
                STANDARD_WORKLOADS[workload],
                n_accesses=POLICY_CALIBRATION_ACCESSES,
                policy=policy,
            )
            _POLICY_TABLES[key] = model
        return model
    if workload in CALIBRATED_TABLES:
        return CALIBRATED_TABLES[workload]
    if workload not in STANDARD_WORKLOADS:
        raise SimulationError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(STANDARD_WORKLOADS)}"
        )
    model = measure_miss_model(STANDARD_WORKLOADS[workload])
    CALIBRATED_TABLES[workload] = model
    return model


#: In-process memo of surface-backed models, keyed by (workload, policy).
_SURFACE_TABLES: Dict[Tuple[str, str], MissRateModel] = {}


def calibrated_miss_surface(
    workload: str = "spec2000", policy: str = "lru", cache_dir=None
) -> MissRateModel:
    """Return an associativity-complete model for a standard workload.

    Where :func:`calibrated_miss_model` serves the committed
    reference-shape tables, this serves the workload's dense profile
    surface (:mod:`repro.perf.profile_store`): every curve of
    :data:`L1_GRID_KB` / :data:`L2_GRID_KB` at every surface
    associativity (1–16, powers of two), so
    ``model.l1_miss_rate(size, assoc)`` prices any shape the optimisers
    can build.  LRU surfaces are measured at
    :data:`ESTIMATOR_CALIBRATION_ACCESSES` accesses (the committed
    tables' provenance — the reference-assoc curves match the tables up
    to their 5-decimal rounding); non-LRU at
    :data:`POLICY_CALIBRATION_ACCESSES`, matching
    :func:`calibrated_miss_model`'s per-policy convention.  Memoised
    in-process, single-flighted and disk-cached by the store.
    """
    if policy not in _POLICIES:
        raise SimulationError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{_POLICIES}"
        )
    if workload not in STANDARD_WORKLOADS:
        raise SimulationError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(STANDARD_WORKLOADS)}"
        )
    key = (workload, policy)
    model = _SURFACE_TABLES.get(key)
    if model is not None:
        return model
    from repro.perf import profile_store as profile_store_tier

    n_accesses = (
        ESTIMATOR_CALIBRATION_ACCESSES
        if policy == "lru"
        else POLICY_CALIBRATION_ACCESSES
    )
    surface = profile_store_tier.get_store(cache_dir).surface(
        STANDARD_WORKLOADS[workload],
        policy=policy,
        n_accesses=n_accesses,
        seed=1,
    )
    assocs = profile_store_tier.SURFACE_ASSOCS
    model = MissRateModel(
        workload=workload,
        l1_curve=tuple(
            (kb * 1024, surface.l1_miss_rate(kb * 1024, REFERENCE_L1_ASSOC))
            for kb in L1_GRID_KB
        ),
        l2_curve=tuple(
            (
                kb * 1024,
                surface.l2_local_miss_rate(kb * 1024, REFERENCE_L2_ASSOC),
            )
            for kb in L2_GRID_KB
        ),
        l1_assoc_curves=tuple(
            (
                assoc,
                tuple(
                    (kb * 1024, surface.l1_miss_rate(kb * 1024, assoc))
                    for kb in L1_GRID_KB
                ),
            )
            for assoc in assocs
        ),
        l2_assoc_curves=tuple(
            (
                assoc,
                tuple(
                    (kb * 1024, surface.l2_local_miss_rate(kb * 1024, assoc))
                    for kb in L2_GRID_KB
                ),
            )
            for assoc in assocs
        ),
    )
    _SURFACE_TABLES[key] = model
    return model
