"""Memory-access records, trace streams, and array trace buffers.

Two representations of the same thing:

* a *stream* — any iterable of :class:`MemoryAccess` records.  Generators
  from :mod:`repro.archsim.workloads` produce them lazily so
  multi-million-access runs never materialise a list.  This is the
  original, fully general interface; every simulator still accepts it.
* a :class:`TraceBuffer` — a struct-of-arrays view (numpy ``addresses``
  + ``is_write``) of a trace segment.  The high-throughput engines
  (:class:`~repro.archsim.setassoc.ArraySetAssociativeCache`,
  :class:`~repro.archsim.hierarchy.ArrayTwoLevelHierarchy`, the
  offline stack-distance profiler) consume buffers chunk-wise and do all
  per-access address arithmetic as vector operations, so no
  ``MemoryAccess`` object is ever allocated on the hot path.

Validation happens at the buffer/stream boundary (construction or
``from_stream``), never per access inside a simulator loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError

#: Default number of accesses per chunk for chunked iteration.  Large
#: enough to amortise numpy call overhead, small enough to stay in cache.
DEFAULT_CHUNK = 1 << 16


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference.

    Attributes
    ----------
    address:
        Byte address (non-negative).
    is_write:
        True for a store.
    """

    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise SimulationError(f"address must be >= 0, got {self.address}")

    def block_address(self, block_bytes: int) -> int:
        """Return the block-aligned address for the given line size."""
        return self.address - (self.address % block_bytes)


#: Anything yielding MemoryAccess records.
TraceStream = Iterable[MemoryAccess]


class TraceBuffer:
    """Struct-of-arrays trace segment: parallel address / is-write arrays.

    Parameters
    ----------
    addresses:
        1-D array-like of non-negative byte addresses (stored as int64).
    is_write:
        1-D boolean array-like of the same length; defaults to all-reads.

    Buffers are immutable by convention (the arrays are flagged
    non-writeable) so chunk views can alias the parent storage safely.
    """

    __slots__ = ("addresses", "is_write")

    def __init__(
        self,
        addresses,
        is_write=None,
    ) -> None:
        address_array = np.asarray(addresses, dtype=np.int64)
        if address_array.ndim != 1:
            raise SimulationError(
                f"addresses must be 1-D, got shape {address_array.shape}"
            )
        if address_array.size and int(address_array.min()) < 0:
            raise SimulationError("addresses must be >= 0")
        if is_write is None:
            write_array = np.zeros(address_array.size, dtype=bool)
        else:
            write_array = np.asarray(is_write, dtype=bool)
            if write_array.shape != address_array.shape:
                raise SimulationError(
                    f"is_write shape {write_array.shape} does not match "
                    f"addresses shape {address_array.shape}"
                )
        address_array.flags.writeable = False
        write_array.flags.writeable = False
        object.__setattr__(self, "addresses", address_array)
        object.__setattr__(self, "is_write", write_array)

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("TraceBuffer is immutable")

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceBuffer):
            return NotImplemented
        return bool(
            np.array_equal(self.addresses, other.addresses)
            and np.array_equal(self.is_write, other.is_write)
        )

    def __repr__(self) -> str:
        return f"TraceBuffer(n={len(self)})"

    # -- views ----------------------------------------------------------

    def slice(self, start: int, stop: int) -> "TraceBuffer":
        """Return a zero-copy view of accesses [start, stop)."""
        view = object.__new__(TraceBuffer)
        object.__setattr__(view, "addresses", self.addresses[start:stop])
        object.__setattr__(view, "is_write", self.is_write[start:stop])
        return view

    def iter_chunks(
        self, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator["TraceBuffer"]:
        """Yield successive zero-copy chunk views of at most ``chunk_size``."""
        if chunk_size <= 0:
            raise SimulationError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, start + chunk_size)

    def block_addresses(self, block_bytes: int) -> np.ndarray:
        """Vectorized ``MemoryAccess.block_address`` over the buffer."""
        return self.addresses - (self.addresses % block_bytes)

    # -- conversion -----------------------------------------------------

    def iter_accesses(self) -> Iterator[MemoryAccess]:
        """Yield the buffer as ``MemoryAccess`` records (compat shim)."""
        for address, write in zip(
            self.addresses.tolist(), self.is_write.tolist()
        ):
            yield MemoryAccess(address=address, is_write=write)

    # Buffers double as streams: iterating one yields MemoryAccess.
    __iter__ = iter_accesses

    @classmethod
    def from_stream(
        cls, trace: TraceStream, limit: Optional[int] = None
    ) -> "TraceBuffer":
        """Materialise a record stream into one buffer.

        Record validation (the per-access ``isinstance`` that used to sit
        inside the profiler hot loop) happens once per record here, at
        the boundary — downstream array engines then trust the arrays.
        """
        if limit is not None and limit < 0:
            raise SimulationError(f"limit must be >= 0, got {limit}")
        addresses: List[int] = []
        writes: List[bool] = []
        for access in trace:
            if limit is not None and len(addresses) >= limit:
                break
            if not isinstance(access, MemoryAccess):
                raise SimulationError(
                    f"trace must yield MemoryAccess records, "
                    f"got {type(access)}"
                )
            addresses.append(access.address)
            writes.append(access.is_write)
        return cls(
            np.array(addresses, dtype=np.int64),
            np.array(writes, dtype=bool),
        )

    @staticmethod
    def concat(buffers: Sequence["TraceBuffer"]) -> "TraceBuffer":
        """Concatenate buffers into one (copies)."""
        buffers = list(buffers)
        if not buffers:
            return TraceBuffer(np.empty(0, dtype=np.int64))
        return TraceBuffer(
            np.concatenate([b.addresses for b in buffers]),
            np.concatenate([b.is_write for b in buffers]),
        )


#: Any trace representation the simulators accept.
TraceLike = Union[TraceStream, TraceBuffer]


def as_buffer(trace: TraceLike) -> TraceBuffer:
    """Coerce any trace representation to a :class:`TraceBuffer`.

    Accepts a buffer (returned as-is), a raw address array (reads), or a
    record stream (materialised with boundary validation).
    """
    if isinstance(trace, TraceBuffer):
        return trace
    if isinstance(trace, np.ndarray):
        return TraceBuffer(trace)
    return TraceBuffer.from_stream(trace)


def reads(addresses: Iterable[int]) -> Iterator[MemoryAccess]:
    """Wrap raw addresses as read accesses (testing convenience)."""
    for address in addresses:
        yield MemoryAccess(address=address, is_write=False)


def materialize(trace: TraceStream, limit: int = None) -> List[MemoryAccess]:
    """Collect a trace into a list, optionally truncated to ``limit``.

    Mostly for tests; production paths stream.
    """
    if limit is None:
        return list(trace)
    if limit < 0:
        raise SimulationError(f"limit must be >= 0, got {limit}")
    collected: List[MemoryAccess] = []
    for access in trace:
        if len(collected) >= limit:
            break
        collected.append(access)
    return collected
