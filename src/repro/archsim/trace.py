"""Memory-access records and trace streams.

A trace is any iterable of :class:`MemoryAccess` records.  Generators from
:mod:`repro.archsim.workloads` produce them lazily so multi-million-access
runs never materialise a list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.errors import SimulationError


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference.

    Attributes
    ----------
    address:
        Byte address (non-negative).
    is_write:
        True for a store.
    """

    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise SimulationError(f"address must be >= 0, got {self.address}")

    def block_address(self, block_bytes: int) -> int:
        """Return the block-aligned address for the given line size."""
        return self.address - (self.address % block_bytes)


#: Anything yielding MemoryAccess records.
TraceStream = Iterable[MemoryAccess]


def reads(addresses: Iterable[int]) -> Iterator[MemoryAccess]:
    """Wrap raw addresses as read accesses (testing convenience)."""
    for address in addresses:
        yield MemoryAccess(address=address, is_write=False)


def materialize(trace: TraceStream, limit: int = None) -> List[MemoryAccess]:
    """Collect a trace into a list, optionally truncated to ``limit``.

    Mostly for tests; production paths stream.
    """
    if limit is None:
        return list(trace)
    if limit < 0:
        raise SimulationError(f"limit must be >= 0, got {limit}")
    collected: List[MemoryAccess] = []
    for access in trace:
        if len(collected) >= limit:
            break
        collected.append(access)
    return collected
