"""Synthetic workload generators (the SPEC2000 / SPECWEB / TPC-C stand-ins).

The paper gathers miss statistics from SPEC2000, SPECWEB and TPC/C.  Those
traces are proprietary, so each suite is replaced by a seeded synthetic
address generator built from four locality ingredients that together
determine two-level miss behaviour:

* a **hot region** — a small, heavily reused working set (stack, hot
  loops, B-tree roots) accessed with a Zipf-like popularity profile; it
  gives L1 its high hit rate;
* a **streaming component** — word-sequential sweeps (scans, network
  buffers, memcpy): consecutive words of a block hit in L1, and each new
  block misses every level exactly once (no reuse);
* a **warm region** — a multi-megabyte uniformly reused set (heap,
  database pages): far larger than any L1, partially captured by an L2
  in proportion to capacity.  This is the component that makes *L2 size
  matter*;
* a **cold tail** — references scattered over the full footprint with no
  reuse (compulsory misses).

The mix fractions per suite are tuned so the published qualitative
profiles hold (and the test suite locks them in): L1 local miss rates are
low (a few percent) and nearly flat from 4 K to 64 K — the paper's
Section 5 premise, after [7] — while L2 local miss rates fall strongly
from 128 K to a few MB and then flatten.  TPC-C is the most memory-bound
(largest warm set, biggest cold tail), SPEC2000 the least.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import SimulationError
from repro.archsim.trace import MemoryAccess

#: Granularity of generated addresses (a typical word access).
ACCESS_GRANULARITY = 8

#: Block granularity assumed by the warm/cold components (matches the
#: reference L2 line size; the simulator re-blocks as needed).
REGION_BLOCK = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic suite.

    Attributes
    ----------
    name:
        Suite label (appears in reports).
    footprint_bytes:
        Total touched memory (cold tail spreads over all of it).
    hot_bytes:
        Size of the hot region (should fit in the smallest L1 studied).
    warm_bytes:
        Size of the warm region (should straddle the L2 sizes studied).
    hot_fraction:
        Probability an access goes to the hot region.
    stream_fraction:
        Probability an access continues the sequential stream.
    cold_fraction:
        Of the remaining (far) accesses, the fraction that goes to the
        cold tail instead of the warm region.
    hot_zipf_alpha:
        Pareto shape of the hot-region popularity profile.
    write_fraction:
        Probability any access is a store.
    """

    name: str
    footprint_bytes: int
    hot_bytes: int
    warm_bytes: int
    hot_fraction: float
    stream_fraction: float
    cold_fraction: float
    hot_zipf_alpha: float = 1.2
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.hot_bytes + self.warm_bytes > self.footprint_bytes:
            raise SimulationError(
                f"{self.name}: hot + warm regions exceed the footprint"
            )
        if not 0.0 <= self.hot_fraction + self.stream_fraction <= 1.0:
            raise SimulationError(
                f"{self.name}: hot + stream fractions exceed 1"
            )
        for label in ("cold_fraction", "write_fraction"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    f"{self.name}: {label} must be in [0, 1], got {value}"
                )
        if self.hot_zipf_alpha <= 0:
            raise SimulationError(
                f"{self.name}: hot_zipf_alpha must be positive"
            )

    @property
    def far_fraction(self) -> float:
        """Probability an access is a far (warm or cold) reference."""
        return 1.0 - self.hot_fraction - self.stream_fraction


#: SPEC2000-like: strong loop locality, modest warm set.
SPEC2000_LIKE = WorkloadSpec(
    name="spec2000",
    footprint_bytes=16 * 1024 * 1024,
    hot_bytes=2 * 1024,
    warm_bytes=1536 * 1024,
    hot_fraction=0.90,
    stream_fraction=0.06,
    cold_fraction=0.10,
)

#: SPECWEB-like: more streaming (network buffers, file chunks), bigger
#: warm set, more compulsory traffic.
SPECWEB_LIKE = WorkloadSpec(
    name="specweb",
    footprint_bytes=32 * 1024 * 1024,
    hot_bytes=3 * 1024,
    warm_bytes=3 * 1024 * 1024,
    hot_fraction=0.85,
    stream_fraction=0.10,
    cold_fraction=0.20,
)

#: TPC-C-like: large random page working set, the most memory-bound.
TPCC_LIKE = WorkloadSpec(
    name="tpcc",
    footprint_bytes=64 * 1024 * 1024,
    hot_bytes=3 * 1024,
    warm_bytes=8 * 1024 * 1024,
    hot_fraction=0.87,
    stream_fraction=0.03,
    cold_fraction=0.25,
)

STANDARD_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (SPEC2000_LIKE, SPECWEB_LIKE, TPCC_LIKE)
}


def synthetic_trace(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int = 0,
    block_bytes: int = REGION_BLOCK,
) -> Iterator[MemoryAccess]:
    """Yield ``n_accesses`` references following ``spec``.

    Deterministic for a given (spec, seed).  ``block_bytes`` controls the
    granularity of the warm/cold components.
    """
    if n_accesses < 0:
        raise SimulationError(f"n_accesses must be >= 0, got {n_accesses}")
    # zlib.crc32 rather than hash(): str hashing is salted per process and
    # would silently break cross-run reproducibility of the traces.
    rng = random.Random(zlib.crc32(spec.name.encode("utf-8")) ^ seed)

    hot_words = max(spec.hot_bytes // ACCESS_GRANULARITY, 1)
    warm_base = spec.hot_bytes
    warm_blocks = max(spec.warm_bytes // block_bytes, 1)
    cold_base = warm_base + spec.warm_bytes
    cold_bytes = max(spec.footprint_bytes - cold_base, block_bytes)
    cold_blocks = cold_bytes // block_bytes
    words_per_block = max(block_bytes // ACCESS_GRANULARITY, 1)

    # Streaming state: a word-granular cursor sweeping the cold area
    # (streams touch fresh memory; they are not reused).
    stream_word = 0

    for _ in range(n_accesses):
        draw = rng.random()
        if draw < spec.hot_fraction:
            rank = rng.paretovariate(spec.hot_zipf_alpha)
            word = int(rank) % hot_words
            address = word * ACCESS_GRANULARITY
        elif draw < spec.hot_fraction + spec.stream_fraction:
            address = cold_base + (
                (stream_word * ACCESS_GRANULARITY) % cold_bytes
            )
            stream_word += 1
        else:
            if rng.random() < spec.cold_fraction:
                block = rng.randrange(cold_blocks)
                base = cold_base + block * block_bytes
            else:
                block = rng.randrange(warm_blocks)
                base = warm_base + block * block_bytes
            word = rng.randrange(words_per_block)
            address = base + word * ACCESS_GRANULARITY
        is_write = rng.random() < spec.write_fraction
        yield MemoryAccess(address=address, is_write=is_write)
