"""Synthetic workload generators (the SPEC2000 / SPECWEB / TPC-C stand-ins).

The paper gathers miss statistics from SPEC2000, SPECWEB and TPC/C.  Those
traces are proprietary, so each suite is replaced by a seeded synthetic
address generator built from four locality ingredients that together
determine two-level miss behaviour:

* a **hot region** — a small, heavily reused working set (stack, hot
  loops, B-tree roots) accessed with a Zipf-like popularity profile; it
  gives L1 its high hit rate;
* a **streaming component** — word-sequential sweeps (scans, network
  buffers, memcpy): consecutive words of a block hit in L1, and each new
  block misses every level exactly once (no reuse);
* a **warm region** — a multi-megabyte uniformly reused set (heap,
  database pages): far larger than any L1, partially captured by an L2
  in proportion to capacity.  This is the component that makes *L2 size
  matter*;
* a **cold tail** — references scattered over the full footprint with no
  reuse (compulsory misses).

The mix fractions per suite are tuned so the published qualitative
profiles hold (and the test suite locks them in): L1 local miss rates are
low (a few percent) and nearly flat from 4 K to 64 K — the paper's
Section 5 premise, after [7] — while L2 local miss rates fall strongly
from 128 K to a few MB and then flatten.  TPC-C is the most memory-bound
(largest warm set, biggest cold tail), SPEC2000 the least.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from repro.errors import SimulationError
from repro.archsim.trace import DEFAULT_CHUNK, MemoryAccess, TraceBuffer

#: Granularity of generated addresses (a typical word access).
ACCESS_GRANULARITY = 8

#: Block granularity assumed by the warm/cold components (matches the
#: reference L2 line size; the simulator re-blocks as needed).
REGION_BLOCK = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic suite.

    Attributes
    ----------
    name:
        Suite label (appears in reports).
    footprint_bytes:
        Total touched memory (cold tail spreads over all of it).
    hot_bytes:
        Size of the hot region (should fit in the smallest L1 studied).
    warm_bytes:
        Size of the warm region (should straddle the L2 sizes studied).
    hot_fraction:
        Probability an access goes to the hot region.
    stream_fraction:
        Probability an access continues the sequential stream.
    cold_fraction:
        Of the remaining (far) accesses, the fraction that goes to the
        cold tail instead of the warm region.
    hot_zipf_alpha:
        Pareto shape of the hot-region popularity profile.
    write_fraction:
        Probability any access is a store.
    """

    name: str
    footprint_bytes: int
    hot_bytes: int
    warm_bytes: int
    hot_fraction: float
    stream_fraction: float
    cold_fraction: float
    hot_zipf_alpha: float = 1.2
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.hot_bytes + self.warm_bytes > self.footprint_bytes:
            raise SimulationError(
                f"{self.name}: hot + warm regions exceed the footprint"
            )
        if not 0.0 <= self.hot_fraction + self.stream_fraction <= 1.0:
            raise SimulationError(
                f"{self.name}: hot + stream fractions exceed 1"
            )
        for label in ("cold_fraction", "write_fraction"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    f"{self.name}: {label} must be in [0, 1], got {value}"
                )
        if self.hot_zipf_alpha <= 0:
            raise SimulationError(
                f"{self.name}: hot_zipf_alpha must be positive"
            )

    @property
    def far_fraction(self) -> float:
        """Probability an access is a far (warm or cold) reference."""
        return 1.0 - self.hot_fraction - self.stream_fraction


#: SPEC2000-like: strong loop locality, modest warm set.
SPEC2000_LIKE = WorkloadSpec(
    name="spec2000",
    footprint_bytes=16 * 1024 * 1024,
    hot_bytes=2 * 1024,
    warm_bytes=1536 * 1024,
    hot_fraction=0.90,
    stream_fraction=0.06,
    cold_fraction=0.10,
)

#: SPECWEB-like: more streaming (network buffers, file chunks), bigger
#: warm set, more compulsory traffic.
SPECWEB_LIKE = WorkloadSpec(
    name="specweb",
    footprint_bytes=32 * 1024 * 1024,
    hot_bytes=3 * 1024,
    warm_bytes=3 * 1024 * 1024,
    hot_fraction=0.85,
    stream_fraction=0.10,
    cold_fraction=0.20,
)

#: TPC-C-like: large random page working set, the most memory-bound.
TPCC_LIKE = WorkloadSpec(
    name="tpcc",
    footprint_bytes=64 * 1024 * 1024,
    hot_bytes=3 * 1024,
    warm_bytes=8 * 1024 * 1024,
    hot_fraction=0.87,
    stream_fraction=0.03,
    cold_fraction=0.25,
)

STANDARD_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (SPEC2000_LIKE, SPECWEB_LIKE, TPCC_LIKE)
}


@dataclass(frozen=True)
class _TraceGeometry:
    """Derived address-layout constants shared by both generator paths."""

    hot_words: int
    warm_base: int
    warm_blocks: int
    cold_base: int
    cold_bytes: int
    cold_blocks: int
    words_per_block: int


def _trace_geometry(spec: WorkloadSpec, block_bytes: int) -> _TraceGeometry:
    warm_base = spec.hot_bytes
    cold_base = warm_base + spec.warm_bytes
    cold_bytes = max(spec.footprint_bytes - cold_base, block_bytes)
    return _TraceGeometry(
        hot_words=max(spec.hot_bytes // ACCESS_GRANULARITY, 1),
        warm_base=warm_base,
        warm_blocks=max(spec.warm_bytes // block_bytes, 1),
        cold_base=cold_base,
        cold_bytes=cold_bytes,
        cold_blocks=cold_bytes // block_bytes,
        words_per_block=max(block_bytes // ACCESS_GRANULARITY, 1),
    )


def _trace_seed(spec: WorkloadSpec, seed: int) -> int:
    # zlib.crc32 rather than hash(): str hashing is salted per process and
    # would silently break cross-run reproducibility of the traces.
    return zlib.crc32(spec.name.encode("utf-8")) ^ seed


def synthetic_trace(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int = 0,
    block_bytes: int = REGION_BLOCK,
) -> Iterator[MemoryAccess]:
    """Yield ``n_accesses`` references following ``spec``.

    Deterministic for a given (spec, seed).  ``block_bytes`` controls the
    granularity of the warm/cold components.

    This is the original per-record generator, kept as the compatibility
    shim (its byte-exact output is pinned by existing seeds and tests).
    Throughput-sensitive callers should use :func:`synthetic_trace_buffer`
    / :func:`synthetic_trace_chunks`, which emit the same *distribution*
    from a vectorized ``numpy.random.Generator`` stream at two orders of
    magnitude higher rate (the two RNGs differ, so the sequences are not
    record-identical).
    """
    if n_accesses < 0:
        raise SimulationError(f"n_accesses must be >= 0, got {n_accesses}")
    rng = random.Random(_trace_seed(spec, seed))

    geometry = _trace_geometry(spec, block_bytes)
    hot_words = geometry.hot_words
    warm_base = geometry.warm_base
    warm_blocks = geometry.warm_blocks
    cold_base = geometry.cold_base
    cold_bytes = geometry.cold_bytes
    cold_blocks = geometry.cold_blocks
    words_per_block = geometry.words_per_block

    # Streaming state: a word-granular cursor sweeping the cold area
    # (streams touch fresh memory; they are not reused).
    stream_word = 0

    for _ in range(n_accesses):
        draw = rng.random()
        if draw < spec.hot_fraction:
            rank = rng.paretovariate(spec.hot_zipf_alpha)
            word = int(rank) % hot_words
            address = word * ACCESS_GRANULARITY
        elif draw < spec.hot_fraction + spec.stream_fraction:
            address = cold_base + (
                (stream_word * ACCESS_GRANULARITY) % cold_bytes
            )
            stream_word += 1
        else:
            if rng.random() < spec.cold_fraction:
                block = rng.randrange(cold_blocks)
                base = cold_base + block * block_bytes
            else:
                block = rng.randrange(warm_blocks)
                base = warm_base + block * block_bytes
            word = rng.randrange(words_per_block)
            address = base + word * ACCESS_GRANULARITY
        is_write = rng.random() < spec.write_fraction
        yield MemoryAccess(address=address, is_write=is_write)


# -- vectorized generators ----------------------------------------------
#
# The four locality ingredients each have an array sampler drawing from a
# shared numpy Generator.  `synthetic_trace_buffer` composes them into a
# whole trace with one boolean-mask pass — no per-access Python work.

def hot_region_addresses(
    rng: np.random.Generator, spec: WorkloadSpec, count: int
) -> np.ndarray:
    """Sample ``count`` hot-region addresses (Zipf-like popularity)."""
    geometry = _trace_geometry(spec, REGION_BLOCK)
    # paretovariate(alpha) = (1/U)**(1/alpha) with U in (0, 1].
    u = 1.0 - rng.random(count)
    rank = np.power(1.0 / u, 1.0 / spec.hot_zipf_alpha)
    # Clamp before the int cast: sub-unity alphas can push rank past
    # int64 range, and the modulo makes the clamp distribution-neutral.
    words = np.minimum(rank, 2.0**62).astype(np.int64) % geometry.hot_words
    return words * ACCESS_GRANULARITY


def stream_addresses(
    spec: WorkloadSpec,
    start_word: int,
    count: int,
    block_bytes: int = REGION_BLOCK,
) -> np.ndarray:
    """Sequential stream addresses for cursor positions ``start_word``.. ."""
    geometry = _trace_geometry(spec, block_bytes)
    words = start_word + np.arange(count, dtype=np.int64)
    return geometry.cold_base + (
        words * ACCESS_GRANULARITY
    ) % geometry.cold_bytes


def warm_region_addresses(
    rng: np.random.Generator,
    spec: WorkloadSpec,
    count: int,
    block_bytes: int = REGION_BLOCK,
) -> np.ndarray:
    """Sample ``count`` uniformly reused warm-region addresses."""
    geometry = _trace_geometry(spec, block_bytes)
    blocks = rng.integers(0, geometry.warm_blocks, count)
    words = rng.integers(0, geometry.words_per_block, count)
    return (
        geometry.warm_base + blocks * block_bytes + words * ACCESS_GRANULARITY
    )


def cold_tail_addresses(
    rng: np.random.Generator,
    spec: WorkloadSpec,
    count: int,
    block_bytes: int = REGION_BLOCK,
) -> np.ndarray:
    """Sample ``count`` no-reuse cold-tail addresses."""
    geometry = _trace_geometry(spec, block_bytes)
    blocks = rng.integers(0, geometry.cold_blocks, count)
    words = rng.integers(0, geometry.words_per_block, count)
    return (
        geometry.cold_base + blocks * block_bytes + words * ACCESS_GRANULARITY
    )


def synthetic_trace_buffer(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int = 0,
    block_bytes: int = REGION_BLOCK,
) -> TraceBuffer:
    """Generate a whole synthetic trace as one :class:`TraceBuffer`.

    Same mix distribution as :func:`synthetic_trace` (hot / stream /
    warm / cold fractions, Zipf hot profile, write fraction) drawn from a
    seeded ``numpy.random.Generator``, fully vectorized.  Deterministic
    in (spec, n_accesses, seed, block_bytes) and independent of how the
    result is later chunked.  Memory cost is ~9 bytes per access.
    """
    if n_accesses < 0:
        raise SimulationError(f"n_accesses must be >= 0, got {n_accesses}")
    rng = np.random.default_rng(_trace_seed(spec, seed))
    geometry = _trace_geometry(spec, block_bytes)

    draw = rng.random(n_accesses)
    hot_mask = draw < spec.hot_fraction
    stream_mask = (~hot_mask) & (
        draw < spec.hot_fraction + spec.stream_fraction
    )
    far_mask = ~(hot_mask | stream_mask)

    addresses = np.zeros(n_accesses, dtype=np.int64)
    n_hot = int(hot_mask.sum())
    if n_hot:
        addresses[hot_mask] = hot_region_addresses(rng, spec, n_hot)
    n_stream = int(stream_mask.sum())
    if n_stream:
        addresses[stream_mask] = stream_addresses(
            spec, 0, n_stream, block_bytes
        )
    n_far = int(far_mask.sum())
    if n_far:
        cold_sel = rng.random(n_far) < spec.cold_fraction
        far = np.empty(n_far, dtype=np.int64)
        n_cold = int(cold_sel.sum())
        if n_cold:
            far[cold_sel] = cold_tail_addresses(rng, spec, n_cold, block_bytes)
        if n_far - n_cold:
            far[~cold_sel] = warm_region_addresses(
                rng, spec, n_far - n_cold, block_bytes
            )
        addresses[far_mask] = far

    is_write = rng.random(n_accesses) < spec.write_fraction
    return TraceBuffer(addresses, is_write)


def synthetic_trace_chunks(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int = 0,
    block_bytes: int = REGION_BLOCK,
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[TraceBuffer]:
    """Yield the vectorized trace as zero-copy chunks.

    Chunking never changes the access sequence: the trace is generated
    once by :func:`synthetic_trace_buffer` and sliced.
    """
    buffer = synthetic_trace_buffer(spec, n_accesses, seed, block_bytes)
    return buffer.iter_chunks(chunk_size)
