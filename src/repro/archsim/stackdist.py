"""Mattson stack-distance (reuse-distance) analysis.

The classic single-pass characterisation of a reference stream: the
*stack distance* of an access is the number of distinct blocks touched
since the previous access to the same block.  For a fully-associative LRU
cache the inclusion property makes the histogram exact: a cache of
capacity ``C`` blocks misses exactly the accesses whose stack distance is
``>= C`` plus the cold (first-touch) accesses.  One profiling pass
therefore predicts the miss rate of *every* capacity at once.

Two uses here:

* a library feature — profile any trace once, read off the whole
  miss-rate-vs-size curve (how the paper's per-size architectural runs
  could have been done in one pass);
* a correctness oracle — the test suite checks the prediction against
  the event-driven simulator *exactly* for fully-associative LRU caches,
  tying the two independent implementations together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import SimulationError
from repro.archsim.trace import MemoryAccess, TraceStream


@dataclass(frozen=True)
class StackDistanceProfile:
    """The reuse profile of one reference stream.

    Attributes
    ----------
    block_bytes:
        Granularity the stream was profiled at.
    histogram:
        stack distance -> access count (distance 0 = immediate re-use).
    cold_accesses:
        First-touch accesses (infinite stack distance).
    total_accesses:
        All accesses profiled.
    """

    block_bytes: int
    histogram: Dict[int, int]
    cold_accesses: int
    total_accesses: int

    def miss_rate(self, capacity_blocks: int) -> float:
        """Predicted miss rate of a ``capacity_blocks`` fully-assoc LRU cache."""
        if capacity_blocks < 0:
            raise SimulationError(
                f"capacity must be >= 0 blocks, got {capacity_blocks}"
            )
        if self.total_accesses == 0:
            return 0.0
        far = sum(
            count
            for distance, count in self.histogram.items()
            if distance >= capacity_blocks
        )
        return (far + self.cold_accesses) / self.total_accesses

    def miss_curve(self, capacities_blocks: Iterable[int]) -> Dict[int, float]:
        """Predicted miss rate at each capacity (blocks)."""
        return {
            capacity: self.miss_rate(capacity)
            for capacity in capacities_blocks
        }

    @property
    def distinct_blocks(self) -> int:
        """Footprint of the stream in blocks (= cold accesses)."""
        return self.cold_accesses

    def mean_distance(self) -> float:
        """Mean finite stack distance (NaN if no reuse at all)."""
        reused = self.total_accesses - self.cold_accesses
        if reused == 0:
            return float("nan")
        weighted = sum(
            distance * count for distance, count in self.histogram.items()
        )
        return weighted / reused


def stack_distance_profile(
    trace: TraceStream, block_bytes: int = 64
) -> StackDistanceProfile:
    """Profile a trace in one pass (list-based LRU stack).

    O(n * d) in the mean distance ``d`` — fine for the trace lengths the
    test suite and examples use; production-scale traces would swap the
    list for a Bennett-Kruskal tree without changing the interface.
    """
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise SimulationError(
            f"block_bytes must be a positive power of two, got {block_bytes}"
        )
    stack: List[int] = []  # most recent first
    histogram: Dict[int, int] = {}
    cold = 0
    total = 0
    for access in trace:
        if not isinstance(access, MemoryAccess):
            raise SimulationError(
                f"trace must yield MemoryAccess records, got {type(access)}"
            )
        total += 1
        block = access.block_address(block_bytes)
        try:
            distance = stack.index(block)
        except ValueError:
            cold += 1
            stack.insert(0, block)
            continue
        histogram[distance] = histogram.get(distance, 0) + 1
        del stack[distance]
        stack.insert(0, block)
    return StackDistanceProfile(
        block_bytes=block_bytes,
        histogram=dict(sorted(histogram.items())),
        cold_accesses=cold,
        total_accesses=total,
    )
