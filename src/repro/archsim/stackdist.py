"""Mattson stack-distance (reuse-distance) analysis.

The classic single-pass characterisation of a reference stream: the
*stack distance* of an access is the number of distinct blocks touched
since the previous access to the same block.  For a fully-associative LRU
cache the inclusion property makes the histogram exact: a cache of
capacity ``C`` blocks misses exactly the accesses whose stack distance is
``>= C`` plus the cold (first-touch) accesses.  One profiling pass
therefore predicts the miss rate of *every* capacity at once.

Two uses here:

* a library feature — profile any trace once, read off the whole
  miss-rate-vs-size curve (how the paper's per-size architectural runs
  could have been done in one pass);
* a correctness oracle — the test suite checks the prediction against
  the event-driven simulator *exactly* for fully-associative LRU caches,
  tying the two independent implementations together.

Three engines compute the same histogram:

* ``engine="offline"`` (the ``"auto"`` default) — a fully vectorized
  O(n log n) pass over the materialised block-address array.  Each
  access's distance is expressed as a 2-D dominance count — with
  ``prev[j]`` the previous occurrence of the block at position ``j``,
  ``distance(i) = #{prev[i] < j < i : prev[j] <= prev[i]}`` — and the
  counts for all accesses are resolved level-by-level with per-level
  sorts and one batched ``searchsorted`` (a divide-and-conquer Fenwick
  equivalent with numpy doing the inner loops);
* ``engine="fenwick"`` — the streaming Bennett–Kruskal/Olken algorithm:
  a Fenwick tree over time positions holds one marker per distinct
  block at its most recent occurrence, and a prefix-sum difference
  yields each distance in O(log n).  Use it when the trace cannot be
  materialised;
* ``engine="list"`` — the original O(n·d) LRU-stack scan, kept as the
  independent reference implementation the equivalence tests (and the
  benchmark baseline) run against.

The *per-set* generalisation lives in :mod:`repro.archsim.setdist`
(re-exported here): Mattson inclusion holds inside each cache set, so
one contraction-cascade pass keyed by ``(block_bytes, n_sets)`` answers
every set-associative ``(size, assoc)`` LRU point exactly — the engine
behind ``estimator="setdist"`` calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.archsim.setdist import (
    SetDistanceProfile,
    per_set_profiles,
    two_level_profiles,
)
from repro.archsim.trace import MemoryAccess, TraceLike, as_buffer


@dataclass(frozen=True)
class StackDistanceProfile:
    """The reuse profile of one reference stream.

    Attributes
    ----------
    block_bytes:
        Granularity the stream was profiled at.
    histogram:
        stack distance -> access count (distance 0 = immediate re-use).
    cold_accesses:
        First-touch accesses (infinite stack distance).
    total_accesses:
        All accesses profiled.
    """

    block_bytes: int
    histogram: Dict[int, int]
    cold_accesses: int
    total_accesses: int

    def _cumulative(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted distance keys + suffix counts, built once per profile.

        ``tail[i]`` counts accesses at distance ``>= distances[i]`` (with
        a trailing 0), so any miss rate is one binary search instead of
        an O(histogram) sum per query.
        """
        cached = self.__dict__.get("_tail_cache")
        if cached is None:
            distances = np.fromiter(
                self.histogram.keys(), dtype=np.int64, count=len(self.histogram)
            )
            counts = np.fromiter(
                self.histogram.values(),
                dtype=np.int64,
                count=len(self.histogram),
            )
            order = np.argsort(distances)
            distances = distances[order]
            tail = np.zeros(distances.size + 1, dtype=np.int64)
            tail[:-1] = np.cumsum(counts[order][::-1])[::-1]
            cached = (distances, tail)
            object.__setattr__(self, "_tail_cache", cached)
        return cached

    def miss_rate(self, capacity_blocks: int) -> float:
        """Predicted miss rate of a ``capacity_blocks`` fully-assoc LRU cache."""
        if capacity_blocks < 0:
            raise SimulationError(
                f"capacity must be >= 0 blocks, got {capacity_blocks}"
            )
        if self.total_accesses == 0:
            return 0.0
        distances, tail = self._cumulative()
        far = int(tail[np.searchsorted(distances, capacity_blocks)])
        return (far + self.cold_accesses) / self.total_accesses

    def miss_curve(self, capacities_blocks: Iterable[int]) -> Dict[int, float]:
        """Predicted miss rate at each capacity (blocks).

        One batched binary search over the cumulative arrays — the whole
        curve costs O(len(capacities) · log(histogram)).
        """
        capacities = list(capacities_blocks)
        if not capacities:
            return {}
        if min(capacities) < 0:
            raise SimulationError("capacities must be >= 0 blocks")
        if self.total_accesses == 0:
            return {capacity: 0.0 for capacity in capacities}
        distances, tail = self._cumulative()
        far = tail[
            np.searchsorted(
                distances, np.asarray(capacities, dtype=np.int64)
            )
        ]
        return {
            capacity: (int(count) + self.cold_accesses) / self.total_accesses
            for capacity, count in zip(capacities, far)
        }

    @property
    def distinct_blocks(self) -> int:
        """Footprint of the stream in blocks (= cold accesses)."""
        return self.cold_accesses

    def mean_distance(self) -> float:
        """Mean finite stack distance (NaN if no reuse at all)."""
        reused = self.total_accesses - self.cold_accesses
        if reused == 0:
            return float("nan")
        weighted = sum(
            distance * count for distance, count in self.histogram.items()
        )
        return weighted / reused


# -- streaming engine: Bennett-Kruskal / Olken ---------------------------

class FenwickTree:
    """Binary indexed tree over ``[0, capacity)`` (point add, prefix sum)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(
                f"capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._nodes = [0] * (capacity + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at ``index``."""
        nodes = self._nodes
        position = index + 1
        capacity = self.capacity
        while position <= capacity:
            nodes[position] += delta
            position += position & -position

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions ``[0, index]``."""
        nodes = self._nodes
        position = index + 1
        total = 0
        while position > 0:
            total += nodes[position]
            position -= position & -position
        return total


class OlkenProfiler:
    """Incremental stack-distance profiler (Fenwick over time positions).

    Feed block-address chunks in stream order; each distinct block keeps
    one marker in the tree at its most recent position, so the distance
    of a re-access is the marker count strictly between the previous and
    current occurrence — two O(log n) prefix sums.  The tree grows by
    doubling, so no trace length needs to be known up front.
    """

    def __init__(self, block_bytes: int = 64, capacity_hint: int = 1 << 16):
        _validate_block_bytes(block_bytes)
        self.block_bytes = block_bytes
        self._tree = FenwickTree(max(capacity_hint, 16))
        self._marks: List[int] = []  # 1 where a block's latest position is
        self._last_position: Dict[int, int] = {}
        self._histogram: Dict[int, int] = {}
        self._cold = 0
        self._time = 0

    def _grow(self, needed: int) -> None:
        """Grow geometrically; rebuild the tree in O(capacity).

        Capacity at least doubles per overflow, so the total rebuild
        work over any stream is a geometric series in the final
        capacity — O(n) — instead of one O(log n) point-add per
        surviving mark per overflow.  The rebuild seeds the leaf slots
        with the mark vector and pushes each node's partial sum to its
        Fenwick parent once.
        """
        capacity = max(self._tree.capacity * 2, 16)
        while capacity < needed:
            capacity *= 2
        tree = FenwickTree(capacity)
        nodes = tree._nodes
        nodes[1:len(self._marks) + 1] = self._marks
        for position in range(1, capacity + 1):
            parent = position + (position & -position)
            if parent <= capacity:
                nodes[parent] += nodes[position]
        self._tree = tree

    def feed(self, trace: TraceLike) -> "OlkenProfiler":
        """Profile one chunk of accesses (any trace representation)."""
        blocks = (
            as_buffer(trace).addresses & -self.block_bytes
        ).tolist()
        if self._time + len(blocks) > self._tree.capacity:
            self._grow(self._time + len(blocks))
        tree = self._tree
        marks = self._marks
        last_position = self._last_position
        histogram = self._histogram
        time = self._time
        for block in blocks:
            previous = last_position.get(block)
            if previous is None:
                self._cold += 1
            else:
                distance = tree.prefix_sum(time - 1) - tree.prefix_sum(
                    previous
                )
                histogram[distance] = histogram.get(distance, 0) + 1
                tree.add(previous, -1)
                marks[previous] = 0
            tree.add(time, 1)
            marks.append(1)
            last_position[block] = time
            time += 1
        self._time = time
        return self

    def profile(self) -> StackDistanceProfile:
        """Return the profile of everything fed so far."""
        return StackDistanceProfile(
            block_bytes=self.block_bytes,
            histogram=dict(sorted(self._histogram.items())),
            cold_accesses=self._cold,
            total_accesses=self._time,
        )


# -- offline engine: vectorized dominance counting -----------------------

def _previous_occurrences(blocks: np.ndarray) -> np.ndarray:
    """``prev[i]`` = previous index touching the same block, or -1."""
    n = blocks.size
    previous = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return previous
    ids = np.unique(blocks, return_inverse=True)[1]
    order = np.argsort(ids, kind="stable")
    same = ids[order[1:]] == ids[order[:-1]]
    previous[order[1:][same]] = order[:-1][same]
    return previous


def _rank_before(
    values: np.ndarray, query_positions: np.ndarray, query_values: np.ndarray
) -> np.ndarray:
    """For each query, count ``j < position`` with ``values[j] <= value``.

    Bottom-up divide and conquer: a (j, i) pair is counted at the unique
    level where j's block is the left sibling of i's block.  Per level,
    the left blocks are sorted row-wise and all queries resolve with one
    batched ``searchsorted`` on an offset-flattened array (row bases
    strictly dominate in-row values, so the flat array stays sorted).
    """
    n = values.size
    result = np.zeros(query_positions.size, dtype=np.int64)
    if n <= 1 or query_positions.size == 0:
        return result
    padded_size = 1 << (n - 1).bit_length()
    sentinel = n + 1  # larger than any real value or query
    padded = np.full(padded_size, sentinel, dtype=np.int64)
    padded[:n] = values
    row_stride = sentinel + 2
    half = 1
    while half < padded_size:
        # Queries whose block index is odd at this level look left.
        looks_left = (query_positions & half) != 0
        if looks_left.any():
            positions = query_positions[looks_left]
            rows = positions // (2 * half)
            left = np.sort(
                padded.reshape(-1, 2 * half)[:, :half], axis=1
            )
            flat = (
                left
                + (
                    np.arange(left.shape[0], dtype=np.int64) * row_stride
                )[:, None]
            ).ravel()
            counts = (
                np.searchsorted(
                    flat,
                    rows * row_stride + query_values[looks_left],
                    side="right",
                )
                - rows * half
            )
            result[looks_left] += counts
        half *= 2
    return result


def _offline_histogram(
    blocks: np.ndarray,
) -> Tuple[Dict[int, int], int]:
    """Histogram + cold count of a block-address array, O(n log n)."""
    previous = _previous_occurrences(blocks)
    reused = np.nonzero(previous >= 0)[0]
    cold = int(blocks.size - reused.size)
    if reused.size == 0:
        return {}, cold
    previous_of_reused = previous[reused]
    # distance(i) = #{p < j < i : prev[j] <= p} with p = prev[i]
    #             = #{j < i : prev[j] <= p} - (p + 1)
    # (prev[j] < j makes every j <= p count automatically).
    ranks = _rank_before(previous, reused, previous_of_reused)
    distances = ranks - (previous_of_reused + 1)
    counts = np.bincount(distances)
    nonzero = np.nonzero(counts)[0]
    return {
        int(distance): int(counts[distance]) for distance in nonzero
    }, cold


# -- reference engine: O(n * d) LRU-stack scan ---------------------------

def _profile_list(trace, block_bytes: int) -> StackDistanceProfile:
    """The original list-based scan (reference oracle and baseline)."""
    stack: List[int] = []  # most recent first
    histogram: Dict[int, int] = {}
    cold = 0
    total = 0
    for access in trace:
        if not isinstance(access, MemoryAccess):
            raise SimulationError(
                f"trace must yield MemoryAccess records, got {type(access)}"
            )
        total += 1
        block = access.block_address(block_bytes)
        try:
            distance = stack.index(block)
        except ValueError:
            cold += 1
            stack.insert(0, block)
            continue
        histogram[distance] = histogram.get(distance, 0) + 1
        del stack[distance]
        stack.insert(0, block)
    return StackDistanceProfile(
        block_bytes=block_bytes,
        histogram=dict(sorted(histogram.items())),
        cold_accesses=cold,
        total_accesses=total,
    )


def _validate_block_bytes(block_bytes: int) -> None:
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise SimulationError(
            f"block_bytes must be a positive power of two, got {block_bytes}"
        )


def stack_distance_profile(
    trace: TraceLike, block_bytes: int = 64, engine: str = "auto"
) -> StackDistanceProfile:
    """Profile a trace in one pass.

    ``trace`` may be a record stream, a
    :class:`~repro.archsim.trace.TraceBuffer`, or a raw address array.
    ``engine`` selects the implementation (see the module docstring):
    ``"auto"``/``"offline"`` (vectorized O(n log n), the default),
    ``"fenwick"`` (streaming Olken), or ``"list"`` (the O(n·d)
    reference).  All three produce identical profiles.
    """
    _validate_block_bytes(block_bytes)
    if engine == "list":
        buffer_like = trace
        if isinstance(trace, np.ndarray):
            buffer_like = as_buffer(trace)
        return _profile_list(buffer_like, block_bytes)
    if engine == "fenwick":
        return OlkenProfiler(block_bytes=block_bytes).feed(trace).profile()
    if engine not in ("auto", "offline"):
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of "
            f"'auto', 'offline', 'fenwick', 'list'"
        )
    buffer = as_buffer(trace)
    blocks = buffer.addresses & -block_bytes
    histogram, cold = _offline_histogram(blocks)
    return StackDistanceProfile(
        block_bytes=block_bytes,
        histogram=histogram,
        cold_accesses=cold,
        total_accesses=len(buffer),
    )
