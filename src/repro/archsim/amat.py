"""Average memory access time (AMAT).

The Section 5 performance constraint::

    AMAT = t_L1 + m_L1 * (t_L2 + m_L2 * t_mem)

with *local* miss rates at each level.  The paper trades AMAT against
leakage: a bigger L2 lowers ``m_L2`` (architectural gain) while more
aggressive knobs lower ``t_L1`` / ``t_L2`` (circuit gain) — both routes
buy back the same AMAT, at very different leakage prices.
"""

from __future__ import annotations

from repro.errors import SimulationError


def amat_two_level(
    l1_hit_time: float,
    l1_miss_rate: float,
    l2_hit_time: float,
    l2_local_miss_rate: float,
    memory_latency: float,
) -> float:
    """Return the AMAT (same unit as the input times).

    Parameters
    ----------
    l1_hit_time / l2_hit_time:
        Access (hit) times of each level.
    l1_miss_rate / l2_local_miss_rate:
        Local miss rates (fractions in [0, 1]).
    memory_latency:
        Main-memory access latency.
    """
    for label, rate in (
        ("l1_miss_rate", l1_miss_rate),
        ("l2_local_miss_rate", l2_local_miss_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"{label} must be in [0, 1], got {rate}")
    for label, value in (
        ("l1_hit_time", l1_hit_time),
        ("l2_hit_time", l2_hit_time),
        ("memory_latency", memory_latency),
    ):
        if value < 0:
            raise SimulationError(f"{label} must be >= 0, got {value}")
    l2_penalty = l2_hit_time + l2_local_miss_rate * memory_latency
    return l1_hit_time + l1_miss_rate * l2_penalty
