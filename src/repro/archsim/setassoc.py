"""Write-back, write-allocate set-associative cache simulators.

Two implementations of the same semantics:

* :class:`SetAssociativeCache` — the original per-record simulator with
  pluggable replacement policies; one :class:`AccessResult` per access.
* :class:`ArraySetAssociativeCache` — the high-throughput engine:
  consumes address/write arrays chunk-wise, does the block/set
  arithmetic as numpy vector ops and runs a tight per-set ordered-dict
  core.  LRU, FIFO and seeded-random replacement are supported — FIFO
  is the LRU dict trick *without* the reinsert-on-hit (insertion order
  then is fill order), and random keeps the same fill-order dict but
  draws the victim from a seeded :class:`random.Random`.  Statistics
  are bit-identical to the per-record simulator with the matching
  :mod:`~repro.archsim.replacement` policy on the same trace (the
  property suite locks this in).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.units import is_power_of_two
from repro.archsim.replacement import ReplacementPolicy, LruPolicy
from repro.archsim.stats import CacheStats
from repro.archsim.trace import (
    DEFAULT_CHUNK,
    MemoryAccess,
    TraceLike,
    as_buffer,
)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access.

    Attributes
    ----------
    hit:
        True if the block was resident.
    evicted_block:
        Block address evicted to make room, or None.
    evicted_dirty:
        True if the eviction was a dirty write-back.
    """

    hit: bool
    evicted_block: Optional[int] = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """One level of cache: write-back, write-allocate.

    Parameters
    ----------
    size_bytes / block_bytes / associativity:
        The usual shape parameters (powers of two).
    policy:
        Replacement policy instance; defaults to a fresh LRU.
    name:
        Label for error messages and reports.
    """

    def __init__(
        self,
        size_bytes: int,
        block_bytes: int,
        associativity: int,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        for label, value in (
            ("size_bytes", size_bytes),
            ("block_bytes", block_bytes),
            ("associativity", associativity),
        ):
            if not is_power_of_two(value):
                raise SimulationError(
                    f"{name}: {label} must be a power of two, got {value}"
                )
        n_blocks = size_bytes // block_bytes
        if associativity > n_blocks:
            raise SimulationError(
                f"{name}: associativity {associativity} exceeds "
                f"{n_blocks} blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = n_blocks // associativity
        self.policy = policy if policy is not None else LruPolicy()
        self.stats = CacheStats()
        # set index -> {block address: dirty}
        self._sets: Dict[int, Dict[int, bool]] = {}

    # -- addressing -----------------------------------------------------

    def set_index(self, block_address: int) -> int:
        """Return the set an aligned block address maps to."""
        return (block_address // self.block_bytes) % self.n_sets

    # -- main entry -----------------------------------------------------

    def access(self, access: MemoryAccess) -> AccessResult:
        """Simulate one access; returns hit/miss and any eviction."""
        block = access.block_address(self.block_bytes)
        index = self.set_index(block)
        resident = self._sets.setdefault(index, {})

        if block in resident:
            self.stats.record_hit()
            self.policy.on_access(index, block)
            if access.is_write:
                resident[block] = True
            return AccessResult(hit=True)

        self.stats.record_miss(access.is_write)
        evicted_block: Optional[int] = None
        evicted_dirty = False
        if len(resident) >= self.associativity:
            victim = self.policy.choose_victim(index, list(resident))
            # pop() doubles as the residency check: validating membership
            # up front would cost every miss for a condition only a buggy
            # policy can produce.
            try:
                evicted_dirty = resident.pop(victim)
            except KeyError:
                raise SimulationError(
                    f"{self.name}: policy chose non-resident victim {victim}"
                )
            evicted_block = victim
            self.policy.on_evict(index, victim)
            self.stats.record_eviction(evicted_dirty)
        resident[block] = access.is_write
        self.policy.on_fill(index, block)
        return AccessResult(
            hit=False, evicted_block=evicted_block, evicted_dirty=evicted_dirty
        )

    # -- introspection ----------------------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address - (address % self.block_bytes)
        return block in self._sets.get(self.set_index(block), {})

    def resident_blocks(self) -> int:
        """Return the number of blocks currently resident."""
        return sum(len(blocks) for blocks in self._sets.values())

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; True if it was resident."""
        block = address - (address % self.block_bytes)
        index = self.set_index(block)
        resident = self._sets.get(index, {})
        if block in resident:
            del resident[block]
            self.policy.on_evict(index, block)
            return True
        return False

    def flush(self) -> int:
        """Empty the cache; return how many dirty blocks were dropped."""
        dirty = sum(
            1
            for blocks in self._sets.values()
            for is_dirty in blocks.values()
            if is_dirty
        )
        self._sets.clear()
        return dirty


def _validate_shape(
    size_bytes: int, block_bytes: int, associativity: int, name: str
) -> int:
    """Shared shape validation; returns the set count."""
    for label, value in (
        ("size_bytes", size_bytes),
        ("block_bytes", block_bytes),
        ("associativity", associativity),
    ):
        if not is_power_of_two(value):
            raise SimulationError(
                f"{name}: {label} must be a power of two, got {value}"
            )
    n_blocks = size_bytes // block_bytes
    if associativity > n_blocks:
        raise SimulationError(
            f"{name}: associativity {associativity} exceeds "
            f"{n_blocks} blocks"
        )
    return n_blocks // associativity


class ArraySetAssociativeCache:
    """Chunk-wise set-associative simulator (write-back, write-alloc).

    Each set is a plain dict mapping block address -> dirty bit.  Under
    LRU the insertion order *is* the recency order: hits pop and
    re-insert, fills append, and the victim is the first key — exactly
    the stamp-ordering :class:`~repro.archsim.replacement.LruPolicy`
    maintains.  Under FIFO and random the hit re-insert is dropped, so
    insertion order is *fill* order: FIFO victimises the first key, and
    random draws the victim from the fill-ordered keys with a seeded
    :class:`random.Random` — the same draw sequence
    :class:`~repro.archsim.replacement.RandomPolicy` makes, since the
    per-record simulator's set dicts are fill-ordered too (its hits
    assign in place).  Hits/misses/evictions/write-backs therefore match
    the per-record simulator count for count under every policy.

    Per-access validation is hoisted to the chunk boundary: the numpy
    coercion in :func:`~repro.archsim.trace.as_buffer` (or the
    :class:`~repro.archsim.trace.TraceBuffer` constructor) is the only
    input check, and the inner loop runs on Python ints from
    ``ndarray.tolist()``.
    """

    def __init__(
        self,
        size_bytes: int,
        block_bytes: int,
        associativity: int,
        name: str = "cache",
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        self.n_sets = _validate_shape(
            size_bytes, block_bytes, associativity, name
        )
        if policy not in ("lru", "fifo", "random"):
            raise SimulationError(
                f"{name}: unknown replacement policy {policy!r}; expected "
                f"'lru', 'fifo' or 'random'"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.policy = policy
        self.stats = CacheStats()
        self._rng = random.Random(seed) if policy == "random" else None
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(self.n_sets)
        ]
        self._block_shift = block_bytes.bit_length() - 1

    # -- addressing -----------------------------------------------------

    def set_index(self, block_address: int) -> int:
        """Return the set an aligned block address maps to."""
        return (block_address >> self._block_shift) & (self.n_sets - 1)

    # -- main entry -----------------------------------------------------

    def access_chunk(
        self, addresses: np.ndarray, is_write: np.ndarray
    ) -> None:
        """Simulate one chunk of accesses, updating ``self.stats``."""
        blocks = (addresses & -self.block_bytes).tolist()
        set_indices = (
            (addresses >> self._block_shift) & (self.n_sets - 1)
        ).tolist()
        writes = is_write.tolist()

        sets = self._sets
        associativity = self.associativity
        rng_choice = self._rng.choice if self._rng is not None else None
        lru = self.policy == "lru"
        hits = misses = read_misses = write_misses = 0
        evictions = writebacks = 0
        if lru:
            for block, index, write in zip(blocks, set_indices, writes):
                resident = sets[index]
                if block in resident:
                    hits += 1
                    dirty = resident.pop(block)
                    resident[block] = dirty or write
                    continue
                misses += 1
                if write:
                    write_misses += 1
                else:
                    read_misses += 1
                if len(resident) >= associativity:
                    victim = next(iter(resident))
                    if resident.pop(victim):
                        writebacks += 1
                    evictions += 1
                resident[block] = write
        else:
            # FIFO/random: hits leave the dict order alone, so insertion
            # order is fill order.  FIFO evicts the oldest fill; random
            # draws from the fill-ordered keys exactly as RandomPolicy
            # does from the per-record simulator's set dict.
            for block, index, write in zip(blocks, set_indices, writes):
                resident = sets[index]
                if block in resident:
                    hits += 1
                    if write:
                        resident[block] = True
                    continue
                misses += 1
                if write:
                    write_misses += 1
                else:
                    read_misses += 1
                if len(resident) >= associativity:
                    if rng_choice is not None:
                        victim = rng_choice(list(resident))
                    else:
                        victim = next(iter(resident))
                    if resident.pop(victim):
                        writebacks += 1
                    evictions += 1
                resident[block] = write

        stats = self.stats
        stats.accesses += hits + misses
        stats.hits += hits
        stats.misses += misses
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.evictions += evictions
        stats.writebacks += writebacks

    def run(
        self, trace: TraceLike, chunk_size: int = DEFAULT_CHUNK
    ) -> CacheStats:
        """Simulate a whole trace; returns the accumulated stats."""
        for chunk in as_buffer(trace).iter_chunks(chunk_size):
            self.access_chunk(chunk.addresses, np.asarray(chunk.is_write))
        return self.stats

    # -- introspection --------------------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address & -self.block_bytes
        return block in self._sets[self.set_index(block)]

    def resident_blocks(self) -> int:
        """Return the number of blocks currently resident."""
        return sum(len(blocks) for blocks in self._sets)

    def flush(self) -> int:
        """Empty the cache; return how many dirty blocks were dropped."""
        dirty = sum(
            1
            for blocks in self._sets
            for is_dirty in blocks.values()
            if is_dirty
        )
        for blocks in self._sets:
            blocks.clear()
        return dirty
