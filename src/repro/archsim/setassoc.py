"""Write-back, write-allocate set-associative cache simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.units import is_power_of_two
from repro.archsim.replacement import ReplacementPolicy, LruPolicy
from repro.archsim.stats import CacheStats
from repro.archsim.trace import MemoryAccess


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access.

    Attributes
    ----------
    hit:
        True if the block was resident.
    evicted_block:
        Block address evicted to make room, or None.
    evicted_dirty:
        True if the eviction was a dirty write-back.
    """

    hit: bool
    evicted_block: Optional[int] = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """One level of cache: write-back, write-allocate.

    Parameters
    ----------
    size_bytes / block_bytes / associativity:
        The usual shape parameters (powers of two).
    policy:
        Replacement policy instance; defaults to a fresh LRU.
    name:
        Label for error messages and reports.
    """

    def __init__(
        self,
        size_bytes: int,
        block_bytes: int,
        associativity: int,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        for label, value in (
            ("size_bytes", size_bytes),
            ("block_bytes", block_bytes),
            ("associativity", associativity),
        ):
            if not is_power_of_two(value):
                raise SimulationError(
                    f"{name}: {label} must be a power of two, got {value}"
                )
        n_blocks = size_bytes // block_bytes
        if associativity > n_blocks:
            raise SimulationError(
                f"{name}: associativity {associativity} exceeds "
                f"{n_blocks} blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.n_sets = n_blocks // associativity
        self.policy = policy if policy is not None else LruPolicy()
        self.stats = CacheStats()
        # set index -> {block address: dirty}
        self._sets: Dict[int, Dict[int, bool]] = {}

    # -- addressing -----------------------------------------------------

    def set_index(self, block_address: int) -> int:
        """Return the set an aligned block address maps to."""
        return (block_address // self.block_bytes) % self.n_sets

    # -- main entry -----------------------------------------------------

    def access(self, access: MemoryAccess) -> AccessResult:
        """Simulate one access; returns hit/miss and any eviction."""
        block = access.block_address(self.block_bytes)
        index = self.set_index(block)
        resident = self._sets.setdefault(index, {})

        if block in resident:
            self.stats.record_hit()
            self.policy.on_access(index, block)
            if access.is_write:
                resident[block] = True
            return AccessResult(hit=True)

        self.stats.record_miss(access.is_write)
        evicted_block: Optional[int] = None
        evicted_dirty = False
        if len(resident) >= self.associativity:
            victim = self.policy.choose_victim(index, list(resident))
            if victim not in resident:
                raise SimulationError(
                    f"{self.name}: policy chose non-resident victim {victim}"
                )
            evicted_block = victim
            evicted_dirty = resident.pop(victim)
            self.policy.on_evict(index, victim)
            self.stats.record_eviction(evicted_dirty)
        resident[block] = access.is_write
        self.policy.on_fill(index, block)
        return AccessResult(
            hit=False, evicted_block=evicted_block, evicted_dirty=evicted_dirty
        )

    # -- introspection ----------------------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address - (address % self.block_bytes)
        return block in self._sets.get(self.set_index(block), {})

    def resident_blocks(self) -> int:
        """Return the number of blocks currently resident."""
        return sum(len(blocks) for blocks in self._sets.values())

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; True if it was resident."""
        block = address - (address % self.block_bytes)
        index = self.set_index(block)
        resident = self._sets.get(index, {})
        if block in resident:
            del resident[block]
            self.policy.on_evict(index, block)
            return True
        return False

    def flush(self) -> int:
        """Empty the cache; return how many dirty blocks were dropped."""
        dirty = sum(
            1
            for blocks in self._sets.values()
            for is_dirty in blocks.values()
            if is_dirty
        )
        self._sets.clear()
        return dirty
