"""Replacement policies for the set-associative simulator.

Policies operate on one set at a time.  A set is represented by the
simulator as an ordered dict of block-address -> line state; the policy
only decides *which* resident block to victimise and maintains whatever
recency metadata it needs via the ``on_access`` / ``on_fill`` hooks.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.errors import SimulationError


class ReplacementPolicy:
    """Interface: per-set victim selection with recency hooks."""

    name = "base"

    def on_access(self, set_index: int, block: int) -> None:
        """Called on every hit to ``block`` in set ``set_index``."""

    def on_fill(self, set_index: int, block: int) -> None:
        """Called when ``block`` is installed into set ``set_index``."""

    def on_evict(self, set_index: int, block: int) -> None:
        """Called when ``block`` leaves set ``set_index``."""

    def choose_victim(self, set_index: int, resident: List[int]) -> int:
        """Return the block address to evict from ``resident`` (non-empty)."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: victimise the coldest block."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0
        self._last_use: Dict[int, Dict[int, int]] = {}

    def _stamp(self, set_index: int, block: int) -> None:
        self._clock += 1
        self._last_use.setdefault(set_index, {})[block] = self._clock

    def on_access(self, set_index: int, block: int) -> None:
        self._stamp(set_index, block)

    def on_fill(self, set_index: int, block: int) -> None:
        self._stamp(set_index, block)

    def on_evict(self, set_index: int, block: int) -> None:
        self._last_use.get(set_index, {}).pop(block, None)

    def choose_victim(self, set_index: int, resident: List[int]) -> int:
        stamps = self._last_use.get(set_index, {})
        return min(resident, key=lambda block: stamps.get(block, -1))


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: victimise the oldest fill."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: Dict[int, List[int]] = {}

    def on_fill(self, set_index: int, block: int) -> None:
        self._order.setdefault(set_index, []).append(block)

    def on_evict(self, set_index: int, block: int) -> None:
        queue = self._order.get(set_index, [])
        if block in queue:
            queue.remove(block)

    def choose_victim(self, set_index: int, resident: List[int]) -> int:
        queue = self._order.get(set_index, [])
        for block in queue:
            if block in resident:
                return block
        return resident[0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, set_index: int, resident: List[int]) -> int:
        return self._rng.choice(resident)


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Build a policy by name: ``"lru"``, ``"fifo"`` or ``"random"``."""
    if name == "lru":
        return LruPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    raise SimulationError(f"unknown replacement policy {name!r}")
