"""Hit/miss accounting for one cache level."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class CacheStats:
    """Mutable counters collected while simulating one cache.

    ``miss_rate`` is the *local* miss rate: misses over accesses **at this
    level** (the quantity the paper's L2 discussion uses — "local L1 cache
    miss rates are already very low").
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    def record_hit(self) -> None:
        self.accesses += 1
        self.hits += 1

    def record_miss(self, is_write: bool) -> None:
        self.accesses += 1
        self.misses += 1
        if is_write:
            self.write_misses += 1
        else:
            self.read_misses += 1

    def record_eviction(self, dirty: bool) -> None:
        self.evictions += 1
        if dirty:
            self.writebacks += 1

    @property
    def miss_rate(self) -> float:
        """Local miss rate; 0.0 when the cache was never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new CacheStats summing self and other."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )

    def validate(self) -> None:
        """Internal-consistency check used by property tests."""
        if self.hits + self.misses != self.accesses:
            raise SimulationError(
                f"hits({self.hits}) + misses({self.misses}) != "
                f"accesses({self.accesses})"
            )
        if self.read_misses + self.write_misses != self.misses:
            raise SimulationError(
                f"read({self.read_misses}) + write({self.write_misses}) "
                f"misses != total misses({self.misses})"
            )
        if self.writebacks > self.evictions:
            raise SimulationError(
                f"writebacks({self.writebacks}) exceed evictions"
                f"({self.evictions})"
            )
