"""Two-level cache hierarchy simulation.

The paper's Section 5 system: L1 backed by a unified L2 backed by main
memory.  The hierarchy is non-inclusive (the common 2005 design): L1
misses allocate in both levels; L1 dirty evictions are written back into
L2; L2 evictions do not invalidate L1 (the paper's statistics don't hinge
on inclusion policy, and non-inclusive is the simplest faithful choice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archsim.replacement import make_policy
from repro.archsim.setassoc import SetAssociativeCache
from repro.archsim.stats import CacheStats
from repro.archsim.trace import MemoryAccess, TraceStream
from repro.cache.config import CacheConfig


@dataclass(frozen=True)
class HierarchyResult:
    """Statistics of one simulated trace through the hierarchy.

    ``memory_accesses`` counts every L2 miss (fills) plus L2 dirty
    write-backs — the quantity that multiplies main-memory energy in the
    Section 5 total-energy accounting.
    """

    l1: CacheStats
    l2: CacheStats
    memory_accesses: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses over L2 accesses (the paper's 'local' convention)."""
        return self.l2.miss_rate

    @property
    def l2_global_miss_rate(self) -> float:
        """L2 misses over *L1* accesses."""
        if self.l1.accesses == 0:
            return 0.0
        return self.l2.misses / self.l1.accesses


class TwoLevelHierarchy:
    """An L1 + L2 + memory simulator.

    Parameters
    ----------
    l1_config / l2_config:
        Architectural shapes (only size/block/associativity are used here;
        the circuit-level fields feed the power model, not the simulator).
    policy:
        Replacement policy name used at both levels (default LRU).
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        self.l1 = SetAssociativeCache(
            size_bytes=l1_config.size_bytes,
            block_bytes=l1_config.block_bytes,
            associativity=l1_config.associativity,
            policy=make_policy(policy, seed=seed),
            name=l1_config.name,
        )
        self.l2 = SetAssociativeCache(
            size_bytes=l2_config.size_bytes,
            block_bytes=l2_config.block_bytes,
            associativity=l2_config.associativity,
            policy=make_policy(policy, seed=seed + 1),
            name=l2_config.name,
        )
        self.memory_accesses = 0

    def access(self, access: MemoryAccess) -> None:
        """Propagate one access through L1 -> L2 -> memory."""
        l1_result = self.l1.access(access)
        if l1_result.hit:
            return
        # L1 dirty eviction writes back into L2.
        if l1_result.evicted_block is not None and l1_result.evicted_dirty:
            writeback = MemoryAccess(
                address=l1_result.evicted_block, is_write=True
            )
            l2_wb = self.l2.access(writeback)
            if not l2_wb.hit:
                self.memory_accesses += 1  # fill for the write-allocate
            if l2_wb.evicted_dirty:
                self.memory_accesses += 1
        # The demand miss itself goes to L2.
        l2_result = self.l2.access(
            MemoryAccess(address=access.address, is_write=False)
        )
        if not l2_result.hit:
            self.memory_accesses += 1
        if l2_result.evicted_dirty:
            self.memory_accesses += 1

    def run(self, trace: TraceStream) -> HierarchyResult:
        """Simulate a whole trace and return the statistics."""
        for access in trace:
            self.access(access)
        return self.result()

    def result(self) -> HierarchyResult:
        """Return statistics collected so far."""
        return HierarchyResult(
            l1=self.l1.stats,
            l2=self.l2.stats,
            memory_accesses=self.memory_accesses,
        )
