"""Two-level cache hierarchy simulation.

The paper's Section 5 system: L1 backed by a unified L2 backed by main
memory.  The hierarchy is non-inclusive (the common 2005 design): L1
misses allocate in both levels; L1 dirty evictions are written back into
L2; L2 evictions do not invalidate L1 (the paper's statistics don't hinge
on inclusion policy, and non-inclusive is the simplest faithful choice).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import SimulationError
from repro.archsim.replacement import make_policy
from repro.archsim.setassoc import SetAssociativeCache, _validate_shape
from repro.archsim.stats import CacheStats
from repro.archsim.trace import (
    DEFAULT_CHUNK,
    MemoryAccess,
    TraceLike,
    TraceStream,
    as_buffer,
)
from repro.cache.config import CacheConfig


@dataclass(frozen=True)
class HierarchyResult:
    """Statistics of one simulated trace through the hierarchy.

    ``memory_accesses`` counts every L2 miss (fills) plus L2 dirty
    write-backs — the quantity that multiplies main-memory energy in the
    Section 5 total-energy accounting.
    """

    l1: CacheStats
    l2: CacheStats
    memory_accesses: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1.miss_rate

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses over L2 accesses (the paper's 'local' convention)."""
        return self.l2.miss_rate

    @property
    def l2_global_miss_rate(self) -> float:
        """L2 misses over *L1* accesses."""
        if self.l1.accesses == 0:
            return 0.0
        return self.l2.misses / self.l1.accesses


class TwoLevelHierarchy:
    """An L1 + L2 + memory simulator.

    Parameters
    ----------
    l1_config / l2_config:
        Architectural shapes (only size/block/associativity are used here;
        the circuit-level fields feed the power model, not the simulator).
    policy:
        Replacement policy name used at both levels (default LRU).
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        self.l1 = SetAssociativeCache(
            size_bytes=l1_config.size_bytes,
            block_bytes=l1_config.block_bytes,
            associativity=l1_config.associativity,
            policy=make_policy(policy, seed=seed),
            name=l1_config.name,
        )
        self.l2 = SetAssociativeCache(
            size_bytes=l2_config.size_bytes,
            block_bytes=l2_config.block_bytes,
            associativity=l2_config.associativity,
            policy=make_policy(policy, seed=seed + 1),
            name=l2_config.name,
        )
        self.memory_accesses = 0

    def access(self, access: MemoryAccess) -> None:
        """Propagate one access through L1 -> L2 -> memory."""
        l1_result = self.l1.access(access)
        if l1_result.hit:
            return
        # L1 dirty eviction writes back into L2.
        if l1_result.evicted_block is not None and l1_result.evicted_dirty:
            writeback = MemoryAccess(
                address=l1_result.evicted_block, is_write=True
            )
            l2_wb = self.l2.access(writeback)
            if not l2_wb.hit:
                self.memory_accesses += 1  # fill for the write-allocate
            if l2_wb.evicted_dirty:
                self.memory_accesses += 1
        # The demand miss itself goes to L2.
        l2_result = self.l2.access(
            MemoryAccess(address=access.address, is_write=False)
        )
        if not l2_result.hit:
            self.memory_accesses += 1
        if l2_result.evicted_dirty:
            self.memory_accesses += 1

    def run(self, trace: TraceStream) -> HierarchyResult:
        """Simulate a whole trace and return the statistics."""
        for access in trace:
            self.access(access)
        return self.result()

    def result(self) -> HierarchyResult:
        """Return statistics collected so far."""
        return HierarchyResult(
            l1=self.l1.stats,
            l2=self.l2.stats,
            memory_accesses=self.memory_accesses,
        )


class ArrayTwoLevelHierarchy:
    """Chunk-wise L1 + L2 + memory simulator.

    The array counterpart of :class:`TwoLevelHierarchy`: identical
    semantics (non-inclusive, write-back L1 evictions into L2, the
    write-back touching L2 *before* the demand miss), identical
    statistics on the same trace, but all per-access address arithmetic
    is vectorized per chunk and the residency core is one tight loop
    over per-set ordered dicts.  LRU keeps the dicts recency-ordered
    (pop + re-insert on hit); FIFO and random drop the re-insert so the
    dicts are fill-ordered, with FIFO evicting the first key and random
    drawing victims from two seeded :class:`random.Random` instances —
    L1 on ``seed``, L2 on ``seed + 1``, the same streams
    :class:`TwoLevelHierarchy` hands its per-level
    :class:`~repro.archsim.replacement.RandomPolicy` instances, so the
    statistics stay bit-identical under every policy.  Roughly an order
    of magnitude faster than the per-record simulator.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if policy not in ("lru", "fifo", "random"):
            raise SimulationError(
                f"ArrayTwoLevelHierarchy: unknown replacement policy "
                f"{policy!r}; expected 'lru', 'fifo' or 'random'"
            )
        self.policy = policy
        self._l1_rng = (
            random.Random(seed) if policy == "random" else None
        )
        self._l2_rng = (
            random.Random(seed + 1) if policy == "random" else None
        )
        self.l1_n_sets = _validate_shape(
            l1_config.size_bytes,
            l1_config.block_bytes,
            l1_config.associativity,
            l1_config.name,
        )
        self.l2_n_sets = _validate_shape(
            l2_config.size_bytes,
            l2_config.block_bytes,
            l2_config.associativity,
            l2_config.name,
        )
        self.l1_config = l1_config
        self.l2_config = l2_config
        self.l1_stats = CacheStats()
        self.l2_stats = CacheStats()
        self.memory_accesses = 0
        self._l1_sets: List[Dict[int, bool]] = [
            {} for _ in range(self.l1_n_sets)
        ]
        self._l2_sets: List[Dict[int, bool]] = [
            {} for _ in range(self.l2_n_sets)
        ]

    def access_chunk(
        self, addresses: np.ndarray, is_write: np.ndarray
    ) -> None:
        """Propagate one chunk of accesses through L1 -> L2 -> memory."""
        l1_block_bytes = self.l1_config.block_bytes
        l2_block_bytes = self.l2_config.block_bytes
        l1_shift = l1_block_bytes.bit_length() - 1
        l2_shift = l2_block_bytes.bit_length() - 1
        l1_set_mask = self.l1_n_sets - 1
        l2_set_mask = self.l2_n_sets - 1

        l1_blocks = (addresses & -l1_block_bytes).tolist()
        l1_indices = ((addresses >> l1_shift) & l1_set_mask).tolist()
        l2_blocks = (addresses & -l2_block_bytes).tolist()
        l2_indices = ((addresses >> l2_shift) & l2_set_mask).tolist()
        writes = is_write.tolist()

        l1_sets = self._l1_sets
        l2_sets = self._l2_sets
        l1_assoc = self.l1_config.associativity
        l2_assoc = self.l2_config.associativity
        l2_neg_mask = -l2_block_bytes

        l1_hits = l1_misses = l1_read_misses = l1_write_misses = 0
        l1_evictions = l1_writebacks = 0
        l2_hits = l2_misses = l2_read_misses = l2_write_misses = 0
        l2_evictions = l2_writebacks = 0
        memory = 0

        if self.policy == "lru":
            for block, l1_index, demand_block, l2_index, write in zip(
                l1_blocks, l1_indices, l2_blocks, l2_indices, writes
            ):
                resident = l1_sets[l1_index]
                if block in resident:
                    l1_hits += 1
                    resident[block] = resident.pop(block) or write
                    continue
                l1_misses += 1
                if write:
                    l1_write_misses += 1
                else:
                    l1_read_misses += 1
                if len(resident) >= l1_assoc:
                    victim = next(iter(resident))
                    victim_dirty = resident.pop(victim)
                    l1_evictions += 1
                    if victim_dirty:
                        l1_writebacks += 1
                        # Dirty L1 eviction writes back into L2 first.
                        wb_block = victim & l2_neg_mask
                        wb_set = l2_sets[(wb_block >> l2_shift) & l2_set_mask]
                        if wb_block in wb_set:
                            l2_hits += 1
                            wb_set.pop(wb_block)
                            wb_set[wb_block] = True
                        else:
                            l2_misses += 1
                            l2_write_misses += 1
                            memory += 1  # fill for the write-allocate
                            if len(wb_set) >= l2_assoc:
                                l2_victim = next(iter(wb_set))
                                if wb_set.pop(l2_victim):
                                    l2_writebacks += 1
                                    memory += 1
                                l2_evictions += 1
                            wb_set[wb_block] = True
                resident[block] = write
                # The demand miss itself goes to L2 (as a read).
                demand_set = l2_sets[l2_index]
                if demand_block in demand_set:
                    l2_hits += 1
                    demand_set[demand_block] = demand_set.pop(demand_block)
                else:
                    l2_misses += 1
                    l2_read_misses += 1
                    memory += 1
                    if len(demand_set) >= l2_assoc:
                        l2_victim = next(iter(demand_set))
                        if demand_set.pop(l2_victim):
                            l2_writebacks += 1
                            memory += 1
                        l2_evictions += 1
                    demand_set[demand_block] = False
        else:
            # FIFO/random: hits never reorder, so each set dict stays in
            # fill order.  The per-level rngs (L1 on seed, L2 on seed+1)
            # fire once per eviction in trace order — the same draw
            # sequence the per-record RandomPolicy instances make.
            l1_choice = (
                self._l1_rng.choice if self._l1_rng is not None else None
            )
            l2_choice = (
                self._l2_rng.choice if self._l2_rng is not None else None
            )
            for block, l1_index, demand_block, l2_index, write in zip(
                l1_blocks, l1_indices, l2_blocks, l2_indices, writes
            ):
                resident = l1_sets[l1_index]
                if block in resident:
                    l1_hits += 1
                    if write:
                        resident[block] = True
                    continue
                l1_misses += 1
                if write:
                    l1_write_misses += 1
                else:
                    l1_read_misses += 1
                if len(resident) >= l1_assoc:
                    if l1_choice is not None:
                        victim = l1_choice(list(resident))
                    else:
                        victim = next(iter(resident))
                    victim_dirty = resident.pop(victim)
                    l1_evictions += 1
                    if victim_dirty:
                        l1_writebacks += 1
                        # Dirty L1 eviction writes back into L2 first.
                        wb_block = victim & l2_neg_mask
                        wb_set = l2_sets[(wb_block >> l2_shift) & l2_set_mask]
                        if wb_block in wb_set:
                            l2_hits += 1
                            wb_set[wb_block] = True
                        else:
                            l2_misses += 1
                            l2_write_misses += 1
                            memory += 1  # fill for the write-allocate
                            if len(wb_set) >= l2_assoc:
                                if l2_choice is not None:
                                    l2_victim = l2_choice(list(wb_set))
                                else:
                                    l2_victim = next(iter(wb_set))
                                if wb_set.pop(l2_victim):
                                    l2_writebacks += 1
                                    memory += 1
                                l2_evictions += 1
                            wb_set[wb_block] = True
                resident[block] = write
                # The demand miss itself goes to L2 (as a read).
                demand_set = l2_sets[l2_index]
                if demand_block in demand_set:
                    l2_hits += 1
                else:
                    l2_misses += 1
                    l2_read_misses += 1
                    memory += 1
                    if len(demand_set) >= l2_assoc:
                        if l2_choice is not None:
                            l2_victim = l2_choice(list(demand_set))
                        else:
                            l2_victim = next(iter(demand_set))
                        if demand_set.pop(l2_victim):
                            l2_writebacks += 1
                            memory += 1
                        l2_evictions += 1
                    demand_set[demand_block] = False

        for stats, hits, misses, read_misses, write_misses, evictions, \
                writebacks in (
            (self.l1_stats, l1_hits, l1_misses, l1_read_misses,
             l1_write_misses, l1_evictions, l1_writebacks),
            (self.l2_stats, l2_hits, l2_misses, l2_read_misses,
             l2_write_misses, l2_evictions, l2_writebacks),
        ):
            stats.accesses += hits + misses
            stats.hits += hits
            stats.misses += misses
            stats.read_misses += read_misses
            stats.write_misses += write_misses
            stats.evictions += evictions
            stats.writebacks += writebacks
        self.memory_accesses += memory

    def run(
        self, trace: TraceLike, chunk_size: int = DEFAULT_CHUNK
    ) -> HierarchyResult:
        """Simulate a whole trace and return the statistics."""
        for chunk in as_buffer(trace).iter_chunks(chunk_size):
            self.access_chunk(chunk.addresses, np.asarray(chunk.is_write))
        return self.result()

    def result(self) -> HierarchyResult:
        """Return statistics collected so far."""
        return HierarchyResult(
            l1=self.l1_stats,
            l2=self.l2_stats,
            memory_accesses=self.memory_accesses,
        )


def simulate_hierarchy(
    l1_config: CacheConfig,
    l2_config: CacheConfig,
    trace: TraceLike,
    policy: str = "lru",
    seed: int = 0,
) -> HierarchyResult:
    """Run a trace through the fastest hierarchy engine for the policy.

    LRU, FIFO and random traffic take :class:`ArrayTwoLevelHierarchy`;
    any other policy falls back to the per-record
    :class:`TwoLevelHierarchy`.
    """
    if policy in ("lru", "fifo", "random"):
        return ArrayTwoLevelHierarchy(
            l1_config, l2_config, policy, seed
        ).run(trace)
    hierarchy = TwoLevelHierarchy(l1_config, l2_config, policy, seed)
    if isinstance(trace, np.ndarray):
        trace = as_buffer(trace)
    return hierarchy.run(trace)
