"""Durable, worker-agnostic job records (DiskCache namespace ``jobs``).

One process used to be the only place a finished calibration existed:
``GET /v1/jobs/<id>`` could be answered solely by the worker that ran
the job, and every result died with the daemon.  This module is the
shared tier behind the multi-worker front: every
:class:`~repro.service.jobs.JobManager` writes a small JSON record at
submit time and atomically rewrites it when the job reaches a terminal
state, so **any** worker — including a freshly restarted daemon — can
answer a poll for work another process finished.

Records are keyed by the (globally unique) job id and carry the owning
worker's pid + instance token + kernel start-time stamp.  Liveness is
judged by the pid *and* its incarnation (:func:`repro.procutil
.owner_alive` compares the persisted ``/proc`` start ticks, so a
recycled pid never masks an orphan): a non-terminal record whose owner
is dead is an *orphan* — the worker was killed with the job in flight —
and is rewritten as ``failed`` with ``retryable: true`` the first time
any reader trips over it.  In-flight work therefore resurfaces as a
retryable failure instead of silently vanishing, while completed work
survives any number of ``kill -9``s bit-identically (the full result
payload is in the record).

Writes go through :class:`repro.perf.DiskCache`, inheriting its atomic
rename + per-key advisory lock discipline, so a record is never read
half-written even when the writer dies mid-store.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional

from repro.perf.disk_cache import DiskCache
from repro.procutil import owner_alive, pid_alive, proc_start_ticks

__all__ = [
    "JobStore", "TERMINAL_STATUSES", "pid_alive",
    "snapshot_from_record", "merge_worker_records",
]

#: Statuses that end a job's lifecycle (mirrors repro.service.jobs).
TERMINAL_STATUSES = ("done", "failed", "cancelled", "timeout")


class JobStore:
    """Fingerprint-keyed job records shared by every worker process."""

    NAMESPACE = "jobs"

    def __init__(self, directory=None, worker_id: Optional[str] = None,
                 instance: Optional[str] = None) -> None:
        self._disk = DiskCache(self.NAMESPACE, directory=directory)
        self.worker_id = worker_id
        self.instance = instance or ""

    @staticmethod
    def _fingerprint(job_id: str) -> str:
        return f"job-record:{job_id}"

    # -- writes ------------------------------------------------------------

    def write(self, snapshot: dict) -> None:
        """Persist one job snapshot (atomic; last writer wins).

        Results that do not serialise to JSON are stored without their
        payload (flagged) — the job store must never be the reason a
        submission fails.
        """
        record = dict(snapshot)
        record.setdefault("owner_pid", os.getpid())
        record.setdefault("owner_worker", self.worker_id)
        record.setdefault("owner_instance", self.instance)
        record.setdefault(
            "owner_start_ticks", proc_start_ticks(record["owner_pid"])
        )
        record["persisted_at"] = time.time()
        try:
            self._disk.store(self._fingerprint(record["job_id"]), record)
        except TypeError:
            record.pop("result", None)
            record["result_unserializable"] = True
            self._disk.store(self._fingerprint(record["job_id"]), record)
        except OSError:  # pragma: no cover - disk full / unwritable dir
            pass

    # -- reads -------------------------------------------------------------

    def load(self, job_id: str) -> Optional[dict]:
        """Return the shared record for a job id, resolving orphans.

        A non-terminal record whose owner process is dead is rewritten
        in place as a retryable failure before being returned — the
        worker took the in-flight job down with it, and every future
        reader (on any worker) must see that verdict rather than an
        eternally ``running`` ghost.  Liveness requires the same pid
        *incarnation* (persisted start-ticks stamp), so a recycled pid
        — or a foreign process squatting on the number — cannot keep
        an orphan ``running`` forever.
        """
        record = self._disk.load(self._fingerprint(job_id))
        if not isinstance(record, dict) or "job_id" not in record:
            return None
        if record.get("status") in TERMINAL_STATUSES:
            return record
        owner = record.get("owner_pid")
        if isinstance(owner, int) and not owner_alive(
            owner, record.get("owner_start_ticks")
        ):
            record["status"] = "failed"
            record["error"] = (
                f"worker (pid {owner}) died with the job in flight"
            )
            record["retryable"] = True
            record["finished_at"] = time.time()
            self.write(record)
        return record

    def owned_here(self, record: dict) -> bool:
        """True when this exact process wrote the record."""
        return (
            record.get("owner_pid") == os.getpid()
            and record.get("owner_instance") == self.instance
        )


def snapshot_from_record(record: dict) -> dict:
    """Strip the store's bookkeeping fields from a record for clients.

    The remaining document is shaped exactly like a local
    ``JobManager`` snapshot plus a ``served_by`` label naming the
    worker that ran the job — useful when debugging a fleet.
    """
    snapshot = {
        key: value
        for key, value in record.items()
        if key not in (
            "owner_pid", "owner_instance", "owner_start_ticks",
            "persisted_at",
        )
    }
    owner = record.get("owner_worker")
    if owner is not None:
        snapshot.setdefault("served_by", owner)
    return snapshot


def merge_worker_records(records: Iterable[dict]) -> Dict[str, List[dict]]:
    """Group records by owning worker id (metrics/debug helper)."""
    grouped: Dict[str, List[dict]] = {}
    for record in records:
        grouped.setdefault(
            str(record.get("owner_worker")), []
        ).append(record)
    return grouped
