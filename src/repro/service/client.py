"""Minimal stdlib client for the repro service daemon.

Used by ``tools/loadgen.py``, the benchmark suite, and the tests; also a
reasonable starting point for notebook use.  One :class:`ServiceClient`
holds one keep-alive HTTP connection, so it is cheap to issue many
requests from the same thread; it is NOT thread-safe — give each load
generator thread its own client.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Optional, Sequence


class ServiceError(RuntimeError):
    """A non-2xx response; carries the structured error envelope."""

    def __init__(self, status: int, envelope: dict) -> None:
        detail = envelope.get("error", {}) if isinstance(envelope, dict) else {}
        message = detail.get("message", "service error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.envelope = envelope


class ServiceClient:
    """One persistent connection to a running repro service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8023,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        self._random = random.Random()

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, body: Optional[dict] = None):
        """Issue one request; returns the decoded JSON payload.

        Raises :class:`ServiceError` on a non-2xx status.  A dropped
        keep-alive connection (the server may close idle connections
        between calls) is retried once — but only where a replay cannot
        double-apply the request: connect failures retry for every
        method (nothing reached the wire), while failures after the
        request was written retry for GET only.  A ``POST
        /v1/calibrate`` whose response never arrives may still have
        submitted its job; replaying it would submit a second one, so
        the error propagates to the caller instead.
        """
        encoded = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if encoded else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                if connection.sock is None:
                    connection.connect()
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
                continue
            try:
                connection.request(method, path, body=encoded,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt or method != "GET":
                    raise
        payload = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ServiceError(response.status, payload)
        return payload

    # -- endpoint helpers --------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def sweep(self, cache: dict, vth, tox,
              components: Optional[Sequence[str]] = None) -> dict:
        body = {"cache": cache, "vth": vth, "tox": tox}
        if components is not None:
            body["components"] = list(components)
        return self.request("POST", "/v1/sweep", body)

    def optimize(self, cache: dict, scheme, target_ps: float,
                 vth=None, tox=None) -> dict:
        body = {"cache": cache, "scheme": str(scheme),
                "target_ps": target_ps}
        if vth is not None:
            body["vth"] = vth
        if tox is not None:
            body["tox"] = tox
        return self.request("POST", "/v1/optimize", body)

    def amat(self, **body) -> dict:
        return self.request("POST", "/v1/amat", body)

    def calibrate(self, **body) -> dict:
        return self.request("POST", "/v1/calibrate", body)

    def job(self, job_id: str, wait: Optional[float] = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None and wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def cancel_job(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def _poll(self, fetch, describe, timeout: float,
              poll_interval: Optional[float], long_poll: bool) -> dict:
        """Shared wait loop for jobs and campaigns.

        ``fetch(wait_seconds)`` issues one status read; with ``long_poll``
        the server blocks up to 20 s per read, so the loop mostly sleeps
        inside the daemon.  Between reads (a long poll that expired, or a
        server too old for ``?wait=``) the delay backs off exponentially
        with +/-50% jitter so a fan-out of pollers cannot phase-lock into
        request bursts the way the old fixed 0.25 s cadence did.
        """
        deadline = time.monotonic() + timeout
        delay = poll_interval if poll_interval is not None else 0.05
        while True:
            remaining = deadline - time.monotonic()
            wait = min(20.0, max(0.0, remaining)) if long_poll else 0.0
            snapshot = fetch(wait)
            if snapshot["status"] in ("done", "failed", "cancelled",
                                      "timeout"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{describe} still {snapshot['status']!r} after "
                    f"{timeout:.0f} s"
                )
            if poll_interval is not None:
                pause = poll_interval
            else:
                pause = delay * (0.5 + self._random.random())
                delay = min(delay * 2.0, 2.0)
            time.sleep(min(pause, max(0.0, deadline - time.monotonic())))

    def wait_for_job(self, job_id: str, timeout: float = 120.0,
                     poll_interval: Optional[float] = None,
                     long_poll: bool = True) -> dict:
        """Block until the job is terminal (or raise TimeoutError).

        By default each poll long-polls the server (``?wait=``) and any
        client-side pauses use jittered exponential backoff.  Passing an
        explicit ``poll_interval`` restores a fixed cadence.
        """
        return self._poll(
            lambda wait: self.job(job_id, wait=wait or None),
            f"job {job_id}", timeout, poll_interval, long_poll,
        )

    # -- campaigns ---------------------------------------------------------

    def submit_campaign(self, spec: dict) -> dict:
        return self.request("POST", "/v1/campaigns", spec)

    def campaign(self, campaign_id: str, wait: Optional[float] = None,
                 results: bool = True) -> dict:
        params = []
        if wait is not None and wait > 0:
            params.append(f"wait={wait:g}")
        if not results:
            params.append("results=0")
        path = f"/v1/campaigns/{campaign_id}"
        if params:
            path += "?" + "&".join(params)
        return self.request("GET", path)

    def cancel_campaign(self, campaign_id: str) -> dict:
        return self.request("DELETE", f"/v1/campaigns/{campaign_id}")

    def wait_for_campaign(self, campaign_id: str, timeout: float = 600.0,
                          poll_interval: Optional[float] = None,
                          long_poll: bool = True,
                          results: bool = True) -> dict:
        """Block until the campaign is terminal (or raise TimeoutError)."""
        return self._poll(
            # Progress polls skip the (possibly large) results payload;
            # one final read below carries it.
            lambda wait: self.campaign(campaign_id, wait=wait or None,
                                       results=False),
            f"campaign {campaign_id}", timeout, poll_interval, long_poll,
        ) if not results else self._poll_campaign_with_results(
            campaign_id, timeout, poll_interval, long_poll
        )

    def _poll_campaign_with_results(self, campaign_id, timeout,
                                    poll_interval, long_poll) -> dict:
        self._poll(
            lambda wait: self.campaign(campaign_id, wait=wait or None,
                                       results=False),
            f"campaign {campaign_id}", timeout, poll_interval, long_poll,
        )
        return self.campaign(campaign_id)

    def run_campaign(self, spec: dict, timeout: float = 600.0) -> dict:
        """Submit a campaign and block until its final snapshot."""
        submitted = self.submit_campaign(spec)
        if submitted["status"] in ("done", "failed", "cancelled"):
            return self.campaign(submitted["campaign_id"])
        return self.wait_for_campaign(
            submitted["campaign_id"], timeout=timeout
        )
