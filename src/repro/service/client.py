"""Minimal stdlib client for the repro service daemon.

Used by ``tools/loadgen.py``, the benchmark suite, and the tests; also a
reasonable starting point for notebook use.  One :class:`ServiceClient`
holds one keep-alive HTTP connection, so it is cheap to issue many
requests from the same thread; it is NOT thread-safe — give each load
generator thread its own client.

Multi-worker deployments need two extra behaviours, both handled here:

* **Stale keep-alives.** When the worker on the other end of an idle
  keep-alive connection dies (crash, restart, drain), the next request
  used to fail opaquely after being written to a half-closed socket.
  The client now probes the socket *before* writing — a readable idle
  keep-alive connection means EOF or stray bytes, either of which
  disqualifies it — and transparently reconnects.  The probe happens
  pre-write, so it is safe for every method and never weakens the
  idempotent-GET-only post-write replay rule.
* **Restart windows.** A refused connect (the single worker of a
  ``--workers 1`` supervisor is mid-restart) can be retried with
  jittered exponential backoff: pass ``connect_retries`` > 1.  With a
  multi-address deployment (``addresses=[...]``, e.g. several
  single-process daemons behind no load balancer), reconnects rotate
  round-robin across the addresses, spreading load and skipping a dead
  worker on the next rotation.
"""

from __future__ import annotations

import http.client
import json
import random
import select
import time
from typing import Optional, Sequence, Tuple


class ServiceError(RuntimeError):
    """A non-2xx response; carries the structured error envelope."""

    def __init__(self, status: int, envelope: dict) -> None:
        detail = envelope.get("error", {}) if isinstance(envelope, dict) else {}
        message = detail.get("message", "service error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.envelope = envelope


class ServiceClient:
    """One persistent connection to a running repro service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8023,
        timeout: float = 60.0,
        addresses: Optional[Sequence[Tuple[str, int]]] = None,
        connect_retries: int = 1,
    ) -> None:
        if addresses:
            self.addresses = [
                (str(address_host), int(address_port))
                for address_host, address_port in addresses
            ]
        else:
            self.addresses = [(host, port)]
        self.host, self.port = self.addresses[0]
        self.timeout = timeout
        self.connect_retries = max(0, connect_retries)
        self._connection: Optional[http.client.HTTPConnection] = None
        self._address_index = 0
        self._random = random.Random()

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            host, port = self.addresses[
                self._address_index % len(self.addresses)
            ]
            self._address_index += 1
            self._connection = http.client.HTTPConnection(
                host, port, timeout=self.timeout
            )
        return self._connection

    @staticmethod
    def _is_stale(connection: http.client.HTTPConnection) -> bool:
        """True when an idle keep-alive connection is unusable.

        Nothing should be waiting to be read on an idle keep-alive
        connection; a readable socket therefore means the peer sent EOF
        (a dead/restarted worker) or garbage.  Either way, writing a
        request to it can only fail — reconnect first.
        """
        sock = connection.sock
        if sock is None:
            return False
        try:
            readable, _, _ = select.select([sock], [], [], 0)
        except (OSError, ValueError, TypeError):
            # Unselectable socket (closed out from under us, or a test
            # fake): let the write path decide.
            return False
        return bool(readable)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, body: Optional[dict] = None):
        """Issue one request; returns the decoded JSON payload.

        Raises :class:`ServiceError` on a non-2xx status.  Failure
        handling preserves the replay discipline: anything that happens
        *before* the request bytes reach the wire — a refused connect
        (retried ``connect_retries`` times with jittered backoff,
        rotating across ``addresses``), any other connect failure
        (retried once), a stale keep-alive detected by the pre-write
        probe (reconnected transparently) — is retryable for every
        method.  A failure *after* the request was written is retried
        for GET only: a ``POST /v1/calibrate`` whose response never
        arrives may still have submitted its job, and replaying it
        would submit a second one, so the error propagates instead.
        """
        encoded = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if encoded else {}
        refused = 0
        connect_failures = 0
        write_failures = 0
        while True:
            connection = self._connect()
            try:
                if connection.sock is None:
                    connection.connect()
                elif self._is_stale(connection):
                    self.close()
                    connection = self._connect()
                    connection.connect()
            except ConnectionRefusedError:
                self.close()
                refused += 1
                if refused > self.connect_retries:
                    raise
                # A restarting worker needs a beat to start accepting;
                # jitter keeps a fan-out of clients from stampeding it.
                delay = min(0.05 * (2 ** (refused - 1)), 0.5)
                time.sleep(delay * (0.5 + self._random.random()))
                continue
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                connect_failures += 1
                if connect_failures > 1:
                    raise
                continue
            try:
                connection.request(method, path, body=encoded,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                write_failures += 1
                if write_failures > 1 or method != "GET":
                    raise
        payload = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ServiceError(response.status, payload)
        return payload

    # -- endpoint helpers --------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self, scope: Optional[str] = None) -> dict:
        """Fetch /metrics; ``scope='cluster'`` merges across workers."""
        path = "/metrics"
        if scope:
            path += f"?scope={scope}"
        return self.request("GET", path)

    def sweep(self, cache: dict, vth, tox,
              components: Optional[Sequence[str]] = None) -> dict:
        body = {"cache": cache, "vth": vth, "tox": tox}
        if components is not None:
            body["components"] = list(components)
        return self.request("POST", "/v1/sweep", body)

    def optimize(self, cache: dict, scheme, target_ps: float,
                 vth=None, tox=None) -> dict:
        body = {"cache": cache, "scheme": str(scheme),
                "target_ps": target_ps}
        if vth is not None:
            body["vth"] = vth
        if tox is not None:
            body["tox"] = tox
        return self.request("POST", "/v1/optimize", body)

    def amat(self, **body) -> dict:
        return self.request("POST", "/v1/amat", body)

    def calibrate(self, **body) -> dict:
        return self.request("POST", "/v1/calibrate", body)

    def job(self, job_id: str, wait: Optional[float] = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None and wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def cancel_job(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def _poll(self, fetch, describe, timeout: float,
              poll_interval: Optional[float], long_poll: bool) -> dict:
        """Shared wait loop for jobs and campaigns.

        ``fetch(wait_seconds)`` issues one status read; with ``long_poll``
        the server blocks up to 20 s per read, so the loop mostly sleeps
        inside the daemon.  Between reads (a long poll that expired, or a
        server too old for ``?wait=``) the delay backs off exponentially
        with +/-50% jitter so a fan-out of pollers cannot phase-lock into
        request bursts the way the old fixed 0.25 s cadence did.
        """
        deadline = time.monotonic() + timeout
        delay = poll_interval if poll_interval is not None else 0.05
        while True:
            remaining = deadline - time.monotonic()
            wait = min(20.0, max(0.0, remaining)) if long_poll else 0.0
            snapshot = fetch(wait)
            if snapshot["status"] in ("done", "failed", "cancelled",
                                      "timeout"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{describe} still {snapshot['status']!r} after "
                    f"{timeout:.0f} s"
                )
            if poll_interval is not None:
                pause = poll_interval
            else:
                pause = delay * (0.5 + self._random.random())
                delay = min(delay * 2.0, 2.0)
            time.sleep(min(pause, max(0.0, deadline - time.monotonic())))

    def wait_for_job(self, job_id: str, timeout: float = 120.0,
                     poll_interval: Optional[float] = None,
                     long_poll: bool = True) -> dict:
        """Block until the job is terminal (or raise TimeoutError).

        By default each poll long-polls the server (``?wait=``) and any
        client-side pauses use jittered exponential backoff.  Passing an
        explicit ``poll_interval`` restores a fixed cadence.
        """
        return self._poll(
            lambda wait: self.job(job_id, wait=wait or None),
            f"job {job_id}", timeout, poll_interval, long_poll,
        )

    # -- campaigns ---------------------------------------------------------

    def submit_campaign(self, spec: dict) -> dict:
        return self.request("POST", "/v1/campaigns", spec)

    def campaign(self, campaign_id: str, wait: Optional[float] = None,
                 results: bool = True) -> dict:
        params = []
        if wait is not None and wait > 0:
            params.append(f"wait={wait:g}")
        if not results:
            params.append("results=0")
        path = f"/v1/campaigns/{campaign_id}"
        if params:
            path += "?" + "&".join(params)
        return self.request("GET", path)

    def cancel_campaign(self, campaign_id: str) -> dict:
        return self.request("DELETE", f"/v1/campaigns/{campaign_id}")

    def wait_for_campaign(self, campaign_id: str, timeout: float = 600.0,
                          poll_interval: Optional[float] = None,
                          long_poll: bool = True,
                          results: bool = True) -> dict:
        """Block until the campaign is terminal (or raise TimeoutError)."""
        return self._poll(
            # Progress polls skip the (possibly large) results payload;
            # one final read below carries it.
            lambda wait: self.campaign(campaign_id, wait=wait or None,
                                       results=False),
            f"campaign {campaign_id}", timeout, poll_interval, long_poll,
        ) if not results else self._poll_campaign_with_results(
            campaign_id, timeout, poll_interval, long_poll
        )

    def _poll_campaign_with_results(self, campaign_id, timeout,
                                    poll_interval, long_poll) -> dict:
        self._poll(
            lambda wait: self.campaign(campaign_id, wait=wait or None,
                                       results=False),
            f"campaign {campaign_id}", timeout, poll_interval, long_poll,
        )
        return self.campaign(campaign_id)

    def run_campaign(self, spec: dict, timeout: float = 600.0) -> dict:
        """Submit a campaign and block until its final snapshot."""
        submitted = self.submit_campaign(spec)
        if submitted["status"] in ("done", "failed", "cancelled"):
            return self.campaign(submitted["campaign_id"])
        return self.wait_for_campaign(
            submitted["campaign_id"], timeout=timeout
        )
