"""Minimal stdlib client for the repro service daemon.

Used by ``tools/loadgen.py``, the benchmark suite, and the tests; also a
reasonable starting point for notebook use.  One :class:`ServiceClient`
holds one keep-alive HTTP connection, so it is cheap to issue many
requests from the same thread; it is NOT thread-safe — give each load
generator thread its own client.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional, Sequence


class ServiceError(RuntimeError):
    """A non-2xx response; carries the structured error envelope."""

    def __init__(self, status: int, envelope: dict) -> None:
        detail = envelope.get("error", {}) if isinstance(envelope, dict) else {}
        message = detail.get("message", "service error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.envelope = envelope


class ServiceClient:
    """One persistent connection to a running repro service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8023,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, body: Optional[dict] = None):
        """Issue one request; returns the decoded JSON payload.

        Raises :class:`ServiceError` on a non-2xx status.  A dropped
        keep-alive connection (the server may close idle connections
        between calls) is retried once — but only where a replay cannot
        double-apply the request: connect failures retry for every
        method (nothing reached the wire), while failures after the
        request was written retry for GET only.  A ``POST
        /v1/calibrate`` whose response never arrives may still have
        submitted its job; replaying it would submit a second one, so
        the error propagates to the caller instead.
        """
        encoded = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if encoded else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                if connection.sock is None:
                    connection.connect()
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
                continue
            try:
                connection.request(method, path, body=encoded,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt or method != "GET":
                    raise
        payload = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ServiceError(response.status, payload)
        return payload

    # -- endpoint helpers --------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def sweep(self, cache: dict, vth, tox,
              components: Optional[Sequence[str]] = None) -> dict:
        body = {"cache": cache, "vth": vth, "tox": tox}
        if components is not None:
            body["components"] = list(components)
        return self.request("POST", "/v1/sweep", body)

    def optimize(self, cache: dict, scheme, target_ps: float,
                 vth=None, tox=None) -> dict:
        body = {"cache": cache, "scheme": str(scheme),
                "target_ps": target_ps}
        if vth is not None:
            body["vth"] = vth
        if tox is not None:
            body["tox"] = tox
        return self.request("POST", "/v1/optimize", body)

    def amat(self, **body) -> dict:
        return self.request("POST", "/v1/amat", body)

    def calibrate(self, **body) -> dict:
        return self.request("POST", "/v1/calibrate", body)

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel_job(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait_for_job(self, job_id: str, timeout: float = 120.0,
                     poll_interval: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] in ("done", "failed", "cancelled",
                                      "timeout"):
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['status']!r} after "
                    f"{timeout:.0f} s"
                )
            time.sleep(poll_interval)
