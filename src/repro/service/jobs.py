"""Bounded background-job execution for the calibration endpoint.

Calibration runs are seconds-to-minutes of pure CPU — far too long to
hold an HTTP connection open, and heavy enough that an unbounded fan-out
would starve the sweep path.  :class:`JobManager` therefore runs them on
a fixed-size :class:`~concurrent.futures.ProcessPoolExecutor` behind a
bounded queue, and gives every submission a job id the client polls via
``GET /v1/jobs/<id>``.

Lifecycle: ``queued -> running -> done | failed | cancelled | timeout``.
Cancellation is cooperative at the queue boundary: a queued job is
withdrawn before it ever starts; a running job cannot be interrupted
mid-simulation (POSIX offers no safe way to stop a worker mid-numpy),
so cancelling it marks the job and discards its result on arrival.  The
watchdog thread applies the same discard to jobs that exceed their
timeout.  ``shutdown`` drains or cancels everything — it is the SIGTERM
path, so it must never hang.

Durability: every submission is mirrored into the shared
:class:`~repro.service.jobstore.JobStore` (written at submit, atomically
rewritten at every terminal transition), and ``get``/``wait_for``
consult that store on a local miss.  In a multi-worker deployment any
worker therefore answers ``GET /v1/jobs/<id>`` for work another process
finished — including after the owning worker (or the whole daemon) was
killed — and a job that died in flight with its worker resurfaces as a
retryable failure instead of a 404.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ServiceUnavailableError, ValidationError

from repro.service.jobstore import JobStore, snapshot_from_record
from repro.service.metrics import MetricsRegistry

#: States a job can be observed in.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

_TERMINAL = (DONE, FAILED, CANCELLED, TIMEOUT)


@dataclass
class _Job:
    job_id: str
    kind: str
    submitted_at: float
    timeout_seconds: float
    future: Optional[Future] = None
    status: str = QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[object] = None
    error: Optional[str] = None
    detail: dict = field(default_factory=dict)


class JobManager:
    """Submit, observe, cancel, and drain background jobs."""

    def __init__(
        self,
        max_workers: int = 2,
        max_queue: int = 16,
        timeout_seconds: float = 600.0,
        metrics: Optional[MetricsRegistry] = None,
        cache_dir: Optional[str] = None,
        worker_id: Optional[str] = None,
        durable: bool = True,
    ) -> None:
        self._lock = threading.Lock()
        # Long-pollers (wait_for) sleep on this; every terminal
        # transition notifies it.  Shares _lock, so any holder may notify.
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}
        self._ids = itertools.count(1)
        # Job ids must be unique across every worker process (and every
        # restart) that shares one job store: a per-instance random
        # token namespaces the sequential counter.
        self._instance = os.urandom(4).hex()
        self._max_workers = max_workers
        self._max_queue = max_queue
        self._timeout_seconds = timeout_seconds
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._store: Optional[JobStore] = (
            JobStore(cache_dir, worker_id=worker_id,
                     instance=self._instance)
            if durable else None
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shutdown = False
        self._watchdog: Optional[threading.Thread] = None
        self._metrics.register_gauge("jobs.queue_depth", self.queue_depth)
        self._metrics.register_gauge("jobs.running", self.running_count)

    # -- observability -----------------------------------------------------

    def queue_depth(self) -> int:
        """Jobs admitted but not yet started."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.status == QUEUED)

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.status == RUNNING)

    # -- lifecycle ---------------------------------------------------------

    def _next_id(self) -> str:
        """A job id unique across workers, restarts, and processes."""
        return f"job-{self._instance}-{next(self._ids)}"

    def _persist(self, job: _Job) -> None:
        """Mirror one job's current snapshot into the shared store."""
        if self._store is None:
            return
        with self._lock:
            snapshot = self._snapshot(job)
        self._store.write(snapshot)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers
            )
        if self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-job-watchdog", daemon=True
            )
            self._watchdog.start()
        return self._executor

    def submit(
        self,
        kind: str,
        fn: Callable,
        /,
        *args,
        detail: Optional[dict] = None,
        **kwargs,
    ) -> str:
        """Admit one job; returns its id or raises when saturated.

        ``detail`` entries are merged into every snapshot of the job, so
        an endpoint can label a submission (workload, engine, …) and a
        poller sees the labels alongside the status.
        """
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailableError(
                    "the service is shutting down; no new jobs accepted"
                )
            queued = sum(1 for job in self._jobs.values()
                         if job.status == QUEUED)
            if queued >= self._max_queue:
                raise ServiceUnavailableError(
                    f"job queue is full ({queued} queued, limit "
                    f"{self._max_queue}); retry later"
                )
            job_id = self._next_id()
            job = _Job(
                job_id=job_id,
                kind=kind,
                submitted_at=time.time(),
                timeout_seconds=self._timeout_seconds,
            )
            if detail:
                job.detail.update(detail)
            self._jobs[job_id] = job
        self._metrics.increment("jobs.submitted")
        # Persist the admission before any work starts: if this worker
        # dies mid-job, any reader of the shared store sees an orphaned
        # in-flight record (-> failed/retryable), never a missing one.
        self._persist(job)
        future = self._ensure_executor().submit(fn, *args, **kwargs)
        with self._lock:
            job.future = future
        future.add_done_callback(lambda done: self._on_done(job_id, done))
        return job_id

    def submit_completed(
        self,
        kind: str,
        result: object,
        detail: Optional[dict] = None,
    ) -> str:
        """Record a job that was answered synchronously (already done).

        The profile-store hit path on ``/v1/calibrate`` computes nothing:
        the result exists before a worker could even be scheduled.  It
        still gets a job id — the polling contract is uniform — but the
        job is born DONE, skips the executor entirely, and never counts
        against the queue budget.
        """
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailableError(
                    "the service is shutting down; no new jobs accepted"
                )
            job_id = self._next_id()
            now = time.time()
            job = _Job(
                job_id=job_id,
                kind=kind,
                submitted_at=now,
                timeout_seconds=self._timeout_seconds,
                status=DONE,
                started_at=now,
                finished_at=now,
                result=result,
            )
            if detail:
                job.detail.update(detail)
        # Durability before visibility (as in _on_done): the born-done
        # record reaches the store before the id is ever handed out.
        if self._store is not None:
            self._store.write(self._snapshot(job))
        with self._lock:
            self._jobs[job_id] = job
            self._cond.notify_all()
        self._metrics.increment("jobs.submitted")
        self._metrics.increment("jobs.done")
        self._metrics.observe("jobs.duration_seconds", 0.0)
        return job_id

    def _on_done(self, job_id: str, future: Future) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            if job.status in (CANCELLED, TIMEOUT):
                job.finished_at = time.time()
                return  # result arrived after the verdict: discard it
            # Resolve the verdict on a private copy first: the terminal
            # state must reach the shared store *before* any poller can
            # observe it, or a kill -9 in the gap turns a job a client
            # already saw as done into an orphaned in-flight record
            # (-> failed/retryable) on re-read.
            pending = _Job(**{f: getattr(job, f)
                              for f in job.__dataclass_fields__})
        pending.finished_at = time.time()
        if future.cancelled():
            pending.status = CANCELLED
        else:
            error = future.exception()
            if error is not None:
                pending.status = FAILED
                pending.error = f"{type(error).__name__}: {error}"
            else:
                pending.status = DONE
                pending.result = future.result()
        if self._store is not None:
            self._store.write(self._snapshot(pending))
        with self._lock:
            if job.status in (CANCELLED, TIMEOUT):
                # A cancel/timeout verdict landed while we persisted;
                # its snapshot must win on disk too.
                job.finished_at = pending.finished_at
                persist_verdict = True
            else:
                job.status = pending.status
                job.result = pending.result
                job.error = pending.error
                job.finished_at = pending.finished_at
                persist_verdict = False
            status = job.status
            duration = job.finished_at - job.submitted_at
            self._cond.notify_all()
        if persist_verdict:
            self._persist(job)
            return
        self._metrics.increment(f"jobs.{status}")
        if status in (DONE, FAILED):
            self._metrics.observe("jobs.duration_seconds", duration)

    def _watch(self) -> None:
        """Mark RUNNING, and expire jobs past their timeout."""
        while True:
            time.sleep(0.2)
            expired = []
            with self._lock:
                if self._shutdown:
                    return
                now = time.time()
                for job in self._jobs.values():
                    if job.status == QUEUED and job.future is not None \
                            and job.future.running():
                        job.status = RUNNING
                        job.started_at = now
                    if job.status in (QUEUED, RUNNING) \
                            and now - job.submitted_at > job.timeout_seconds:
                        job.status = TIMEOUT
                        job.finished_at = now
                        job.error = (
                            f"job exceeded its {job.timeout_seconds:.0f} s "
                            f"timeout"
                        )
                        expired.append(job)
                if expired:
                    self._cond.notify_all()
            # Future.cancel() on a still-pending future runs the done
            # callbacks synchronously on this thread, and _on_done takes
            # _lock — so the cancel must happen after the lock is
            # released.  Status is already TIMEOUT, so _on_done discards.
            for job in expired:
                if job.future is not None:
                    job.future.cancel()
                self._persist(job)
                self._metrics.increment("jobs.timeout")

    def cancel(self, job_id: str) -> dict:
        """Cancel a job if it has not finished; returns its snapshot.

        Cancellation is a local act: a job owned by *another* worker
        cannot be interrupted from here (there is no cross-process job
        control), so for remote records the snapshot comes back with a
        note instead of an effect — unless the record is already
        terminal, in which case the verdict is simply served.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            record = self._shared_record(job_id)
            if record is None:
                raise ValidationError(f"unknown job id {job_id!r}",
                                      status=404)
            snapshot = snapshot_from_record(record)
            if snapshot.get("status") not in _TERMINAL:
                snapshot["note"] = (
                    "job is owned by another worker; cancel it there "
                    "or wait for its verdict"
                )
            return snapshot
        with self._lock:
            if job.status in _TERMINAL:
                return self._snapshot(job)
            # Mark terminal *before* touching the future: _on_done (which
            # Future.cancel() may invoke synchronously on this thread once
            # the lock is released) early-returns on CANCELLED and never
            # double-counts or overwrites the verdict.
            job.status = CANCELLED
            job.finished_at = time.time()
            future = job.future
            self._cond.notify_all()
        # Never call Future.cancel() while holding _lock: a pending
        # future runs its done callbacks on the cancelling thread, and
        # _on_done acquires _lock — that is a self-deadlock.
        withdrawn = future.cancel() if future is not None else True
        with self._lock:
            if not withdrawn:
                # Already on a worker: the result is discarded on arrival.
                job.detail["note"] = (
                    "job was already running; its result will be discarded"
                )
            snapshot = self._snapshot(job)
        self._persist(job)
        self._metrics.increment("jobs.cancelled")
        return snapshot

    def _shared_record(self, job_id: str) -> Optional[dict]:
        """Look a locally-unknown job up in the shared store."""
        if self._store is None:
            return None
        record = self._store.load(job_id)
        if record is None:
            return None
        self._metrics.increment("jobs.store_serves")
        return record

    def get(self, job_id: str) -> dict:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                # The watchdog polls at 5 Hz; refresh RUNNING on read so
                # a fast poller never sees a stale QUEUED for a started
                # job.
                if job.status == QUEUED and job.future is not None \
                        and job.future.running():
                    job.status = RUNNING
                    job.started_at = time.time()
                return self._snapshot(job)
        # Not ours: another worker may own (or have finished) it.  The
        # shared store serves completed work from any process — the
        # durability contract — and flips orphaned in-flight records to
        # failed/retryable on read.
        record = self._shared_record(job_id)
        if record is None:
            raise ValidationError(f"unknown job id {job_id!r}",
                                  status=404)
        return snapshot_from_record(record)

    def wait_for(self, job_id: str, seconds: float) -> dict:
        """Block until the job is terminal or ``seconds`` elapse.

        The long-poll behind ``GET /v1/jobs/<id>?wait=<seconds>``: one
        blocked handler thread instead of a client hammering ``get``.
        Returns the job's snapshot either way — the caller checks
        ``status`` to tell a finished job from an expired wait.  A job
        owned by another worker is long-polled against the shared store
        (re-read every 0.25 s) instead of the local condition variable.
        """
        deadline = time.monotonic() + max(0.0, seconds)
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    break
                if job.status == QUEUED and job.future is not None \
                        and job.future.running():
                    job.status = RUNNING
                    job.started_at = time.time()
                if job.status in _TERMINAL:
                    return self._snapshot(job)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return self._snapshot(job)
                # Chunked waits double as a liveness poll: the QUEUED ->
                # RUNNING refresh above still happens while blocked.
                self._cond.wait(min(remaining, 0.25))
        # Remote job: poll the shared store until terminal or expired.
        while True:
            record = self._shared_record(job_id)
            if record is None:
                raise ValidationError(f"unknown job id {job_id!r}",
                                      status=404)
            remaining = deadline - time.monotonic()
            if record.get("status") in _TERMINAL or remaining <= 0:
                return snapshot_from_record(record)
            time.sleep(min(remaining, 0.25))

    def _snapshot(self, job: _Job) -> dict:
        payload = {
            "job_id": job.job_id,
            "kind": job.kind,
            "status": job.status,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
        }
        if job.result is not None:
            payload["result"] = job.result
        if job.error is not None:
            payload["error"] = job.error
        payload.update(job.detail)
        return payload

    def shutdown(self, wait_seconds: float = 5.0) -> dict:
        """Drain on SIGTERM: cancel the queue, give runners a grace window.

        Returns a summary of what happened to in-flight work (logged by
        the server so an operator can see nothing was silently lost).
        """
        with self._lock:
            self._shutdown = True
            jobs = list(self._jobs.values())
        cancelled = drained = 0
        for job in jobs:
            with self._lock:
                if job.status in _TERMINAL:
                    continue
                future = job.future
            if future is not None and future.cancel():
                with self._lock:
                    job.status = CANCELLED
                    job.finished_at = time.time()
                    self._cond.notify_all()
                self._persist(job)
                cancelled += 1
        deadline = time.time() + wait_seconds
        for job in jobs:
            with self._lock:
                future = job.future
                status = job.status
            if status in _TERMINAL or future is None:
                continue
            remaining = deadline - time.time()
            try:
                future.result(timeout=max(0.0, remaining))
                drained += 1
            except Exception:
                with self._lock:
                    if job.status not in _TERMINAL:
                        job.status = CANCELLED
                        job.finished_at = time.time()
                        self._cond.notify_all()
                self._persist(job)
                cancelled += 1
        if self._executor is not None:
            with self._lock:
                overstayed = any(
                    job.future is not None and job.future.running()
                    for job in jobs
                )
            if overstayed:
                # A worker outlived the grace window; its result is
                # already discarded, so end it rather than block exit.
                for process in list(
                    getattr(self._executor, "_processes", {}).values()
                ):
                    process.terminate()
            # wait=True reaps the worker processes here — leaving them to
            # the interpreter's atexit hook races its own fd teardown.
            self._executor.shutdown(wait=True, cancel_futures=True)
        return {"drained": drained, "cancelled": cancelled}
