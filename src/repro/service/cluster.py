"""Cross-worker observability board (DiskCache namespace ``metrics``).

Each worker in a multi-worker deployment periodically publishes its
whole :class:`~repro.service.metrics.MetricsRegistry` snapshot to this
shared disk board, keyed by worker id.  Any worker answering
``GET /metrics?scope=cluster`` collects every published record, reports
the per-worker views verbatim, and serves one merged view via
:func:`repro.service.metrics.merge_snapshots` — so the client sees
fleet totals no matter which worker the kernel handed its connection
to.  A single-process daemon publishes itself at scrape time and
answers as a cluster of one.

Records from *recently* dead workers are kept (their counters still
happened — loadgen computes deltas over the merged view across a run,
and a worker crash mid-run must not make traffic vanish) but carry an
``alive: false`` flag so operators can tell a drained worker from a
live one.  A dead record older than :data:`STALE_RECORD_SECONDS` is
expired from the board view: without the cutoff, cache directories
shared across many deployments would accumulate one record per past
worker id and the merged totals would double-count every previous
instance forever.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.perf.disk_cache import DiskCache
from repro.procutil import owner_alive, proc_start_ticks

#: Fingerprint prefix for per-worker metrics records.
_PREFIX = "worker-metrics:"

#: How long a dead worker's record stays in the board view.  Long
#: enough for any realistic bench/loadgen run to keep its deltas exact
#: across a mid-run crash; short enough that stale deployments age out.
STALE_RECORD_SECONDS = 900.0


class WorkerMetricsBoard:
    """Publish/collect per-worker metrics snapshots via the disk cache."""

    NAMESPACE = "metrics"

    def __init__(self, directory=None) -> None:
        self._disk = DiskCache(self.NAMESPACE, directory=directory)

    def publish(self, worker_id: str, snapshot: dict) -> None:
        """Write one worker's current snapshot (atomic, last write wins)."""
        record = {
            "worker_id": worker_id,
            "pid": os.getpid(),
            "start_ticks": proc_start_ticks(os.getpid()),
            "published_at": time.time(),
            "snapshot": snapshot,
        }
        try:
            self._disk.store(_PREFIX + worker_id, record)
        except (TypeError, OSError):  # pragma: no cover - defensive
            pass

    def collect(self) -> Dict[str, dict]:
        """Return ``{worker_id: record}`` for every published worker.

        Entry filenames are fingerprint digests, but each entry stores
        its fingerprint in clear, so the namespace directory is scanned
        and filtered on the ``worker-metrics:`` prefix.  Unreadable or
        torn entries are skipped — the board is observability, never a
        correctness dependency.  Dead workers' records are served with
        ``alive: false`` until they are :data:`STALE_RECORD_SECONDS`
        old, then dropped from the view (and best-effort deleted).
        """
        records: Dict[str, dict] = {}
        directory = self._disk.directory
        if not directory.is_dir():
            return records
        for path in sorted(directory.glob("*.json")):
            try:
                with open(path) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict):
                continue
            fingerprint = entry.get("fingerprint")
            record = entry.get("payload")
            if (
                not isinstance(fingerprint, str)
                or not fingerprint.startswith(_PREFIX)
                or not isinstance(record, dict)
            ):
                continue
            record = dict(record)
            alive = owner_alive(
                record.get("pid"), record.get("start_ticks")
            )
            record["alive"] = alive
            if not alive:
                published = record.get("published_at")
                if (
                    not isinstance(published, (int, float))
                    or time.time() - published > STALE_RECORD_SECONDS
                ):
                    # Long-dead incarnation: expire it from the board
                    # so merged totals stop double-counting it.
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
            records[fingerprint[len(_PREFIX):]] = record
        return records

    def clear(self) -> int:
        """Drop every published record (tests); returns the count."""
        return self._disk.clear()


def cluster_view(
    board: WorkerMetricsBoard,
    self_id: str,
    self_snapshot: Optional[dict] = None,
) -> dict:
    """Assemble the ``/metrics?scope=cluster`` document.

    ``self_snapshot`` (freshly taken by the answering worker) overrides
    that worker's possibly-stale published record, so the responder's
    own numbers are always current.
    """
    from repro.service.metrics import merge_snapshots

    records = board.collect()
    if self_snapshot is not None:
        records[self_id] = {
            "worker_id": self_id,
            "pid": os.getpid(),
            "start_ticks": proc_start_ticks(os.getpid()),
            "published_at": time.time(),
            "alive": True,
            "snapshot": self_snapshot,
        }
    per_worker = {
        worker_id: record.get("snapshot") or {}
        for worker_id, record in records.items()
    }
    return {
        "scope": "cluster",
        "served_by": self_id,
        "workers": {
            worker_id: {
                "pid": record.get("pid"),
                "alive": record.get("alive", False),
                "published_at": record.get("published_at"),
                "snapshot": record.get("snapshot") or {},
            }
            for worker_id, record in records.items()
        },
        "merged": merge_snapshots(per_worker),
    }
