"""Thread-safe service observability: counters, gauges, histograms.

Everything ``GET /metrics`` reports lives in one :class:`MetricsRegistry`
guarded by a single lock — request threads, the batching scheduler, and
the job watchdog all write to it concurrently.  Histograms use fixed
logarithmic bucket boundaries (Prometheus-style cumulative ``le``
counts) so latency distributions are mergeable across scrapes without
the server retaining per-request samples.

Gauges come in two flavours: values set by the code path that owns them
(``set_gauge``) and callables sampled at snapshot time
(``register_gauge``) — the latter is how queue depth and the perf-cache
counters appear without the caches having to push updates.

Multi-worker deployments publish each worker's snapshot to a shared
disk board (:mod:`repro.service.cluster`); :func:`merge_snapshots` is
the aggregation those cumulative-bucket histograms were designed for —
counters sum, buckets sum boundary-wise, min/max fold — producing one
fleet-wide view that is exact, not sampled.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1 ms to 10 s, roughly 1-2.5-5 per
#: decade.  Requests beyond the last edge land in the implicit +Inf
#: bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for batch-size distributions (requests per coalesced batch).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


class _Histogram:
    """Cumulative-bucket histogram (observe under the registry lock)."""

    __slots__ = ("boundaries", "bucket_counts", "count", "total", "minimum",
                 "maximum")

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.boundaries = tuple(boundaries)
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for boundary in self.boundaries:
            if value <= boundary:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def snapshot(self) -> Dict[str, object]:
        cumulative: List[int] = []
        running = 0
        for bucket_count in self.bucket_counts[:-1]:
            running += bucket_count
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {
                repr(boundary): cumulative_count
                for boundary, cumulative_count in zip(
                    self.boundaries, cumulative
                )
            },
        }


class MetricsRegistry:
    """One lock, three metric families, one JSON-able snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._gauge_callbacks: Dict[str, Callable[[], object]] = {}
        self._histograms: Dict[str, _Histogram] = {}

    def increment(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to a (auto-created) monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        """Read one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value."""
        with self._lock:
            self._gauges[name] = value

    def register_gauge(self, name: str, callback: Callable[[], object]) -> None:
        """Sample ``callback()`` at snapshot time under this name."""
        with self._lock:
            self._gauge_callbacks[name] = callback

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one sample into a (auto-created) histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram(boundaries)
            histogram.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """Return the whole registry as one JSON-serialisable document."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            callbacks = list(self._gauge_callbacks.items())
            histograms = {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            }
        # Callbacks run outside the lock: they may take other locks (the
        # job manager's, the perf caches') and must not nest under ours.
        for name, callback in callbacks:
            try:
                gauges[name] = callback()
            except Exception as error:  # pragma: no cover - defensive
                gauges[name] = f"error: {error}"
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


# ---------------------------------------------------------------------------
# Cross-worker aggregation
# ---------------------------------------------------------------------------

def _merge_histogram_snapshots(snapshots: List[dict]) -> dict:
    """Fold N histogram snapshots (same metric, different workers) into one.

    Bucket counts are cumulative per boundary, so they sum boundary-wise;
    workers that never observed a given boundary (histogram families can
    differ by bucket layout) contribute their nearest coverage — in
    practice every worker uses the same fixed layouts, so boundaries
    align exactly.
    """
    merged: dict = {
        "count": 0,
        "sum": 0.0,
        "min": None,
        "max": None,
        "buckets": {},
    }
    for snapshot in snapshots:
        merged["count"] += int(snapshot.get("count", 0))
        merged["sum"] += float(snapshot.get("sum", 0.0))
        low = snapshot.get("min")
        if low is not None and (merged["min"] is None or low < merged["min"]):
            merged["min"] = low
        high = snapshot.get("max")
        if high is not None and (merged["max"] is None
                                 or high > merged["max"]):
            merged["max"] = high
        for boundary, cumulative in (snapshot.get("buckets") or {}).items():
            merged["buckets"][boundary] = (
                merged["buckets"].get(boundary, 0) + int(cumulative)
            )
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
    return merged


def merge_snapshots(per_worker: Dict[str, dict]) -> dict:
    """Merge ``{worker_id: registry snapshot}`` into one cluster view.

    Counters sum; histograms merge exactly (see
    :func:`_merge_histogram_snapshots`); *numeric* gauges sum as well
    (queue depths and running counts add meaningfully across workers)
    while structured gauges — the cache-info dicts — are left to the
    per-worker views, where they remain inspectable without inventing
    merge semantics for every shape.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histogram_parts: Dict[str, List[dict]] = {}
    for snapshot in per_worker.values():
        if not isinstance(snapshot, dict):
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            gauges[name] = gauges.get(name, 0) + value
        for name, histogram in (snapshot.get("histograms") or {}).items():
            if isinstance(histogram, dict):
                histogram_parts.setdefault(name, []).append(histogram)
    return {
        "workers": len(per_worker),
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            name: _merge_histogram_snapshots(parts)
            for name, parts in histogram_parts.items()
        },
    }
