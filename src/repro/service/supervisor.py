"""Multi-worker supervisor: ``python -m repro serve --workers N``.

One parent process binds the listen socket exactly once (with
``SO_REUSEPORT`` set where the platform offers it) and forks N worker
processes that inherit the listening descriptor — the kernel then
balances incoming connections across whichever workers are blocked in
``accept``.  Binding once means ``--port 0`` works (every worker shares
the same ephemeral port) and a crashed worker's replacement needs no
rebind window during which connections would be refused.

The supervisor itself serves nothing.  It sits in ``waitpid``:

* a worker that **exits cleanly** during shutdown is reaped and
  forgotten;
* a worker that **crashes** (non-zero exit, or death by signal — a
  ``kill -9`` included) is restarted with capped exponential backoff
  (:data:`BACKOFF_BASE_SECONDS` doubling to
  :data:`BACKOFF_MAX_SECONDS`), reset after
  :data:`BACKOFF_RESET_SECONDS` of good behaviour so one bad request a
  day never escalates to the cap;
* **SIGTERM/SIGINT** on the supervisor fans out as SIGTERM to every
  worker, which runs the normal graceful drain (finish in-flight
  requests, persist job records, publish final metrics) before the
  supervisor reaps them all and exits 0.

Durability across worker death is the job store's department
(:mod:`repro.service.jobstore`): every worker shares one cache
directory, so a restarted worker answers polls for work its dead
predecessor finished.
"""

from __future__ import annotations

import errno
import os
import signal
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.service.server import ServiceConfig, run

#: First-crash restart delay; doubles per consecutive crash.
BACKOFF_BASE_SECONDS = 0.25
#: Ceiling on the restart delay.
BACKOFF_MAX_SECONDS = 5.0
#: A worker alive this long has its crash streak forgiven.
BACKOFF_RESET_SECONDS = 30.0


def bind_listen_socket(host: str, port: int, backlog: int = 128) -> socket.socket:
    """Bind + listen once, supervisor-side, before any fork.

    ``SO_REUSEPORT`` is set when the platform has it — harmless for the
    inherited-descriptor model used here, and it leaves the door open
    for an operator to run a second supervisor on the same port during
    a rolling restart.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if hasattr(socket, "SO_REUSEPORT"):
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        except OSError:  # pragma: no cover - platform quirk
            pass
    sock.bind((host, port))
    sock.listen(backlog)
    return sock


@dataclass
class _WorkerSlot:
    """Supervisor bookkeeping for one worker index."""

    worker_id: str
    pid: Optional[int] = None
    started_at: float = 0.0
    crashes: int = 0
    restarts: int = 0
    #: Monotonic time before which this slot must not be respawned.
    not_before: float = field(default=0.0)


class Supervisor:
    """Fork, watch, restart, and drain N service workers."""

    def __init__(
        self,
        config: ServiceConfig,
        workers: int,
        listen_socket: socket.socket,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.config = config
        self.socket = listen_socket
        self.slots = [
            _WorkerSlot(worker_id=f"w{index}") for index in range(workers)
        ]
        self._shutdown = False

    # -- child side --------------------------------------------------------

    def _worker_main(self, slot: _WorkerSlot) -> int:
        """Runs in the forked child; never returns to supervisor code."""
        # The child starts from the supervisor's signal state: restore
        # defaults so run() installs its own graceful-drain handlers.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        config = ServiceConfig(
            **{
                **vars(self.config),
                "worker_id": slot.worker_id,
            }
        )
        return run(
            config,
            install_signal_handlers=True,
            listen_socket=self.socket,
        )

    def _spawn(self, slot: _WorkerSlot) -> None:
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = self._worker_main(slot)
            finally:
                # Never unwind into the supervisor's stack from a child:
                # skip atexit/finally frames belonging to the parent.
                os._exit(code)
        slot.pid = pid
        slot.started_at = time.monotonic()
        print(
            f"supervisor: started {slot.worker_id} (pid {pid})",
            flush=True,
        )

    # -- parent side -------------------------------------------------------

    def _slot_for(self, pid: int) -> Optional[_WorkerSlot]:
        for slot in self.slots:
            if slot.pid == pid:
                return slot
        return None

    def _request_shutdown(self, signum, frame) -> None:
        self._shutdown = True
        for slot in self.slots:
            if slot.pid is not None:
                try:
                    os.kill(slot.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass

    def _handle_exit(self, slot: _WorkerSlot, status: int) -> None:
        uptime = time.monotonic() - slot.started_at
        slot.pid = None
        if self._shutdown:
            return
        clean = os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0
        if uptime >= BACKOFF_RESET_SECONDS:
            # A long-lived worker exiting 0 outside shutdown is unusual
            # but not a crash; restart it without penalty.
            slot.crashes = 0 if clean else 1
        else:
            # Any rapid exit — clean included — counts toward the
            # streak: a misconfiguration that makes workers exit 0
            # immediately must back off, not fork-loop.
            slot.crashes += 1
        delay = 0.0
        if slot.crashes:
            delay = min(
                BACKOFF_BASE_SECONDS * (2 ** (slot.crashes - 1)),
                BACKOFF_MAX_SECONDS,
            )
        slot.not_before = time.monotonic() + delay
        slot.restarts += 1
        verdict = (
            f"exit {os.WEXITSTATUS(status)}"
            if os.WIFEXITED(status)
            else f"signal {os.WTERMSIG(status)}"
        )
        print(
            f"supervisor: {slot.worker_id} died ({verdict}) after "
            f"{uptime:.1f} s; restarting in {delay:.2f} s",
            flush=True,
        )

    def _respawn_due(self) -> float:
        """Start every slot whose backoff has elapsed; returns next due."""
        soonest = float("inf")
        now = time.monotonic()
        for slot in self.slots:
            if slot.pid is not None:
                continue
            if now >= slot.not_before:
                self._spawn(slot)
            else:
                soonest = min(soonest, slot.not_before - now)
        return soonest

    def serve_forever(self) -> int:
        signal.signal(signal.SIGTERM, self._request_shutdown)
        signal.signal(signal.SIGINT, self._request_shutdown)
        for slot in self.slots:
            self._spawn(slot)
        while not self._shutdown:
            pending = self._respawn_due()
            try:
                if pending < float("inf"):
                    # A dead slot is waiting out its backoff: poll so
                    # the respawn happens on time even with no child
                    # events.
                    time.sleep(min(pending, 0.1))
                    pid, status = os.waitpid(-1, os.WNOHANG)
                    if pid == 0:
                        continue
                else:
                    pid, status = os.waitpid(-1, 0)
            except InterruptedError:
                continue
            except ChildProcessError:
                if self._shutdown:
                    break
                continue
            slot = self._slot_for(pid)
            if slot is not None:
                self._handle_exit(slot, status)
        # Shutdown: SIGTERM already fanned out by the handler; reap.
        deadline = time.monotonic() + 30.0
        for slot in self.slots:
            if slot.pid is None:
                continue
            while time.monotonic() < deadline:
                try:
                    pid, _ = os.waitpid(slot.pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if pid == slot.pid:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - drain overstay
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                    os.waitpid(slot.pid, 0)
                except (ProcessLookupError, ChildProcessError):
                    pass
            slot.pid = None
        print("supervisor: all workers stopped", flush=True)
        return 0


def run_supervised(
    config: ServiceConfig,
    workers: int,
    port_file: Optional[str] = None,
) -> int:
    """Entry point behind ``python -m repro serve --workers N``.

    With ``workers == 1`` the supervisor still runs — a single worker
    then gets crash-restart for free — but callers wanting the exact
    historical single-process behaviour should call
    :func:`repro.service.server.run` directly (``--workers 1`` maps to
    that in the CLI).
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        print(
            "supervisor: os.fork unavailable; running single-process",
            file=sys.stderr,
            flush=True,
        )
        return run(config, port_file=port_file)
    try:
        sock = bind_listen_socket(config.host, config.port)
    except OSError as error:
        if error.errno in (errno.EADDRINUSE, errno.EACCES):
            print(f"supervisor: cannot bind: {error}", file=sys.stderr)
            return 1
        raise
    host, port = sock.getsockname()[:2]
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(f"{port}\n")
    print(
        f"repro supervisor on http://{host}:{port} with "
        f"{workers} worker(s)",
        flush=True,
    )
    try:
        return Supervisor(config, workers, sock).serve_forever()
    finally:
        sock.close()
