"""Long-running HTTP service over the repro engines.

``python -m repro serve`` starts the daemon; see ``docs/SERVICE.md`` for
the endpoint reference and :mod:`repro.service.client` for the Python
client.  The package splits cleanly by concern:

* :mod:`repro.service.schemas`  — request validation / error envelopes
* :mod:`repro.service.batching` — sweep coalescing over union grids
* :mod:`repro.service.jobs`     — background calibration worker pool
* :mod:`repro.service.metrics`  — counters / gauges / histograms
* :mod:`repro.service.server`   — HTTP transport + endpoint handlers
* :mod:`repro.service.client`   — stdlib keep-alive client

Declarative DSE campaigns (``POST /v1/campaigns``) are executed by
:mod:`repro.campaign`, which the server wires onto its job pool.
"""

from repro.service.server import (
    ReproService,
    ServiceConfig,
    create_server,
    run,
)
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "ReproService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "create_server",
    "run",
]
