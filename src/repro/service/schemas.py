"""Request decoding and validation for the service endpoints.

Every endpoint handler receives already-validated, typed request objects
from this module; nothing downstream ever sees raw client JSON.  All
failures raise :class:`repro.errors.ValidationError` carrying the HTTP
status the transport layer should answer with (400 for bad input, 413
for oversized grids/traces), so a malformed request can never take a
worker thread down or surface as a 500.

The limits here are the daemon's admission control: a single sweep is
capped at :data:`MAX_GRID_POINTS` grid points and a calibration at
:data:`MAX_TRACE_ACCESSES` accesses — enough for every legitimate use of
the engines, small enough that one request cannot monopolise the
process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.archsim.workloads import STANDARD_WORKLOADS, WorkloadSpec
from repro.cache.assignment import COMPONENT_NAMES, Knobs, knobs
from repro.cache.config import CacheConfig
from repro.optimize.schemes import Scheme
from repro.perf.profile_store import SURFACE_ASSOCS
from repro.technology.bptm import Technology
from repro.technology.nodes import NODES, SCALING_STYLES, node_technology

#: Hard ceiling on (n_vth x n_tox) points in one sweep/optimize request.
MAX_GRID_POINTS = 4096

#: Hard ceiling on one axis (keeps union grids bounded too).
MAX_AXIS_POINTS = 256

#: Hard ceiling on a calibration trace length.
MAX_TRACE_ACCESSES = 5_000_000

#: Hard ceiling on a custom workload footprint (bytes).
MAX_FOOTPRINT_BYTES = 1 << 30

#: Default ceiling on the units one campaign may expand to (a daemon can
#: lower it via ``ServiceConfig.campaign_max_units``; a spec can lower —
#: never raise — it via its own ``max_units`` field).
MAX_CAMPAIGN_UNITS = 2048

#: Longest server-side block a ``?wait=`` query may request (seconds).
MAX_WAIT_SECONDS = 30.0

#: Accepted scheme spellings -> enum.
SCHEMES: Dict[str, Scheme] = {
    "1": Scheme.PER_COMPONENT,
    "2": Scheme.CELL_VS_PERIPHERY,
    "3": Scheme.UNIFORM,
}


def error_envelope(
    error_type: str, message: str, status: int, **extra
) -> Dict[str, object]:
    """The structured error body every non-2xx response carries."""
    payload: Dict[str, object] = {
        "type": error_type,
        "message": message,
        "status": status,
    }
    payload.update(extra)
    return {"error": payload}


def _require_object(body, what: str) -> dict:
    if not isinstance(body, dict):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(body).__name__}"
        )
    return body


def _reject_unknown_keys(body: dict, allowed: Tuple[str, ...], what: str):
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ValidationError(
            f"{what} has unknown field(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _number(body: dict, key: str, what: str, default=None, minimum=None,
            maximum=None) -> float:
    if key not in body:
        if default is not None:
            return default
        raise ValidationError(f"{what} is missing required field {key!r}")
    value = body[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{what}.{key} must be a number, got {type(value).__name__}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise ValidationError(f"{what}.{key} must be finite, got {value}")
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"{what}.{key} = {value} is below the minimum {minimum}"
        )
    if maximum is not None and value > maximum:
        raise ValidationError(
            f"{what}.{key} = {value} is above the maximum {maximum}"
        )
    return value


def _integer(body: dict, key: str, what: str, default=None, minimum=None,
             maximum=None) -> int:
    value = _number(body, key, what, default=default, minimum=minimum,
                    maximum=maximum)
    if value != int(value):
        raise ValidationError(f"{what}.{key} must be an integer, got {value}")
    return int(value)


def _technology(body: dict, what: str) -> Tuple[int, str, Technology]:
    """Decode the optional ``node``/``scaling_style`` fields.

    Returns ``(node, scaling_style, Technology)``; the default is the
    paper's 65 nm anchor under the "itrs" style (at 65 nm both styles
    are the identical anchor).  Unknown nodes and styles are structured
    400s naming the supported values.
    """
    raw_node = body.get("node", 65)
    if isinstance(raw_node, bool) or not isinstance(raw_node, int):
        raise ValidationError(
            f"{what}.node must be an integer nanometre node, got "
            f"{type(raw_node).__name__}"
        )
    if raw_node not in NODES:
        raise ValidationError(
            f"{what}.node = {raw_node} nm is not a supported technology "
            f"node; expected one of {list(NODES)}"
        )
    style = body.get("scaling_style", "itrs")
    if not isinstance(style, str) or style not in SCALING_STYLES:
        raise ValidationError(
            f"{what}.scaling_style must be one of {list(SCALING_STYLES)}, "
            f"got {style!r}"
        )
    return raw_node, style, node_technology(raw_node, style)


def _axis(body: dict, key: str, what: str, low: float, high: float,
          unit: str) -> Optional[Tuple[float, ...]]:
    """Decode one sweep axis: a list of values or {min, max, points}.

    Returns the sorted, de-duplicated axis, or None when absent.
    """
    if key not in body:
        return None
    raw = body[key]
    if isinstance(raw, dict):
        _reject_unknown_keys(raw, ("min", "max", "points"), f"{what}.{key}")
        lower = _number(raw, "min", f"{what}.{key}", minimum=low, maximum=high)
        upper = _number(raw, "max", f"{what}.{key}", minimum=low, maximum=high)
        points = _integer(raw, "points", f"{what}.{key}", minimum=2,
                          maximum=MAX_AXIS_POINTS)
        if upper <= lower:
            raise ValidationError(
                f"{what}.{key}: max ({upper}) must exceed min ({lower})"
            )
        step = (upper - lower) / (points - 1)
        values = [lower + index * step for index in range(points)]
        values[-1] = upper
    elif isinstance(raw, list):
        if not raw:
            raise ValidationError(f"{what}.{key} must not be empty")
        if len(raw) > MAX_AXIS_POINTS:
            raise ValidationError(
                f"{what}.{key} has {len(raw)} points; the limit is "
                f"{MAX_AXIS_POINTS}",
                status=413,
            )
        values = []
        for value in raw:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValidationError(
                    f"{what}.{key} entries must be numbers, got "
                    f"{type(value).__name__}"
                )
            value = float(value)
            if not math.isfinite(value):
                raise ValidationError(f"{what}.{key} entries must be finite")
            if not low <= value <= high:
                raise ValidationError(
                    f"{what}.{key} value {value} {unit} is outside the "
                    f"node's design box [{low:g}, {high:g}] {unit}"
                )
            values.append(value)
    else:
        raise ValidationError(
            f"{what}.{key} must be a list or a {{min, max, points}} object"
        )
    return tuple(sorted(set(values)))


def _cache_config(body: dict, what: str) -> CacheConfig:
    raw = _require_object(body.get("cache"), f"{what}.cache")
    _reject_unknown_keys(
        raw, ("size_kb", "block_bytes", "associativity", "output_bits",
              "name"), f"{what}.cache"
    )
    size_kb = _number(raw, "size_kb", f"{what}.cache", minimum=1,
                      maximum=64 * 1024)
    block_bytes = _integer(raw, "block_bytes", f"{what}.cache", default=32,
                           minimum=8, maximum=512)
    associativity = _integer(raw, "associativity", f"{what}.cache", default=2,
                             minimum=1, maximum=64)
    output_bits = _integer(raw, "output_bits", f"{what}.cache", default=64,
                           minimum=8, maximum=1024)
    name = raw.get("name", f"cache-{size_kb:g}K")
    if not isinstance(name, str) or len(name) > 64:
        raise ValidationError(
            f"{what}.cache.name must be a string of at most 64 characters"
        )
    # CacheConfig's own __post_init__ performs the deep geometry checks;
    # its ConfigurationError is mapped to a 400 by the transport layer.
    return CacheConfig(
        size_bytes=int(size_kb * 1024),
        block_bytes=block_bytes,
        associativity=associativity,
        output_bits=output_bits,
        name=name,
    )


def _knobs(body: dict, key: str, what: str, default: Optional[Knobs],
           technology: Optional[Technology] = None) -> Optional[Knobs]:
    if key not in body:
        return default
    box = technology if technology is not None else node_technology(65)
    raw = _require_object(body[key], f"{what}.{key}")
    _reject_unknown_keys(raw, ("vth", "tox"), f"{what}.{key}")
    vth = _number(raw, "vth", f"{what}.{key}", minimum=box.vth_min,
                  maximum=box.vth_max)
    tox = _number(raw, "tox", f"{what}.{key}", minimum=box.tox_min_a,
                  maximum=box.tox_max_a)
    return knobs(vth, tox)


def _assoc(body: dict, key: str, what: str) -> Optional[int]:
    """Decode one optional associativity field (a surface power of two)."""
    if key not in body:
        return None
    value = body[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{what}.{key} must be an integer, got {type(value).__name__}"
        )
    if value not in SURFACE_ASSOCS:
        raise ValidationError(
            f"{what}.{key} = {value} is not a profiled associativity; "
            f"expected one of {list(SURFACE_ASSOCS)}"
        )
    return value


def _assoc_list(body: dict, key: str, what: str) -> Optional[Tuple[int, ...]]:
    """Decode one optional associativity axis (ascending, no duplicates)."""
    if key not in body:
        return None
    raw = body[key]
    if not isinstance(raw, list) or not raw or len(raw) > len(SURFACE_ASSOCS):
        raise ValidationError(
            f"{what}.{key} must be a list of 1..{len(SURFACE_ASSOCS)} "
            f"associativities"
        )
    values = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"{what}.{key} entries must be integers, got "
                f"{type(value).__name__}"
            )
        if value not in SURFACE_ASSOCS:
            raise ValidationError(
                f"{what}.{key} value {value} is not a profiled "
                f"associativity; expected a subset of {list(SURFACE_ASSOCS)}"
            )
        values.append(value)
    if values != sorted(set(values)):
        raise ValidationError(
            f"{what}.{key} must be strictly ascending without duplicates"
        )
    return tuple(values)


def _check_expansion_budget(
    factors: Tuple[Tuple[int, str], ...],
    limit: int,
    what: str,
    verb: str = "requests",
    unit_label: str = "grid points",
    status: int = 413,
) -> int:
    """Reject an axis product past ``limit``, naming every factor.

    The one admission-control primitive behind both the sweep/optimize
    grid budget and the campaign expansion budget: the error names the
    offending axis product (``3 workloads x 2 policies x ...``) so a
    client can see exactly which axis to shrink.  Returns the product.
    """
    total = 1
    for count, _ in factors:
        total *= count
    if total > limit:
        product = " x ".join(f"{count} {label}" for count, label in factors)
        raise ValidationError(
            f"{what} {verb} {total} {unit_label} ({product}); "
            f"the limit is {limit}",
            status=status,
        )
    return total


def _check_grid_budget(vths: Tuple[float, ...], toxes: Tuple[float, ...],
                       what: str) -> None:
    _check_expansion_budget(
        ((len(vths), "Vth"), (len(toxes), "Tox")), MAX_GRID_POINTS, what
    )


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /v1/sweep`` body."""

    config: CacheConfig
    vths: Tuple[float, ...]
    toxes_angstrom: Tuple[float, ...]
    components: Tuple[str, ...]
    node: int = 65
    scaling_style: str = "itrs"


def parse_sweep(body) -> SweepRequest:
    body = _require_object(body, "sweep request")
    _reject_unknown_keys(body, ("cache", "vth", "tox", "components", "node",
                                "scaling_style"), "sweep request")
    config = _cache_config(body, "sweep")
    node, style, tech = _technology(body, "sweep")
    vths = _axis(body, "vth", "sweep", tech.vth_min, tech.vth_max, "V")
    toxes = _axis(body, "tox", "sweep", tech.tox_min_a, tech.tox_max_a, "A")
    if vths is None or toxes is None:
        raise ValidationError(
            "sweep requires both 'vth' and 'tox' axes (a list of values "
            "or {min, max, points})"
        )
    _check_grid_budget(vths, toxes, "sweep")
    raw_components = body.get("components")
    if raw_components is None:
        components = COMPONENT_NAMES
    else:
        if not isinstance(raw_components, list) or not raw_components:
            raise ValidationError(
                "sweep.components must be a non-empty list of names"
            )
        for name in raw_components:
            if name not in COMPONENT_NAMES:
                raise ValidationError(
                    f"unknown component {name!r}; expected a subset of "
                    f"{list(COMPONENT_NAMES)}"
                )
        components = tuple(
            name for name in COMPONENT_NAMES if name in raw_components
        )
    return SweepRequest(
        config=config, vths=vths, toxes_angstrom=toxes,
        components=components, node=node, scaling_style=style,
    )


@dataclass(frozen=True)
class OptimizeRequest:
    """One validated ``POST /v1/optimize`` body."""

    config: CacheConfig
    scheme: Scheme
    max_access_time: float
    vths: Optional[Tuple[float, ...]]
    toxes_angstrom: Optional[Tuple[float, ...]]
    node: int = 65
    scaling_style: str = "itrs"


def parse_optimize(body) -> OptimizeRequest:
    body = _require_object(body, "optimize request")
    _reject_unknown_keys(body, ("cache", "scheme", "target_ps", "vth", "tox",
                                "node", "scaling_style"), "optimize request")
    config = _cache_config(body, "optimize")
    node, style, tech = _technology(body, "optimize")
    raw_scheme = body.get("scheme", "2")
    scheme = SCHEMES.get(str(raw_scheme))
    if scheme is None:
        raise ValidationError(
            f"unknown scheme {raw_scheme!r}; expected one of "
            f"{sorted(SCHEMES)}"
        )
    target_ps = _number(body, "target_ps", "optimize", minimum=1.0,
                        maximum=1e6)
    vths = _axis(body, "vth", "optimize", tech.vth_min, tech.vth_max, "V")
    toxes = _axis(body, "tox", "optimize", tech.tox_min_a, tech.tox_max_a,
                  "A")
    if (vths is None) != (toxes is None):
        raise ValidationError(
            "optimize needs either both 'vth' and 'tox' axes or neither "
            "(the default design grid)"
        )
    if vths is not None:
        _check_grid_budget(vths, toxes, "optimize")
    return OptimizeRequest(
        config=config,
        scheme=scheme,
        max_access_time=target_ps * 1e-12,
        vths=vths,
        toxes_angstrom=toxes,
        node=node,
        scaling_style=style,
    )


@dataclass(frozen=True)
class AmatRequest:
    """One validated ``POST /v1/amat`` body."""

    workload: Optional[str]
    blend_weights: Optional[Tuple[Tuple[str, float], ...]]
    l1_size_kb: float
    l2_size_kb: float
    l1_knobs: Knobs
    l2_knobs: Knobs
    memory_latency: Optional[float]
    policy: str
    l1_assoc: Optional[int] = None
    l2_assoc: Optional[int] = None
    node: int = 65
    scaling_style: str = "itrs"


def parse_amat(body) -> AmatRequest:
    from repro.optimize.two_level import default_l1_knobs, default_l2_knobs

    body = _require_object(body, "amat request")
    _reject_unknown_keys(
        body, ("workload", "l1_size_kb", "l2_size_kb", "l1_knobs", "l2_knobs",
               "memory_latency_ps", "policy", "l1_assoc", "l2_assoc", "node",
               "scaling_style"),
        "amat request"
    )
    node, style, tech = _technology(body, "amat")
    raw_workload = body.get("workload", "spec2000")
    workload: Optional[str] = None
    blend: Optional[Tuple[Tuple[str, float], ...]] = None
    if isinstance(raw_workload, str):
        if raw_workload not in STANDARD_WORKLOADS:
            raise ValidationError(
                f"unknown workload {raw_workload!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        workload = raw_workload
    elif isinstance(raw_workload, dict):
        if not raw_workload:
            raise ValidationError("amat.workload blend must not be empty")
        pairs = []
        for name, weight in raw_workload.items():
            if name not in STANDARD_WORKLOADS:
                raise ValidationError(
                    f"unknown workload {name!r} in blend; expected a subset "
                    f"of {sorted(STANDARD_WORKLOADS)}"
                )
            if isinstance(weight, bool) or not isinstance(
                weight, (int, float)
            ) or not math.isfinite(float(weight)) or weight < 0:
                raise ValidationError(
                    f"amat.workload[{name!r}] must be a non-negative number"
                )
            pairs.append((name, float(weight)))
        if sum(weight for _, weight in pairs) <= 0:
            raise ValidationError(
                "amat.workload blend weights must sum to a positive value"
            )
        blend = tuple(sorted(pairs))
    else:
        raise ValidationError(
            "amat.workload must be a suite name or a {name: weight} blend"
        )
    l1_size_kb = _number(body, "l1_size_kb", "amat", default=16.0, minimum=1,
                         maximum=1024)
    l2_size_kb = _number(body, "l2_size_kb", "amat", default=1024.0,
                         minimum=32, maximum=64 * 1024)
    return AmatRequest(
        workload=workload,
        blend_weights=blend,
        l1_size_kb=l1_size_kb,
        l2_size_kb=l2_size_kb,
        l1_knobs=_knobs(body, "l1_knobs", "amat", default_l1_knobs(tech),
                        technology=tech),
        l2_knobs=_knobs(body, "l2_knobs", "amat", default_l2_knobs(tech),
                        technology=tech),
        memory_latency=(
            _number(body, "memory_latency_ps", "amat", minimum=1.0,
                    maximum=1e7) * 1e-12
            if "memory_latency_ps" in body
            else None
        ),
        policy=_policy(body, "amat"),
        l1_assoc=_assoc(body, "l1_assoc", "amat"),
        l2_assoc=_assoc(body, "l2_assoc", "amat"),
        node=node,
        scaling_style=style,
    )


def _policy(body: dict, what: str) -> str:
    policy = body.get("policy", "lru")
    if policy not in ("lru", "fifo", "random"):
        raise ValidationError(
            f"unknown replacement policy {policy!r}; expected 'lru', "
            f"'fifo' or 'random'"
        )
    return policy


@dataclass(frozen=True)
class CalibrateRequest:
    """One validated ``POST /v1/calibrate`` body."""

    spec: WorkloadSpec
    n_accesses: int
    seed: int
    estimator: str
    engine: str
    policy: str
    l1_grid_kb: Tuple[int, ...]
    l2_grid_kb: Tuple[int, ...]
    l1_assocs: Optional[Tuple[int, ...]] = None
    l2_assocs: Optional[Tuple[int, ...]] = None


def _workload_spec(raw, what: str) -> WorkloadSpec:
    if isinstance(raw, str):
        spec = STANDARD_WORKLOADS.get(raw)
        if spec is None:
            raise ValidationError(
                f"unknown workload {raw!r}; expected one of "
                f"{sorted(STANDARD_WORKLOADS)}"
            )
        return spec
    raw = _require_object(raw, what)
    field_names = tuple(
        field.name for field in dataclass_fields(WorkloadSpec)
    )
    _reject_unknown_keys(raw, field_names, what)
    if "name" not in raw or not isinstance(raw["name"], str):
        raise ValidationError(f"{what}.name must be a string")
    if len(raw["name"]) > 64:
        raise ValidationError(f"{what}.name must be at most 64 characters")
    arguments = {"name": raw["name"]}
    for key in ("footprint_bytes", "hot_bytes", "warm_bytes"):
        arguments[key] = _integer(raw, key, what, minimum=0,
                                  maximum=MAX_FOOTPRINT_BYTES)
    for key, default in (
        ("hot_fraction", None), ("stream_fraction", None),
        ("cold_fraction", None), ("hot_zipf_alpha", 1.2),
        ("write_fraction", 0.3),
    ):
        arguments[key] = _number(raw, key, what, default=default, minimum=0.0,
                                 maximum=10.0)
    # WorkloadSpec's __post_init__ enforces the cross-field invariants;
    # its SimulationError maps to a 400.
    return WorkloadSpec(**arguments)


def _grid_kb(body: dict, key: str, what: str,
             default: Tuple[int, ...]) -> Tuple[int, ...]:
    if key not in body:
        return default
    raw = body[key]
    if not isinstance(raw, list) or not raw or len(raw) > 16:
        raise ValidationError(
            f"{what}.{key} must be a list of 1..16 sizes in KiB"
        )
    sizes = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"{what}.{key} entries must be integers")
        if not 1 <= value <= 64 * 1024:
            raise ValidationError(
                f"{what}.{key} value {value} KiB is outside [1, 65536]"
            )
        sizes.append(value)
    if sizes != sorted(set(sizes)):
        raise ValidationError(
            f"{what}.{key} must be strictly ascending without duplicates"
        )
    return tuple(sizes)


def parse_calibrate(body) -> CalibrateRequest:
    from repro.archsim.missmodel import L1_GRID_KB, L2_GRID_KB

    body = _require_object(body, "calibrate request")
    _reject_unknown_keys(
        body, ("workload", "n_accesses", "seed", "estimator", "engine",
               "policy", "l1_grid_kb", "l2_grid_kb", "l1_assocs",
               "l2_assocs"), "calibrate request"
    )
    if "workload" not in body:
        raise ValidationError(
            "calibrate requires 'workload' (a suite name or an inline "
            "workload spec)"
        )
    spec = _workload_spec(body["workload"], "calibrate.workload")
    n_accesses = _integer(body, "n_accesses", "calibrate", default=300_000,
                          minimum=1_000)
    if n_accesses > MAX_TRACE_ACCESSES:
        raise ValidationError(
            f"calibrate.n_accesses = {n_accesses} exceeds the limit of "
            f"{MAX_TRACE_ACCESSES}",
            status=413,
        )
    estimator = body.get("estimator", "grid")
    if estimator not in ("grid", "stackdist", "setdist"):
        raise ValidationError(
            f"unknown estimator {estimator!r}; expected 'grid', "
            f"'stackdist' or 'setdist'"
        )
    engine = body.get("engine", "multiconfig")
    if engine not in ("multiconfig", "array", "object"):
        raise ValidationError(
            f"unknown engine {engine!r}; expected 'multiconfig', 'array' "
            f"or 'object'"
        )
    policy = _policy(body, "calibrate")
    if estimator != "grid" and policy != "lru":
        raise ValidationError(
            f"estimator={estimator!r} models LRU only; use the grid "
            "estimator for non-LRU policies"
        )
    l1_assocs = _assoc_list(body, "l1_assocs", "calibrate")
    l2_assocs = _assoc_list(body, "l2_assocs", "calibrate")
    if estimator == "stackdist" and (l1_assocs or l2_assocs):
        raise ValidationError(
            "estimator='stackdist' is fully-associative and cannot take "
            "an associativity axis; use 'grid' or 'setdist'"
        )
    return CalibrateRequest(
        spec=spec,
        n_accesses=n_accesses,
        seed=_integer(body, "seed", "calibrate", default=1, minimum=0,
                      maximum=2**31 - 1),
        estimator=estimator,
        engine=engine,
        policy=policy,
        l1_grid_kb=_grid_kb(body, "l1_grid_kb", "calibrate", L1_GRID_KB),
        l2_grid_kb=_grid_kb(body, "l2_grid_kb", "calibrate", L2_GRID_KB),
        l1_assocs=l1_assocs,
        l2_assocs=l2_assocs,
    )


# ---------------------------------------------------------------------------
# Query strings
# ---------------------------------------------------------------------------

def parse_wait(query: Dict[str, list], what: str) -> float:
    """Decode an optional ``?wait=<seconds>`` long-poll parameter.

    Returns 0.0 when absent; the value is capped at
    :data:`MAX_WAIT_SECONDS` so a client cannot pin a handler thread
    indefinitely.
    """
    raw = query.get("wait")
    if not raw:
        return 0.0
    value = raw[-1]
    try:
        seconds = float(value)
    except ValueError:
        raise ValidationError(
            f"{what}: query parameter 'wait' must be a number of seconds, "
            f"got {value!r}"
        )
    if not math.isfinite(seconds) or seconds < 0:
        raise ValidationError(
            f"{what}: query parameter 'wait' must be a finite non-negative "
            f"number of seconds, got {value!r}"
        )
    return min(seconds, MAX_WAIT_SECONDS)


def parse_flag(query: Dict[str, list], key: str, what: str,
               default: bool = True) -> bool:
    """Decode an optional boolean query parameter (``0/1/true/false``)."""
    raw = query.get(key)
    if not raw:
        return default
    value = raw[-1].lower()
    if value in ("1", "true", "yes"):
        return True
    if value in ("0", "false", "no"):
        return False
    raise ValidationError(
        f"{what}: query parameter {key!r} must be a boolean "
        f"(0/1/true/false), got {raw[-1]!r}"
    )


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------

def _campaign_shape_axes(raw: dict, what: str):
    """Decode the (size, assoc) axes of a matrix/amat block.

    Every point must lie on the dense profile surfaces — that is what
    makes the whole block cost one trace pass per (workload, policy).
    """
    from repro.archsim.missmodel import (
        L1_GRID_KB,
        L2_GRID_KB,
        REFERENCE_L1_ASSOC,
        REFERENCE_L1_BLOCK,
        REFERENCE_L2_ASSOC,
        REFERENCE_L2_BLOCK,
    )
    from repro.perf.profile_store import covers_point

    l1_sizes = _grid_kb(raw, "l1_sizes_kb", what, L1_GRID_KB)
    l2_sizes = _grid_kb(raw, "l2_sizes_kb", what, L2_GRID_KB)
    l1_assocs = _assoc_list(raw, "l1_assocs", what) or (REFERENCE_L1_ASSOC,)
    l2_assocs = _assoc_list(raw, "l2_assocs", what) or (REFERENCE_L2_ASSOC,)
    for level, sizes, assocs, block in (
        ("l1", l1_sizes, l1_assocs, REFERENCE_L1_BLOCK),
        ("l2", l2_sizes, l2_assocs, REFERENCE_L2_BLOCK),
    ):
        for size_kb in sizes:
            for assoc in assocs:
                if not covers_point(level, size_kb * 1024, assoc,
                                    block_bytes=block):
                    raise ValidationError(
                        f"{what}: ({level}, {size_kb} KiB, {assoc}-way) is "
                        f"not on the profiled surface grid (sizes must "
                        f"divide into a profiled power-of-two set count)"
                    )
    return l1_sizes, l1_assocs, l2_sizes, l2_assocs


def parse_campaign(body, max_units: int = MAX_CAMPAIGN_UNITS):
    """Validate one ``POST /v1/campaigns`` body into a CampaignSpec.

    Enforces the expansion budget: every block's unit count and the
    campaign total are checked against ``max_units``, and an over-budget
    spec gets a structured 400 naming the offending axis product.
    """
    from repro.campaign.spec import (
        AmatBlock,
        CampaignCalibration,
        CampaignConstraints,
        CampaignSpec,
        MatrixBlock,
        OptimizeBlock,
        SweepBlock,
    )

    body = _require_object(body, "campaign request")
    _reject_unknown_keys(
        body, ("name", "workloads", "policies", "calibration", "matrix",
               "amat", "sweeps", "optimize", "constraints", "max_units",
               "nodes", "scaling_style"),
        "campaign request"
    )
    name = body.get("name", "campaign")
    if not isinstance(name, str) or not name or len(name) > 64:
        raise ValidationError(
            "campaign.name must be a non-empty string of at most "
            "64 characters"
        )
    limit = max_units
    if "max_units" in body:
        # A spec may tighten the budget for itself, never loosen the
        # daemon's own cap.
        limit = min(limit, _integer(body, "max_units", "campaign",
                                    minimum=1))

    raw_workloads = body.get("workloads", ["spec2000"])
    if not isinstance(raw_workloads, list) or not raw_workloads \
            or len(raw_workloads) > 8:
        raise ValidationError(
            "campaign.workloads must be a list of 1..8 workloads (suite "
            "names or inline specs)"
        )
    workloads = []
    seen_names = set()
    for index, raw in enumerate(raw_workloads):
        spec = _workload_spec(raw, f"campaign.workloads[{index}]")
        if spec.name in seen_names:
            raise ValidationError(
                f"campaign.workloads has duplicate workload name "
                f"{spec.name!r}"
            )
        seen_names.add(spec.name)
        workloads.append(spec)

    raw_policies = body.get("policies", ["lru"])
    if not isinstance(raw_policies, list) or not raw_policies:
        raise ValidationError(
            "campaign.policies must be a non-empty list of policies"
        )
    policies = []
    for policy in raw_policies:
        if policy not in ("lru", "fifo", "random"):
            raise ValidationError(
                f"unknown replacement policy {policy!r} in "
                f"campaign.policies; expected 'lru', 'fifo' or 'random'"
            )
        if policy in policies:
            raise ValidationError(
                f"campaign.policies has duplicate policy {policy!r}"
            )
        policies.append(policy)

    # The technology axis: one scaling style, 1..N nodes.  Circuit-level
    # blocks (amat, sweeps, optimize) expand once per node; shared axes
    # and knobs must sit inside *every* listed node's design box.
    raw_nodes = body.get("nodes", [65])
    if not isinstance(raw_nodes, list) or not raw_nodes \
            or len(raw_nodes) > len(NODES):
        raise ValidationError(
            f"campaign.nodes must be a list of 1..{len(NODES)} technology "
            f"nodes (a subset of {list(NODES)})"
        )
    nodes: list = []
    for value in raw_nodes:
        if isinstance(value, bool) or not isinstance(value, int) \
                or value not in NODES:
            raise ValidationError(
                f"campaign.nodes value {value!r} is not a supported "
                f"technology node; expected a subset of {list(NODES)}"
            )
        if value in nodes:
            raise ValidationError(
                f"campaign.nodes has duplicate node {value}"
            )
        nodes.append(value)
    style = body.get("scaling_style", "itrs")
    if not isinstance(style, str) or style not in SCALING_STYLES:
        raise ValidationError(
            f"campaign.scaling_style must be one of "
            f"{list(SCALING_STYLES)}, got {style!r}"
        )
    lead_tech = node_technology(nodes[0], style)

    def _check_node_boxes(vths, toxes_a, what: str) -> None:
        """Axes shared across the node axis must fit every node's box."""
        for node in nodes[1:]:
            tech = node_technology(node, style)
            for value in vths:
                if not tech.vth_min <= value <= tech.vth_max:
                    raise ValidationError(
                        f"{what}: Vth {value:g} V is outside the {node} nm "
                        f"design box [{tech.vth_min:g}, {tech.vth_max:g}] V"
                    )
            for value in toxes_a:
                if not (tech.tox_min_a - 1e-9 <= value
                        <= tech.tox_max_a + 1e-9):
                    raise ValidationError(
                        f"{what}: Tox {value:g} A is outside the {node} nm "
                        f"design box [{tech.tox_min_a:g}, "
                        f"{tech.tox_max_a:g}] A"
                    )

    raw_calibration = _require_object(
        body.get("calibration", {}), "campaign.calibration"
    )
    _reject_unknown_keys(raw_calibration, ("n_accesses", "seed"),
                         "campaign.calibration")
    n_accesses = _integer(raw_calibration, "n_accesses",
                          "campaign.calibration", default=300_000,
                          minimum=1_000)
    if n_accesses > MAX_TRACE_ACCESSES:
        raise ValidationError(
            f"campaign.calibration.n_accesses = {n_accesses} exceeds the "
            f"limit of {MAX_TRACE_ACCESSES}",
            status=413,
        )
    calibration = CampaignCalibration(
        n_accesses=n_accesses,
        seed=_integer(raw_calibration, "seed", "campaign.calibration",
                      default=1, minimum=0, maximum=2**31 - 1),
    )

    matrix = None
    if "matrix" in body:
        raw = _require_object(body["matrix"], "campaign.matrix")
        _reject_unknown_keys(
            raw, ("l1_sizes_kb", "l1_assocs", "l2_sizes_kb", "l2_assocs"),
            "campaign.matrix"
        )
        l1_sizes, l1_assocs, l2_sizes, l2_assocs = _campaign_shape_axes(
            raw, "campaign.matrix"
        )
        matrix = MatrixBlock(
            l1_sizes_kb=l1_sizes, l1_assocs=l1_assocs,
            l2_sizes_kb=l2_sizes, l2_assocs=l2_assocs,
        )

    amat = None
    if "amat" in body:
        raw = _require_object(body["amat"], "campaign.amat")
        _reject_unknown_keys(
            raw, ("l1_sizes_kb", "l1_assocs", "l2_sizes_kb", "l2_assocs",
                  "l1_knobs", "l2_knobs", "memory_latency_ps"),
            "campaign.amat"
        )
        l1_sizes, l1_assocs, l2_sizes, l2_assocs = _campaign_shape_axes(
            raw, "campaign.amat"
        )
        amat = AmatBlock(
            l1_sizes_kb=l1_sizes, l1_assocs=l1_assocs,
            l2_sizes_kb=l2_sizes, l2_assocs=l2_assocs,
            # None = "each node's own default knobs" (resolved per node
            # by the planner); explicit knobs are shared by every node
            # and must therefore fit every node's box.
            l1_knobs=_knobs(raw, "l1_knobs", "campaign.amat", None,
                            technology=lead_tech),
            l2_knobs=_knobs(raw, "l2_knobs", "campaign.amat", None,
                            technology=lead_tech),
            memory_latency_ps=(
                _number(raw, "memory_latency_ps", "campaign.amat",
                        minimum=1.0, maximum=1e7)
                if "memory_latency_ps" in raw
                else None
            ),
        )
        for label, point in (("l1_knobs", amat.l1_knobs),
                             ("l2_knobs", amat.l2_knobs)):
            if point is not None:
                _check_node_boxes((point.vth,), (point.tox_angstrom,),
                                  f"campaign.amat.{label}")

    raw_sweeps = body.get("sweeps", [])
    if not isinstance(raw_sweeps, list) or len(raw_sweeps) > 64:
        raise ValidationError(
            "campaign.sweeps must be a list of at most 64 sweep blocks"
        )
    sweeps = []
    for index, raw in enumerate(raw_sweeps):
        if isinstance(raw, dict) and (
            "node" in raw or "scaling_style" in raw
        ):
            raise ValidationError(
                f"campaign.sweeps[{index}]: the technology axis is set at "
                f"the campaign level ('nodes'/'scaling_style'), not per "
                f"sweep block"
            )
        if isinstance(raw, dict):
            # Parse against the lead node's box; the remaining nodes are
            # checked below so every listed node can run the same axes.
            raw = dict(raw)
            raw["node"] = nodes[0]
            raw["scaling_style"] = style
        try:
            request = parse_sweep(raw)
        except ValidationError as error:
            raise ValidationError(
                f"campaign.sweeps[{index}]: {error}", status=error.status
            )
        _check_node_boxes(request.vths, request.toxes_angstrom,
                          f"campaign.sweeps[{index}]")
        sweeps.append(SweepBlock(
            config=request.config,
            vths=request.vths,
            toxes_angstrom=request.toxes_angstrom,
            components=request.components,
        ))

    optimize = None
    if "optimize" in body:
        raw = _require_object(body["optimize"], "campaign.optimize")
        _reject_unknown_keys(
            raw, ("caches", "schemes", "target_ps", "vth", "tox"),
            "campaign.optimize"
        )
        raw_caches = raw.get("caches")
        if not isinstance(raw_caches, list) or not raw_caches \
                or len(raw_caches) > 16:
            raise ValidationError(
                "campaign.optimize.caches must be a list of 1..16 cache "
                "configurations"
            )
        configs = tuple(
            _cache_config({"cache": entry},
                          f"campaign.optimize.caches[{index}]")
            for index, entry in enumerate(raw_caches)
        )
        raw_schemes = raw.get("schemes", ["1", "2", "3"])
        if not isinstance(raw_schemes, list) or not raw_schemes:
            raise ValidationError(
                "campaign.optimize.schemes must be a non-empty list of "
                "scheme codes"
            )
        schemes = []
        for raw_scheme in raw_schemes:
            code = str(raw_scheme)
            if code not in SCHEMES:
                raise ValidationError(
                    f"unknown scheme {raw_scheme!r} in "
                    f"campaign.optimize.schemes; expected one of "
                    f"{sorted(SCHEMES)}"
                )
            if code in schemes:
                raise ValidationError(
                    f"campaign.optimize.schemes has duplicate scheme "
                    f"{code!r}"
                )
            schemes.append(code)
        raw_targets = raw.get("target_ps")
        if raw_targets is None:
            raise ValidationError(
                "campaign.optimize requires 'target_ps' (a number or a "
                "list of numbers)"
            )
        if not isinstance(raw_targets, list):
            raw_targets = [raw_targets]
        if not raw_targets or len(raw_targets) > 16:
            raise ValidationError(
                "campaign.optimize.target_ps must be 1..16 delay targets"
            )
        targets = tuple(
            _number({"target_ps": value}, "target_ps",
                    f"campaign.optimize.target_ps[{index}]",
                    minimum=1.0, maximum=1e6)
            for index, value in enumerate(raw_targets)
        )
        vths = _axis(raw, "vth", "campaign.optimize", lead_tech.vth_min,
                     lead_tech.vth_max, "V")
        toxes = _axis(raw, "tox", "campaign.optimize", lead_tech.tox_min_a,
                      lead_tech.tox_max_a, "A")
        if (vths is None) != (toxes is None):
            raise ValidationError(
                "campaign.optimize needs either both 'vth' and 'tox' axes "
                "or neither (the default design grid)"
            )
        if vths is not None:
            _check_grid_budget(vths, toxes, "campaign.optimize")
            _check_node_boxes(vths, toxes, "campaign.optimize")
        optimize = OptimizeBlock(
            configs=configs, schemes=tuple(schemes), targets_ps=targets,
            vths=vths, toxes_angstrom=toxes,
        )

    constraints = CampaignConstraints()
    if "constraints" in body:
        raw = _require_object(body["constraints"], "campaign.constraints")
        _reject_unknown_keys(raw, ("max_amat_ps", "max_leakage_mw"),
                             "campaign.constraints")
        constraints = CampaignConstraints(
            max_amat_ps=(
                _number(raw, "max_amat_ps", "campaign.constraints",
                        minimum=1.0, maximum=1e7)
                if "max_amat_ps" in raw else None
            ),
            max_leakage_mw=(
                _number(raw, "max_leakage_mw", "campaign.constraints",
                        minimum=0.0, maximum=1e6)
                if "max_leakage_mw" in raw else None
            ),
        )
        if constraints.max_amat_ps is not None \
                or constraints.max_leakage_mw is not None:
            if amat is None:
                raise ValidationError(
                    "campaign.constraints only applies to an 'amat' block"
                )

    if matrix is None and amat is None and not sweeps and optimize is None:
        raise ValidationError(
            "campaign needs at least one of 'matrix', 'amat', 'sweeps' or "
            "'optimize'"
        )

    # -- expansion budget: per block, then the campaign total --------------
    n_workloads, n_policies = len(workloads), len(policies)
    block_counts = []
    if matrix is not None or amat is not None:
        block_counts.append(("profile", n_workloads * n_policies))
    if matrix is not None:
        shape_points = (
            len(matrix.l1_sizes_kb) * len(matrix.l1_assocs)
            + len(matrix.l2_sizes_kb) * len(matrix.l2_assocs)
        )
        count = _check_expansion_budget(
            ((n_workloads, "workloads"), (n_policies, "policies"),
             (shape_points, "(level, size, assoc) points")),
            limit, "campaign.matrix", verb="expands to",
            unit_label="units", status=400,
        )
        block_counts.append(("matrix", count))
    n_nodes = len(nodes)
    if amat is not None:
        count = _check_expansion_budget(
            ((n_workloads, "workloads"), (n_policies, "policies"),
             (n_nodes, "nodes"),
             (len(amat.l1_sizes_kb), "l1_sizes_kb"),
             (len(amat.l1_assocs), "l1_assocs"),
             (len(amat.l2_sizes_kb), "l2_sizes_kb"),
             (len(amat.l2_assocs), "l2_assocs")),
            limit, "campaign.amat", verb="expands to",
            unit_label="units", status=400,
        )
        block_counts.append(("amat", count))
    if sweeps:
        count = _check_expansion_budget(
            ((len(sweeps), "sweep blocks"), (n_nodes, "nodes")),
            limit, "campaign.sweeps", verb="expands to",
            unit_label="units", status=400,
        )
        block_counts.append(("sweeps", count))
    if optimize is not None:
        count = _check_expansion_budget(
            ((len(optimize.configs), "caches"),
             (len(optimize.schemes), "schemes"),
             (len(optimize.targets_ps), "delay targets"),
             (n_nodes, "nodes")),
            limit, "campaign.optimize", verb="expands to",
            unit_label="units", status=400,
        )
        block_counts.append(("optimize", count))
    total = sum(count for _, count in block_counts)
    if total > limit:
        parts = " + ".join(
            f"{count} {label}" for label, count in block_counts
        )
        raise ValidationError(
            f"campaign expands to {total} units ({parts}); the limit is "
            f"{limit}",
            status=400,
        )

    return CampaignSpec(
        name=name,
        workloads=tuple(workloads),
        policies=tuple(policies),
        calibration=calibration,
        matrix=matrix,
        amat=amat,
        sweeps=tuple(sweeps),
        optimize=optimize,
        constraints=constraints,
        nodes=tuple(nodes),
        scaling_style=style,
    )
