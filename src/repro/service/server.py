"""The batched sweep/calibration daemon: ``python -m repro serve``.

A stdlib-only (``http.server`` + ``json``) long-running process that
amortises the library's expensive state across requests: the component
evaluation-table cache, the calibration disk cache, and the constructed
:class:`~repro.cache.cache_model.CacheModel` objects all live for the
process lifetime and are shared — thread-safely — by every request.

Endpoints (see ``docs/SERVICE.md`` for the full reference):

========================  ====================================================
``GET  /healthz``         liveness + uptime
``GET  /metrics``         counters / gauges / latency histograms (JSON)
``POST /v1/sweep``        leakage/delay/energy grids, batched + coalesced
``POST /v1/optimize``     Section 4 assignment optimisation for a scheme
``POST /v1/amat``         two-level AMAT/energy against calibrated miss models
``POST /v1/calibrate``    async trace-driven calibration -> job id
``GET  /v1/jobs/<id>``    job status / result
``DELETE /v1/jobs/<id>``  cancel a job
========================  ====================================================

Every request runs on its own thread (``ThreadingHTTPServer``); errors
are answered with the structured envelope from
:func:`repro.service.schemas.error_envelope` and can never take the
daemon down.  SIGTERM/SIGINT shut the listener down gracefully and drain
or cancel in-flight calibration jobs before the process exits.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro import units
from repro.errors import (
    InfeasibleConstraintError,
    ReproError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.archsim.amat import amat_two_level
from repro.archsim.missmodel import (
    blended_miss_model,
    calibrated_miss_model,
    measure_miss_model,
)
from repro.archsim.workloads import WorkloadSpec
from repro.cache.cache_model import CacheModel
from repro.cache.config import CacheConfig, l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.optimize.single_cache import minimize_leakage
from repro.optimize.space import DesignSpace
from repro.perf import cache_info, disk_cache_info

from repro.service import schemas
from repro.service.batching import SweepBatcher, slice_grid
from repro.service.jobs import JobManager
from repro.service.metrics import MetricsRegistry

#: Largest request body the daemon will read (bytes).
MAX_BODY_BYTES = 2 * 1024 * 1024

#: Oversized bodies up to this size are read and discarded so the client
#: receives its 413 on an intact connection; anything larger gets the
#: connection dropped instead of a multi-gigabyte drain.
MAX_DRAIN_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8023
    batch_window_seconds: float = 0.005
    job_workers: int = 2
    job_queue: int = 16
    job_timeout_seconds: float = 600.0
    cache_dir: Optional[str] = None
    quiet: bool = True


def _calibration_task(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    estimator: str,
    engine: str,
    policy: str,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    cache_dir: Optional[str],
) -> dict:
    """Run one calibration on a pool worker (module-level: picklable)."""
    model = measure_miss_model(
        spec,
        n_accesses=n_accesses,
        seed=seed,
        l1_grid_kb=l1_grid_kb,
        l2_grid_kb=l2_grid_kb,
        cache_dir=cache_dir,
        estimator=estimator,
        engine=engine,
        policy=policy,
    )
    return {
        "workload": model.workload,
        "estimator": estimator,
        "engine": engine,
        "policy": policy,
        "n_accesses": n_accesses,
        "seed": seed,
        "l1_curve": [[size, rate] for size, rate in model.l1_curve],
        "l2_curve": [[size, rate] for size, rate in model.l2_curve],
    }


def _grid_to_lists(grid) -> list:
    return [[float(value) for value in row] for row in grid]


class ReproService:
    """The transport-independent core: validated request -> response dict.

    The HTTP handler below is a thin shell over :meth:`handle`; tests can
    drive this object directly without opening a socket.
    """

    MAX_MODELS = 32

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.started_at = time.time()
        self.metrics = MetricsRegistry()
        self.batcher = SweepBatcher(
            self.metrics, window_seconds=config.batch_window_seconds
        )
        self.jobs = JobManager(
            max_workers=config.job_workers,
            max_queue=config.job_queue,
            timeout_seconds=config.job_timeout_seconds,
            metrics=self.metrics,
        )
        self._models: "OrderedDict[str, CacheModel]" = OrderedDict()
        self._models_lock = threading.Lock()
        self.metrics.register_gauge(
            "uptime_seconds", lambda: time.time() - self.started_at
        )
        self.metrics.register_gauge(
            "table_cache", lambda: vars(cache_info())
        )
        self.metrics.register_gauge(
            "disk_cache", lambda: vars(disk_cache_info())
        )

    # -- shared model state ------------------------------------------------

    def _model_for(self, config: CacheConfig) -> Tuple[str, CacheModel]:
        """Return (structure key, shared CacheModel) for a validated config.

        The key deliberately excludes ``name`` so differently-labelled
        requests for the same structure share one model *and* one batch.
        """
        key = repr(
            (
                config.size_bytes,
                config.block_bytes,
                config.associativity,
                config.output_bits,
            )
        )
        with self._models_lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                return key, model
        # Build outside the lock (construction sizes the whole circuit
        # substrate); worst case two threads build and one wins.
        model = CacheModel(config)
        with self._models_lock:
            incumbent = self._models.get(key)
            if incumbent is not None:
                return key, incumbent
            self._models[key] = model
            while len(self._models) > self.MAX_MODELS:
                self._models.popitem(last=False)
        return key, model

    # -- endpoint implementations ------------------------------------------

    def handle_sweep(self, body) -> Tuple[int, dict]:
        request = schemas.parse_sweep(body)
        key, model = self._model_for(request.config)
        tables, space = self.batcher.tables_for(
            key, model, request.vths, request.toxes_angstrom
        )
        components = {}
        for name in request.components:
            sliced = slice_grid(
                tables, space, request.vths, request.toxes_angstrom, name
            )
            components[name] = {
                "delay_ps": _grid_to_lists(units.to_ps(sliced["delay"])),
                "leakage_mw": _grid_to_lists(
                    units.to_mw(sliced["leakage"])
                ),
                "energy_pj": _grid_to_lists(units.to_pj(sliced["energy"])),
            }
        return 200, {
            "cache": request.config.name,
            "vth": list(request.vths),
            "tox_angstrom": list(request.toxes_angstrom),
            "components": components,
        }

    def handle_optimize(self, body) -> Tuple[int, dict]:
        request = schemas.parse_optimize(body)
        _, model = self._model_for(request.config)
        space = None
        if request.vths is not None:
            space = DesignSpace(
                vth_values=request.vths,
                tox_values_angstrom=request.toxes_angstrom,
            )
        result = minimize_leakage(
            model, request.scheme, request.max_access_time, space=space
        )
        return 200, {
            "cache": request.config.name,
            "scheme": result.scheme.paper_name,
            "target_ps": units.to_ps(request.max_access_time),
            "access_ps": units.to_ps(result.access_time),
            "slack_ps": units.to_ps(result.slack),
            "leakage_mw": units.to_mw(result.leakage_power),
            "assignment": {
                name: {"vth": point.vth,
                       "tox_angstrom": point.tox_angstrom}
                for name, point in result.assignment.components()
            },
        }

    def handle_amat(self, body) -> Tuple[int, dict]:
        request = schemas.parse_amat(body)
        if request.workload is not None:
            miss_model = calibrated_miss_model(request.workload,
                                               request.policy)
        else:
            miss_model = blended_miss_model(dict(request.blend_weights),
                                            request.policy)
        l1_model = CacheModel(l1_config(request.l1_size_kb))
        l2_model = CacheModel(l2_config(request.l2_size_kb))
        l1_eval = l1_model.uniform(request.l1_knobs)
        l2_eval = l2_model.uniform(request.l2_knobs)
        memory = (
            MainMemoryModel(latency=request.memory_latency)
            if request.memory_latency is not None
            else MainMemoryModel()
        )
        m1 = miss_model.l1_miss_rate(l1_model.config.size_bytes)
        m2 = miss_model.l2_local_miss_rate(l2_model.config.size_bytes)
        amat = amat_two_level(
            l1_eval.access_time, m1, l2_eval.access_time, m2, memory.latency
        )
        energy = l1_eval.dynamic_read_energy + m1 * (
            l2_eval.dynamic_read_energy + m2 * memory.energy_per_access
        )
        return 200, {
            "workload": miss_model.workload,
            "policy": request.policy,
            "amat_ps": units.to_ps(amat),
            "energy_per_access_pj": units.to_pj(energy),
            "total_leakage_mw": units.to_mw(
                l1_eval.leakage_power + l2_eval.leakage_power
            ),
            "memory_latency_ps": units.to_ps(memory.latency),
            "l1": {
                "size_kb": request.l1_size_kb,
                "access_ps": units.to_ps(l1_eval.access_time),
                "leakage_mw": units.to_mw(l1_eval.leakage_power),
                "miss_rate": m1,
            },
            "l2": {
                "size_kb": request.l2_size_kb,
                "access_ps": units.to_ps(l2_eval.access_time),
                "leakage_mw": units.to_mw(l2_eval.leakage_power),
                "local_miss_rate": m2,
            },
        }

    def handle_calibrate(self, body) -> Tuple[int, dict]:
        request = schemas.parse_calibrate(body)
        job_id = self.jobs.submit(
            "calibrate",
            _calibration_task,
            request.spec,
            request.n_accesses,
            request.seed,
            request.estimator,
            request.engine,
            request.policy,
            request.l1_grid_kb,
            request.l2_grid_kb,
            self.config.cache_dir,
            detail={
                "workload": request.spec.name,
                "estimator": request.estimator,
                "engine": request.engine,
                "policy": request.policy,
            },
        )
        return 202, {
            "job_id": job_id,
            "status": "queued",
            "poll": f"/v1/jobs/{job_id}",
        }

    def handle_healthz(self) -> Tuple[int, dict]:
        return 200, {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
        }

    def handle_metrics(self) -> Tuple[int, dict]:
        return 200, self.metrics.snapshot()

    # -- dispatch ----------------------------------------------------------

    def handle(self, method: str, path: str, body) -> Tuple[int, dict]:
        """Route one request; always returns (status, JSON-able payload)."""
        endpoint = "unknown"
        started = time.perf_counter()
        try:
            if path == "/healthz" and method == "GET":
                endpoint = "healthz"
                return self.handle_healthz()
            if path == "/metrics" and method == "GET":
                endpoint = "metrics"
                return self.handle_metrics()
            if path == "/v1/sweep" and method == "POST":
                endpoint = "sweep"
                return self.handle_sweep(body)
            if path == "/v1/optimize" and method == "POST":
                endpoint = "optimize"
                return self.handle_optimize(body)
            if path == "/v1/amat" and method == "POST":
                endpoint = "amat"
                return self.handle_amat(body)
            if path == "/v1/calibrate" and method == "POST":
                endpoint = "calibrate"
                return self.handle_calibrate(body)
            if path.startswith("/v1/jobs/"):
                endpoint = "jobs"
                job_id = path[len("/v1/jobs/"):]
                if method == "GET":
                    return 200, self.jobs.get(job_id)
                if method == "DELETE":
                    return 200, self.jobs.cancel(job_id)
                raise ValidationError(
                    f"method {method} not allowed on {path}", status=405
                )
            known = (
                "/healthz", "/metrics", "/v1/sweep", "/v1/optimize",
                "/v1/amat", "/v1/calibrate",
            )
            if path in known:
                raise ValidationError(
                    f"method {method} not allowed on {path}", status=405
                )
            raise ValidationError(f"no such endpoint: {path}", status=404)
        except ValidationError as error:
            return self._error(endpoint, error.status, error)
        except InfeasibleConstraintError as error:
            status, payload = self._error(endpoint, 422, error)
            payload["error"]["best_achievable_ps"] = units.to_ps(
                error.best_achievable
            )
            return status, payload
        except ServiceUnavailableError as error:
            return self._error(endpoint, 503, error)
        except ReproError as error:
            return self._error(endpoint, 400, error)
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            return self._error(endpoint, 500, error)
        finally:
            self.metrics.increment(f"requests.{endpoint}")
            self.metrics.observe(
                f"latency.{endpoint}_seconds",
                time.perf_counter() - started,
            )

    def _error(self, endpoint: str, status: int, error: BaseException):
        self.metrics.increment(f"errors.{status}")
        return status, schemas.error_envelope(
            type(error).__name__, str(error), status
        )

    def shutdown(self) -> dict:
        """Drain background work; returns the job-drain summary."""
        return self.jobs.shutdown()


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shell over :meth:`ReproService.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # body write waits on the peer's delayed ACK (~40 ms per request).
    disable_nagle_algorithm = True

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.service.config.quiet:
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_body(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length) if length is not None else 0
        except ValueError:
            raise ValidationError("Content-Length must be an integer")
        if length > MAX_BODY_BYTES:
            if length <= MAX_DRAIN_BYTES:
                # Drain so the client can finish sending and read the 413
                # instead of hitting a broken pipe mid-request.
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            else:
                self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ValidationError(f"malformed JSON body: {error}")

    def _dispatch(self, method: str) -> None:
        try:
            body = self._read_body()
        except ValidationError as error:
            self.service.metrics.increment(f"errors.{error.status}")
            self._respond(
                error.status,
                schemas.error_envelope(
                    type(error).__name__, str(error), error.status
                ),
            )
            return
        status, payload = self.service.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ReproService`."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig) -> None:
        self.service = ReproService(config)
        super().__init__((config.host, config.port), _Handler)

    @property
    def bound_port(self) -> int:
        return self.server_address[1]


def create_server(config: Optional[ServiceConfig] = None) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port) without serving."""
    return ServiceHTTPServer(config if config is not None else ServiceConfig())


def run(
    config: Optional[ServiceConfig] = None,
    port_file: Optional[str] = None,
    install_signal_handlers: bool = True,
) -> int:
    """Serve until SIGTERM/SIGINT; drain jobs; return the exit code."""
    server = create_server(config)
    host, port = server.server_address[0], server.bound_port
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(f"{port}\n")
    print(f"repro service listening on http://{host}:{port}", flush=True)

    def _request_shutdown(signum, frame):
        print(
            f"received signal {signum}; shutting down gracefully",
            flush=True,
        )
        # shutdown() must not run on the serve_forever thread (it waits
        # for the serve loop, which is paused inside this handler).
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        summary = server.service.shutdown()
        server.server_close()
        print(
            f"shutdown complete: {summary['drained']} job(s) drained, "
            f"{summary['cancelled']} cancelled",
            flush=True,
        )
    return 0
