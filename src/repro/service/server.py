"""The batched sweep/calibration daemon: ``python -m repro serve``.

A stdlib-only (``http.server`` + ``json``) long-running process that
amortises the library's expensive state across requests: the component
evaluation-table cache, the calibration disk cache, and the constructed
:class:`~repro.cache.cache_model.CacheModel` objects all live for the
process lifetime and are shared — thread-safely — by every request.

Endpoints (see ``docs/SERVICE.md`` for the full reference):

========================  ====================================================
``GET  /healthz``         liveness + uptime
``GET  /metrics``         counters / gauges / latency histograms (JSON)
``POST /v1/sweep``        leakage/delay/energy grids, batched + coalesced
``POST /v1/optimize``     Section 4 assignment optimisation for a scheme
``POST /v1/amat``         two-level AMAT/energy against calibrated miss models
``POST /v1/calibrate``    async trace-driven calibration -> job id
``GET  /v1/jobs/<id>``    job status / result (``?wait=<s>`` long-polls)
``DELETE /v1/jobs/<id>``  cancel a job
``POST /v1/campaigns``    declarative DSE campaign -> campaign id
``GET  /v1/campaigns/<id>``  progress + results (``?wait=``, ``?results=0``)
``DELETE /v1/campaigns/<id>``  cancel a campaign and its child jobs
========================  ====================================================

Every request runs on its own thread (``ThreadingHTTPServer``); errors
are answered with the structured envelope from
:func:`repro.service.schemas.error_envelope` and can never take the
daemon down.  SIGTERM/SIGINT shut the listener down gracefully and drain
or cancel in-flight calibration jobs before the process exits.
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import sys
import threading
import time
import urllib.parse
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro import units
from repro.errors import (
    InfeasibleConstraintError,
    ReproError,
    ServiceUnavailableError,
    ValidationError,
)
from repro.archsim.amat import amat_two_level
from repro.archsim.missmodel import (
    ESTIMATOR_CALIBRATION_ACCESSES,
    REFERENCE_L1_ASSOC,
    REFERENCE_L2_ASSOC,
    MissRateModel,
    blended_miss_model,
    calibrated_miss_model,
    calibrated_miss_surface,
    measure_miss_model,
    peek_miss_model,
)
from repro.archsim.workloads import STANDARD_WORKLOADS, WorkloadSpec
from repro.cache.cache_model import CacheModel
from repro.campaign.runner import CampaignManager
from repro.cache.config import CacheConfig, l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.optimize.single_cache import minimize_leakage
from repro.optimize.space import DesignSpace
from repro.perf import cache_info, disk_cache_info, profile_store_info
from repro.perf.profile_store import get_store
from repro.technology.nodes import node_technology

from repro.service import schemas
from repro.service.batching import SweepBatcher, slice_grid
from repro.service.cluster import WorkerMetricsBoard, cluster_view
from repro.service.jobs import JobManager
from repro.service.metrics import MetricsRegistry

#: Largest request body the daemon will read (bytes).
MAX_BODY_BYTES = 2 * 1024 * 1024

#: Oversized bodies up to this size are read and discarded so the client
#: receives its 413 on an intact connection; anything larger gets the
#: connection dropped instead of a multi-gigabyte drain.
MAX_DRAIN_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8023
    batch_window_seconds: float = 0.005
    job_workers: int = 2
    job_queue: int = 16
    job_timeout_seconds: float = 600.0
    cache_dir: Optional[str] = None
    quiet: bool = True
    #: Stable label for this worker in a multi-worker deployment (set by
    #: the supervisor, e.g. ``"w0"``); ``None`` means single-process.
    worker_id: Optional[str] = None
    #: Identical repeated ``POST /v1/sweep`` bodies are answered from an
    #: in-memory LRU of finished 200 responses of this many entries
    #: (0 disables).  Metrics still count every request.
    sweep_cache_entries: int = 256
    #: Cadence at which a worker publishes its metrics snapshot to the
    #: shared cluster board (only when ``worker_id`` is set).
    metrics_flush_seconds: float = 0.25
    #: Workload names whose dense profile surfaces a background thread
    #: computes at startup, so the first /v1/calibrate and /v1/amat for
    #: them is already a warm slice.
    warm_profiles: Tuple[str, ...] = ()
    #: Ceiling on the units one campaign may expand to (per-instance
    #: tightening of :data:`repro.service.schemas.MAX_CAMPAIGN_UNITS`).
    campaign_max_units: int = schemas.MAX_CAMPAIGN_UNITS
    #: Concurrent heavy campaign units in flight on the job pool.
    campaign_fanout: int = 4
    #: Extra attempts a failing campaign unit gets before it is failed.
    campaign_unit_retries: int = 1


def _calibration_result(
    model: MissRateModel,
    n_accesses: int,
    seed: int,
    estimator: str,
    engine: str,
    policy: str,
) -> dict:
    """The /v1/calibrate result payload for one measured/served model."""
    result = {
        "workload": model.workload,
        "estimator": estimator,
        "engine": engine,
        "policy": policy,
        "n_accesses": n_accesses,
        "seed": seed,
        "l1_curve": [[size, rate] for size, rate in model.l1_curve],
        "l2_curve": [[size, rate] for size, rate in model.l2_curve],
    }
    if model.l1_assoc_curves:
        result["l1_assoc_curves"] = [
            [assoc, [[size, rate] for size, rate in curve]]
            for assoc, curve in model.l1_assoc_curves
        ]
    if model.l2_assoc_curves:
        result["l2_assoc_curves"] = [
            [assoc, [[size, rate] for size, rate in curve]]
            for assoc, curve in model.l2_assoc_curves
        ]
    return result


def _calibration_task(
    spec: WorkloadSpec,
    n_accesses: int,
    seed: int,
    estimator: str,
    engine: str,
    policy: str,
    l1_grid_kb: Sequence[int],
    l2_grid_kb: Sequence[int],
    cache_dir: Optional[str],
    l1_assocs: Optional[Sequence[int]] = None,
    l2_assocs: Optional[Sequence[int]] = None,
) -> dict:
    """Run one calibration on a pool worker (module-level: picklable).

    ``profile_store="always"``: a store-eligible request computes the
    workload's whole dense surface in one pass and persists it to the
    shared disk tier, so the daemon answers every later sub-grid
    synchronously without touching this pool again.
    """
    model = measure_miss_model(
        spec,
        n_accesses=n_accesses,
        seed=seed,
        l1_grid_kb=l1_grid_kb,
        l2_grid_kb=l2_grid_kb,
        cache_dir=cache_dir,
        estimator=estimator,
        engine=engine,
        policy=policy,
        l1_assocs=l1_assocs,
        l2_assocs=l2_assocs,
        profile_store="always",
    )
    return _calibration_result(
        model, n_accesses, seed, estimator, engine, policy
    )


def _grid_to_lists(grid) -> list:
    return [[float(value) for value in row] for row in grid]


class ReproService:
    """The transport-independent core: validated request -> response dict.

    The HTTP handler below is a thin shell over :meth:`handle`; tests can
    drive this object directly without opening a socket.
    """

    MAX_MODELS = 32

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.started_at = time.time()
        self.metrics = MetricsRegistry()
        self.batcher = SweepBatcher(
            self.metrics, window_seconds=config.batch_window_seconds
        )
        # The worker label every shared-store record carries; a
        # single-process daemon is a cluster of one.  The label must be
        # stable across restarts: a pid-derived id would leave one
        # metrics-board record per past incarnation, and the cluster
        # view's merged totals would double-count them forever.
        self.worker_label = (
            config.worker_id
            if config.worker_id is not None
            else "standalone"
        )
        self.jobs = JobManager(
            max_workers=config.job_workers,
            max_queue=config.job_queue,
            timeout_seconds=config.job_timeout_seconds,
            metrics=self.metrics,
            cache_dir=config.cache_dir,
            worker_id=self.worker_label,
        )
        # Finished /v1/sweep responses keyed by their canonicalised
        # request body: under multi-tenant load the same few grids are
        # requested over and over, and a hit skips parsing, table
        # slicing, and unit conversion entirely.
        self._sweep_cache: "OrderedDict[str, Tuple[int, dict]]" = (
            OrderedDict()
        )
        self._sweep_cache_lock = threading.Lock()
        self._metrics_board = WorkerMetricsBoard(config.cache_dir)
        self._flusher_stop = threading.Event()
        if config.worker_id is not None:
            # Workers push their snapshot to the shared board so any
            # sibling can answer /metrics?scope=cluster for the fleet.
            threading.Thread(
                target=self._flush_metrics,
                name="repro-metrics-flusher",
                daemon=True,
            ).start()
        self._models: "OrderedDict[str, CacheModel]" = OrderedDict()
        self._models_lock = threading.Lock()
        self.campaigns = CampaignManager(
            jobs=self.jobs,
            metrics=self.metrics,
            cache_dir=config.cache_dir,
            model_for=lambda cache_config, node=65, scaling_style="itrs":
                self._model_for(cache_config, node, scaling_style)[1],
            max_inflight=config.campaign_fanout,
            unit_retries=config.campaign_unit_retries,
            # The recovery hook: lets any worker re-parse a persisted
            # campaign spec and adopt an orphan under its original id.
            spec_parser=lambda body: schemas.parse_campaign(
                body, max_units=config.campaign_max_units
            ),
            worker_id=self.worker_label,
        )
        self.metrics.register_gauge(
            "uptime_seconds", lambda: time.time() - self.started_at
        )
        self.metrics.register_gauge(
            "table_cache", lambda: vars(cache_info())
        )
        self.metrics.register_gauge(
            "disk_cache", lambda: vars(disk_cache_info())
        )
        self.metrics.register_gauge(
            "profile_store", lambda: vars(profile_store_info())
        )
        self.metrics.register_gauge(
            "profile_store.warm_workloads",
            lambda: len(get_store(self.config.cache_dir).warm_workloads()),
        )
        unknown = sorted(
            set(config.warm_profiles) - set(STANDARD_WORKLOADS)
        )
        if unknown:
            raise ValidationError(
                f"unknown warm_profiles workload(s) {unknown}; expected a "
                f"subset of {sorted(STANDARD_WORKLOADS)}"
            )
        self._warm_lock = threading.Lock()
        self._warm_state: Dict[str, str] = {
            name: "pending" for name in config.warm_profiles
        }
        if config.warm_profiles:
            threading.Thread(
                target=self._warm_profiles,
                name="repro-profile-warmer",
                daemon=True,
            ).start()

    def _flush_metrics(self) -> None:
        """Periodically publish this worker's snapshot (worker mode)."""
        interval = max(0.05, self.config.metrics_flush_seconds)
        while not self._flusher_stop.wait(interval):
            self._metrics_board.publish(
                self.worker_label, self.metrics.snapshot()
            )

    def _warm_profiles(self) -> None:
        """Compute configured workloads' surfaces (background, startup).

        Both trace lengths a warm daemon serves from: the /v1/calibrate
        default (300 k accesses) and the committed-table provenance
        /v1/amat surfaces read (2 M).  Failures are recorded, never
        raised — a bad warm leaves the daemon serving cold.
        """
        store = get_store(self.config.cache_dir)
        for name in self.config.warm_profiles:
            try:
                for n_accesses in (300_000, ESTIMATOR_CALIBRATION_ACCESSES):
                    store.surface(
                        STANDARD_WORKLOADS[name],
                        policy="lru",
                        n_accesses=n_accesses,
                        seed=1,
                    )
                verdict = "warm"
            except Exception as error:  # noqa: BLE001 - warming is advisory
                verdict = f"failed: {type(error).__name__}: {error}"
            with self._warm_lock:
                self._warm_state[name] = verdict

    # -- shared model state ------------------------------------------------

    def _model_for(
        self,
        config: CacheConfig,
        node: int = 65,
        scaling_style: str = "itrs",
    ) -> Tuple[str, CacheModel]:
        """Return (structure key, shared CacheModel) for a validated config.

        The key deliberately excludes ``name`` so differently-labelled
        requests for the same structure share one model *and* one batch —
        but it *must* include the technology identity: the same geometry
        at two nodes is two different circuits, and sharing a model (or
        a batch) across nodes would serve one node's numbers for the
        other.
        """
        key = repr(
            (
                config.size_bytes,
                config.block_bytes,
                config.associativity,
                config.output_bits,
                node,
                scaling_style,
            )
        )
        with self._models_lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                return key, model
        # Build outside the lock (construction sizes the whole circuit
        # substrate); worst case two threads build and one wins.
        model = CacheModel(
            config, technology=node_technology(node, scaling_style)
        )
        with self._models_lock:
            incumbent = self._models.get(key)
            if incumbent is not None:
                return key, incumbent
            self._models[key] = model
            while len(self._models) > self.MAX_MODELS:
                self._models.popitem(last=False)
        return key, model

    # -- endpoint implementations ------------------------------------------

    def handle_sweep(self, body) -> Tuple[int, dict]:
        request = schemas.parse_sweep(body)
        key, model = self._model_for(
            request.config, request.node, request.scaling_style
        )
        tables, space = self.batcher.tables_for(
            key, model, request.vths, request.toxes_angstrom
        )
        components = {}
        for name in request.components:
            sliced = slice_grid(
                tables, space, request.vths, request.toxes_angstrom, name
            )
            components[name] = {
                "delay_ps": _grid_to_lists(units.to_ps(sliced["delay"])),
                "leakage_mw": _grid_to_lists(
                    units.to_mw(sliced["leakage"])
                ),
                "energy_pj": _grid_to_lists(units.to_pj(sliced["energy"])),
            }
        return 200, {
            "cache": request.config.name,
            "node": request.node,
            "scaling_style": request.scaling_style,
            "vth": list(request.vths),
            "tox_angstrom": list(request.toxes_angstrom),
            "components": components,
        }

    def handle_optimize(self, body) -> Tuple[int, dict]:
        request = schemas.parse_optimize(body)
        _, model = self._model_for(
            request.config, request.node, request.scaling_style
        )
        space = None
        if request.vths is not None:
            space = DesignSpace.for_technology(
                model.technology,
                vth_values=request.vths,
                tox_values_angstrom=request.toxes_angstrom,
            )
        result = minimize_leakage(
            model, request.scheme, request.max_access_time, space=space
        )
        return 200, {
            "cache": request.config.name,
            "node": request.node,
            "scaling_style": request.scaling_style,
            "scheme": result.scheme.paper_name,
            "target_ps": units.to_ps(request.max_access_time),
            "access_ps": units.to_ps(result.access_time),
            "slack_ps": units.to_ps(result.slack),
            "leakage_mw": units.to_mw(result.leakage_power),
            "assignment": {
                name: {"vth": point.vth,
                       "tox_angstrom": point.tox_angstrom}
                for name, point in result.assignment.components()
            },
        }

    def handle_amat(self, body) -> Tuple[int, dict]:
        request = schemas.parse_amat(body)
        l1_assoc = (
            request.l1_assoc
            if request.l1_assoc is not None
            else REFERENCE_L1_ASSOC
        )
        l2_assoc = (
            request.l2_assoc
            if request.l2_assoc is not None
            else REFERENCE_L2_ASSOC
        )
        # Non-reference shapes need the associativity-complete surface
        # models; reference requests keep the committed tables.
        need_surface = (
            l1_assoc != REFERENCE_L1_ASSOC or l2_assoc != REFERENCE_L2_ASSOC
        )
        if request.workload is not None:
            miss_model = (
                calibrated_miss_surface(
                    request.workload,
                    request.policy,
                    cache_dir=self.config.cache_dir,
                )
                if need_surface
                else calibrated_miss_model(request.workload, request.policy)
            )
        else:
            miss_model = blended_miss_model(
                dict(request.blend_weights),
                request.policy,
                surface=need_surface,
                cache_dir=self.config.cache_dir,
            )
        technology = node_technology(request.node, request.scaling_style)
        l1_model = CacheModel(
            l1_config(request.l1_size_kb, associativity=l1_assoc),
            technology=technology,
        )
        l2_model = CacheModel(
            l2_config(request.l2_size_kb, associativity=l2_assoc),
            technology=technology,
        )
        l1_eval = l1_model.uniform(request.l1_knobs)
        l2_eval = l2_model.uniform(request.l2_knobs)
        memory = (
            MainMemoryModel(latency=request.memory_latency)
            if request.memory_latency is not None
            else MainMemoryModel()
        )
        m1 = miss_model.l1_miss_rate(
            l1_model.config.size_bytes, associativity=request.l1_assoc
        )
        m2 = miss_model.l2_local_miss_rate(
            l2_model.config.size_bytes, associativity=request.l2_assoc
        )
        amat = amat_two_level(
            l1_eval.access_time, m1, l2_eval.access_time, m2, memory.latency
        )
        energy = l1_eval.dynamic_read_energy + m1 * (
            l2_eval.dynamic_read_energy + m2 * memory.energy_per_access
        )
        return 200, {
            "workload": miss_model.workload,
            "policy": request.policy,
            "node": request.node,
            "scaling_style": request.scaling_style,
            "amat_ps": units.to_ps(amat),
            "energy_per_access_pj": units.to_pj(energy),
            "total_leakage_mw": units.to_mw(
                l1_eval.leakage_power + l2_eval.leakage_power
            ),
            "memory_latency_ps": units.to_ps(memory.latency),
            "l1": {
                "size_kb": request.l1_size_kb,
                "associativity": l1_assoc,
                "access_ps": units.to_ps(l1_eval.access_time),
                "leakage_mw": units.to_mw(l1_eval.leakage_power),
                "miss_rate": m1,
            },
            "l2": {
                "size_kb": request.l2_size_kb,
                "associativity": l2_assoc,
                "access_ps": units.to_ps(l2_eval.access_time),
                "leakage_mw": units.to_mw(l2_eval.leakage_power),
                "local_miss_rate": m2,
            },
        }

    def handle_calibrate(self, body) -> Tuple[int, dict]:
        request = schemas.parse_calibrate(body)
        detail = {
            "workload": request.spec.name,
            "estimator": request.estimator,
            "engine": request.engine,
            "policy": request.policy,
        }
        # Serving tier first: an already-profiled workload (dense surface
        # resident, or the exact curves disk-cached) answers without a
        # single trace pass — the job is born done and the client's very
        # first poll (or this response) carries the result.
        model = peek_miss_model(
            request.spec,
            n_accesses=request.n_accesses,
            seed=request.seed,
            l1_grid_kb=request.l1_grid_kb,
            l2_grid_kb=request.l2_grid_kb,
            cache_dir=self.config.cache_dir,
            engine=request.engine,
            estimator=request.estimator,
            policy=request.policy,
            l1_assocs=request.l1_assocs,
            l2_assocs=request.l2_assocs,
        )
        if model is not None:
            self.metrics.increment("calibrate.profile_store_hits")
            result = _calibration_result(
                model,
                request.n_accesses,
                request.seed,
                request.estimator,
                request.engine,
                request.policy,
            )
            job_id = self.jobs.submit_completed(
                "calibrate",
                result,
                detail={**detail, "served_from": "profile_store"},
            )
            return 202, {
                "job_id": job_id,
                "status": "done",
                "poll": f"/v1/jobs/{job_id}",
            }
        self.metrics.increment("calibrate.profile_store_misses")
        job_id = self.jobs.submit(
            "calibrate",
            _calibration_task,
            request.spec,
            request.n_accesses,
            request.seed,
            request.estimator,
            request.engine,
            request.policy,
            request.l1_grid_kb,
            request.l2_grid_kb,
            self.config.cache_dir,
            request.l1_assocs,
            request.l2_assocs,
            detail={**detail, "served_from": "engine"},
        )
        return 202, {
            "job_id": job_id,
            "status": "queued",
            "poll": f"/v1/jobs/{job_id}",
        }

    def handle_healthz(self) -> Tuple[int, dict]:
        payload = {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
        }
        if self.config.warm_profiles:
            with self._warm_lock:
                state = dict(self._warm_state)
            payload["profile_store"] = {
                "warm_profiles": state,
                "warming": any(v == "pending" for v in state.values()),
            }
        return 200, payload

    def handle_metrics(self, query: Optional[dict] = None) -> Tuple[int, dict]:
        scope = (query or {}).get("scope", ["self"])[-1]
        if scope == "cluster":
            # Publish ourselves first (fresh), then merge every worker's
            # published record into one fleet view.
            snapshot = self.metrics.snapshot()
            self._metrics_board.publish(self.worker_label, snapshot)
            return 200, cluster_view(
                self._metrics_board, self.worker_label, snapshot
            )
        if scope != "self":
            raise ValidationError(
                f"scope must be 'self' or 'cluster', got {scope!r}"
            )
        payload = self.metrics.snapshot()
        payload["worker_id"] = self.worker_label
        return 200, payload

    # -- sweep response cache ----------------------------------------------

    @staticmethod
    def _sweep_cache_key(body) -> Optional[str]:
        try:
            return json.dumps(body, sort_keys=True)
        except (TypeError, ValueError):
            return None

    def _cached_sweep(self, body) -> Tuple[Optional[str], Optional[dict]]:
        """Look one sweep body up in the response cache."""
        if self.config.sweep_cache_entries <= 0:
            return None, None
        key = self._sweep_cache_key(body)
        if key is None:
            return None, None
        with self._sweep_cache_lock:
            hit = self._sweep_cache.get(key)
            if hit is None:
                return key, None
            self._sweep_cache.move_to_end(key)
        self.metrics.increment("sweep.response_cache_hits")
        return key, hit

    def _remember_sweep(self, key: Optional[str],
                        status: int, payload: dict) -> None:
        if key is None or status != 200:
            return
        with self._sweep_cache_lock:
            self._sweep_cache[key] = (status, payload)
            self._sweep_cache.move_to_end(key)
            while len(self._sweep_cache) > self.config.sweep_cache_entries:
                self._sweep_cache.popitem(last=False)

    # -- dispatch ----------------------------------------------------------

    def handle_campaign_submit(self, body) -> Tuple[int, dict]:
        spec = schemas.parse_campaign(
            body, max_units=self.config.campaign_max_units
        )
        snapshot = self.campaigns.submit(spec, spec_body=body)
        return 202, snapshot

    def handle(self, method: str, path: str, body) -> Tuple[int, dict]:
        """Route one request; always returns (status, JSON-able payload)."""
        endpoint = "unknown"
        started = time.perf_counter()
        path, _, query_string = path.partition("?")
        query = urllib.parse.parse_qs(query_string) if query_string else {}
        try:
            if path == "/healthz" and method == "GET":
                endpoint = "healthz"
                return self.handle_healthz()
            if path == "/metrics" and method == "GET":
                endpoint = "metrics"
                return self.handle_metrics(query)
            if path == "/v1/sweep" and method == "POST":
                endpoint = "sweep"
                key, cached = self._cached_sweep(body)
                if cached is not None:
                    return cached
                status, payload = self.handle_sweep(body)
                self._remember_sweep(key, status, payload)
                return status, payload
            if path == "/v1/optimize" and method == "POST":
                endpoint = "optimize"
                return self.handle_optimize(body)
            if path == "/v1/amat" and method == "POST":
                endpoint = "amat"
                return self.handle_amat(body)
            if path == "/v1/calibrate" and method == "POST":
                endpoint = "calibrate"
                return self.handle_calibrate(body)
            if path == "/v1/campaigns" and method == "POST":
                endpoint = "campaigns"
                return self.handle_campaign_submit(body)
            if path.startswith("/v1/campaigns/"):
                endpoint = "campaigns"
                campaign_id = path[len("/v1/campaigns/"):]
                if method == "GET":
                    wait = schemas.parse_wait(query, "campaigns")
                    results = schemas.parse_flag(
                        query, "results", "campaigns"
                    )
                    if wait > 0:
                        return 200, self.campaigns.wait(
                            campaign_id, wait, include_results=results
                        )
                    return 200, self.campaigns.get(
                        campaign_id, include_results=results
                    )
                if method == "DELETE":
                    return 200, self.campaigns.cancel(campaign_id)
                raise ValidationError(
                    f"method {method} not allowed on {path}", status=405
                )
            if path.startswith("/v1/jobs/"):
                endpoint = "jobs"
                job_id = path[len("/v1/jobs/"):]
                if method == "GET":
                    wait = schemas.parse_wait(query, "jobs")
                    if wait > 0:
                        return 200, self.jobs.wait_for(job_id, wait)
                    return 200, self.jobs.get(job_id)
                if method == "DELETE":
                    return 200, self.jobs.cancel(job_id)
                raise ValidationError(
                    f"method {method} not allowed on {path}", status=405
                )
            known = (
                "/healthz", "/metrics", "/v1/sweep", "/v1/optimize",
                "/v1/amat", "/v1/calibrate", "/v1/campaigns",
            )
            if path in known:
                raise ValidationError(
                    f"method {method} not allowed on {path}", status=405
                )
            raise ValidationError(f"no such endpoint: {path}", status=404)
        except ValidationError as error:
            return self._error(endpoint, error.status, error)
        except InfeasibleConstraintError as error:
            status, payload = self._error(endpoint, 422, error)
            payload["error"]["best_achievable_ps"] = units.to_ps(
                error.best_achievable
            )
            return status, payload
        except ServiceUnavailableError as error:
            return self._error(endpoint, 503, error)
        except ReproError as error:
            return self._error(endpoint, 400, error)
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            return self._error(endpoint, 500, error)
        finally:
            self.metrics.increment(f"requests.{endpoint}")
            self.metrics.observe(
                f"latency.{endpoint}_seconds",
                time.perf_counter() - started,
            )

    def _error(self, endpoint: str, status: int, error: BaseException):
        self.metrics.increment(f"errors.{status}")
        return status, schemas.error_envelope(
            type(error).__name__, str(error), status
        )

    def shutdown(self) -> dict:
        """Drain background work; returns the job-drain summary.

        Campaign coordinators stop first — they are the job submitters,
        so stopping them before the pool guarantees the drain below sees
        the final set of child jobs.
        """
        campaigns = self.campaigns.shutdown()
        summary = self.jobs.shutdown()
        summary["campaigns_cancelled"] = campaigns["cancelled"]
        self._flusher_stop.set()
        if self.config.worker_id is not None:
            # One final publish so the fleet view keeps this worker's
            # counters after it is gone (a drained worker's traffic
            # still happened).
            self._metrics_board.publish(
                self.worker_label, self.metrics.snapshot()
            )
        return summary


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shell over :meth:`ReproService.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"
    # Headers and body go out as separate writes; without TCP_NODELAY the
    # body write waits on the peer's delayed ACK (~40 ms per request).
    disable_nagle_algorithm = True

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.service.config.quiet:
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_body(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length) if length is not None else 0
        except ValueError:
            raise ValidationError("Content-Length must be an integer")
        if length > MAX_BODY_BYTES:
            if length <= MAX_DRAIN_BYTES:
                # Drain so the client can finish sending and read the 413
                # instead of hitting a broken pipe mid-request.
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            else:
                self.close_connection = True
            raise ValidationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ValidationError(f"malformed JSON body: {error}")

    def _dispatch(self, method: str) -> None:
        try:
            body = self._read_body()
        except ValidationError as error:
            self.service.metrics.increment(f"errors.{error.status}")
            self._respond(
                error.status,
                schemas.error_envelope(
                    type(error).__name__, str(error), error.status
                ),
            )
            return
        status, payload = self.service.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ReproService`.

    ``listen_socket`` lets a supervisor bind (and listen on) the socket
    once and hand each forked worker the inherited descriptor: the
    worker serves accepts off the shared socket — the kernel balances
    connections across workers — without ever binding itself.
    """

    daemon_threads = True

    def __init__(
        self,
        config: ServiceConfig,
        listen_socket: Optional[socket_module.socket] = None,
    ) -> None:
        self.service = ReproService(config)
        if listen_socket is None:
            super().__init__((config.host, config.port), _Handler)
            return
        super().__init__(
            (config.host, config.port), _Handler, bind_and_activate=False
        )
        # Replace the unbound socket the base class made with the
        # inherited, already-listening one; skip bind/activate entirely.
        # Non-blocking accept matters with siblings: when the selector
        # wakes several workers for one connection, the losers get
        # BlockingIOError (swallowed by socketserver) and return to
        # their poll loop instead of blocking inside accept().
        listen_socket.setblocking(False)
        self.socket.close()
        self.socket = listen_socket
        self.server_address = listen_socket.getsockname()
        host, port = self.server_address[:2]
        self.server_name = host
        self.server_port = port

    @property
    def bound_port(self) -> int:
        return self.server_address[1]


def create_server(
    config: Optional[ServiceConfig] = None,
    listen_socket: Optional[socket_module.socket] = None,
) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port) without serving."""
    return ServiceHTTPServer(
        config if config is not None else ServiceConfig(),
        listen_socket=listen_socket,
    )


def run(
    config: Optional[ServiceConfig] = None,
    port_file: Optional[str] = None,
    install_signal_handlers: bool = True,
    listen_socket: Optional[socket_module.socket] = None,
) -> int:
    """Serve until SIGTERM/SIGINT; drain jobs; return the exit code."""
    server = create_server(config, listen_socket=listen_socket)
    host, port = server.server_address[0], server.bound_port
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(f"{port}\n")
    label = (
        f" [{config.worker_id}]"
        if config is not None and config.worker_id is not None
        else ""
    )
    print(
        f"repro service{label} listening on http://{host}:{port}",
        flush=True,
    )

    def _request_shutdown(signum, frame):
        print(
            f"received signal {signum}; shutting down gracefully",
            flush=True,
        )
        # shutdown() must not run on the serve_forever thread (it waits
        # for the serve loop, which is paused inside this handler).
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        summary = server.service.shutdown()
        server.server_close()
        print(
            f"shutdown complete: {summary['drained']} job(s) drained, "
            f"{summary['cancelled']} cancelled",
            flush=True,
        )
    return 0
