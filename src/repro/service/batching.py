"""Request coalescing over the vectorized sweep engine.

The daemon's hot path is ``POST /v1/sweep``: evaluate a cache's
components over a (Vth, Tox) grid.  The vectorized engine's cost is
dominated by per-call fixed work, not by grid size — evaluating a 50 %
larger grid is nearly free — so concurrent requests for the *same cache
structure* are coalesced: requests that land within a small window are
merged into one ``evaluate_grid`` call over the union of their axes, and
each request is answered from its own slice of the union tables.

Correctness rests on the grid being a cross product: every requested
(Vth, Tox) pair is by construction a point of (union Vth axis) x (union
Tox axis), so slicing the union tables with each request's axis indices
reproduces exactly what a solo evaluation would have returned.

Mechanics: the first request for a key becomes the *leader* — it waits
``window_seconds`` for followers to pile on, computes, and distributes.
Followers block on an event.  The union tables go through
:func:`repro.perf.table_cache.cached_tables` (the same process-wide
memo the optimiser endpoint uses), so a repeated union grid costs no
engine call at all; the ``sweep.evaluate_grid_calls`` counter is
incremented only inside the cache-miss callback and is therefore an
exact count of real engine work — the number ``/metrics`` consumers
divide by ``sweep.requests`` to observe coalescing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.cache.assignment import COMPONENT_NAMES
from repro.optimize.single_cache import _compute_component_tables
from repro.optimize.space import DesignSpace
from repro.perf.table_cache import cached_tables

from repro.service.metrics import MetricsRegistry, SIZE_BUCKETS

#: Ceiling on a union grid; beyond it the batch is computed per-request.
MAX_UNION_POINTS = 65_536


@dataclass
class _Entry:
    """One request waiting inside a batch."""

    vths: Tuple[float, ...]
    toxes: Tuple[float, ...]
    event: threading.Event = field(default_factory=threading.Event)
    tables: Optional[dict] = None
    space: Optional[DesignSpace] = None
    error: Optional[BaseException] = None


class SweepBatcher:
    """Coalesce concurrent same-model sweep requests into union grids."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        window_seconds: float = 0.005,
        max_batch: int = 64,
    ) -> None:
        self._metrics = metrics
        self._window = window_seconds
        self._max_batch = max_batch
        self._lock = threading.Lock()
        self._pending: Dict[str, List[_Entry]] = {}

    def _counted_compute(self, model, space):
        """The table-cache miss path — the only place engine work happens."""
        self._metrics.increment(
            "sweep.evaluate_grid_calls", len(COMPONENT_NAMES)
        )
        self._metrics.increment("sweep.engine_grid_evaluations")
        return _compute_component_tables(model, space)

    def _evaluate(self, model, space: DesignSpace):
        return cached_tables(model, space, self._counted_compute)

    def tables_for(
        self,
        key: str,
        model,
        vths: Tuple[float, ...],
        toxes_angstrom: Tuple[float, ...],
    ) -> Tuple[dict, DesignSpace]:
        """Return (component tables, space they were computed on).

        The returned space covers at least the requested axes; use
        :func:`slice_grid` to cut the request's own grid out of it.
        ``key`` identifies the cache structure (requests with different
        keys never share an engine call).
        """
        self._metrics.increment("sweep.requests")
        entry = _Entry(vths=vths, toxes=toxes_angstrom)
        my_batch: Optional[List[_Entry]] = None
        with self._lock:
            batch = self._pending.get(key)
            if batch is not None and len(batch) < self._max_batch:
                batch.append(entry)
            else:
                # Either no batch is open for this key or the open one is
                # full: this request leads a new batch (the full one stays
                # owned by its own leader, which detaches by identity).
                my_batch = [entry]
                self._pending[key] = my_batch
        if my_batch is None:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            self._metrics.increment("sweep.coalesced_requests")
            return entry.tables, entry.space
        if self._window > 0:
            time.sleep(self._window)
        with self._lock:
            if self._pending.get(key) is my_batch:
                del self._pending[key]
            batch = my_batch
        try:
            union_vths = tuple(
                sorted(set().union(*(member.vths for member in batch)))
            )
            union_toxes = tuple(
                sorted(
                    set().union(*(member.toxes for member in batch))
                )
            )
            if len(union_vths) * len(union_toxes) > MAX_UNION_POINTS:
                # Pathological mix: fall back to per-request evaluation
                # rather than building a gigantic union grid.
                self._metrics.increment("sweep.union_overflows")
                for member in batch:
                    member.space = DesignSpace.for_technology(
                        model.technology,
                        vth_values=member.vths,
                        tox_values_angstrom=member.toxes,
                    )
                    member.tables = self._evaluate(model, member.space)
            else:
                # The space's bounds come from the model's own node: a
                # non-65 nm request's axes live in that node's box and
                # would fail the 65 nm-default validation.
                space = DesignSpace.for_technology(
                    model.technology,
                    vth_values=union_vths,
                    tox_values_angstrom=union_toxes,
                )
                tables = self._evaluate(model, space)
                for member in batch:
                    member.tables = tables
                    member.space = space
        except BaseException as error:
            for member in batch:
                member.error = error
                member.event.set()
            raise
        self._metrics.increment("sweep.batches")
        self._metrics.observe(
            "sweep.batch_size", len(batch), boundaries=SIZE_BUCKETS
        )
        for member in batch:
            if member is not entry:
                member.event.set()
        return entry.tables, entry.space


def slice_grid(
    tables: dict,
    space: DesignSpace,
    vths: Tuple[float, ...],
    toxes_angstrom: Tuple[float, ...],
    component: str,
) -> Dict[str, np.ndarray]:
    """Cut one request's (Vth, Tox) grid out of union component tables.

    The component tables hold flat arrays in Vth-major order over
    ``space``; the result is three 2-D arrays of shape
    ``(len(vths), len(toxes_angstrom))``.
    """
    table = tables[component]
    n_vth = len(space.vth_values)
    n_tox = len(space.tox_values_angstrom)
    vth_index = np.searchsorted(np.asarray(space.vth_values), vths)
    tox_index = np.searchsorted(
        np.asarray(space.tox_values_angstrom), toxes_angstrom
    )
    if (vth_index >= n_vth).any() or (tox_index >= n_tox).any():
        raise ReproError(
            "requested axes are not contained in the union grid"
        )  # pragma: no cover - the union is built from the requests
    window = np.ix_(vth_index, tox_index)
    return {
        "delay": table.delays.reshape(n_vth, n_tox)[window],
        "leakage": table.leakages.reshape(n_vth, n_tox)[window],
        "energy": table.energies.reshape(n_vth, n_tox)[window],
    }
