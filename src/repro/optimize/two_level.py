"""Section 5: two-level cache leakage optimisation under an AMAT budget.

Two explorations, matching the paper's two experiments:

* :func:`explore_l2_sizes` — fix the L1 (size and default knobs), sweep
  the L2 capacity, and for every capacity find the L2 knob assignment
  (one pair, or a core/periphery split) that minimises L2 leakage while
  the *system* still meets the AMAT budget.  A bigger L2 has a lower
  local miss rate, so its knobs can be set more conservatively — but its
  cell population grows linearly, so past some capacity the leakage of
  sheer size outweighs the miss-rate benefit (the paper's non-monotone
  finding).
* :func:`explore_l1_sizes` — fix the L2, sweep the L1 capacity, and
  minimise *total* (L1 + L2) leakage under the same budget.  L1 local
  miss rates barely move between 4 K and 64 K, so the smaller, faster,
  less leaky L1 wins.

Both sweeps optionally take an associativity axis (``l1_assocs`` /
``l2_assocs``) and then emit one design point per (capacity, assoc)
combination; the defaults keep the paper's fixed reference shapes.
Non-reference associativities need a miss model that measured them —
:func:`repro.archsim.missmodel.calibrated_miss_surface` provides dense
curves for every shape the profile store covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import units
from repro.errors import OptimizationError
from repro.archsim.missmodel import MissRateModel
from repro.cache.assignment import Assignment, Knobs, knobs
from repro.cache.cache_model import CacheModel
from repro.cache.config import l1_config, l2_config
from repro.energy.dynamic import MainMemoryModel
from repro.optimize.schemes import Scheme
from repro.optimize.single_cache import enumerate_candidates
from repro.optimize.space import DesignSpace, default_space
from repro.technology.bptm import (
    TOX_MAX_A,
    TOX_MIN_A,
    VTH_MAX,
    VTH_MIN,
    Technology,
    bptm65,
)

#: The "default Vth and Tox" the paper assigns to the fixed L1 in the L2
#: exploration: mid-grid, mildly conservative (the 65 nm values; see
#: :func:`default_l1_knobs` for scaled nodes).
DEFAULT_L1_KNOBS = knobs(0.30, 12.0)

#: Default knob pair for a fixed L2 in the L1 exploration: conservative
#: (an L2 is latency-tolerant and leakage-dominated); 65 nm values, see
#: :func:`default_l2_knobs`.
DEFAULT_L2_KNOBS = knobs(0.40, 13.0)

#: The 65 nm design box the constants above sit in (for detecting it).
_ANCHOR_BOX = (VTH_MIN, VTH_MAX, TOX_MIN_A, TOX_MAX_A)


def _tech_box(technology: Optional[Technology]):
    if technology is None:
        return _ANCHOR_BOX
    return (
        technology.vth_min,
        technology.vth_max,
        technology.tox_min_a,
        technology.tox_max_a,
    )


def default_l1_knobs(technology: Optional[Technology] = None) -> Knobs:
    """Node-correct default L1 knobs: 1/3 up the Vth range, mid Tox.

    Exactly ``DEFAULT_L1_KNOBS`` (0.30 V, 12 Å) inside the 65 nm box;
    for a scaled node the same *relative* position inside that node's
    own design box.
    """
    box = _tech_box(technology)
    if box == _ANCHOR_BOX:
        return DEFAULT_L1_KNOBS
    vth_min, vth_max, tox_min_a, tox_max_a = box
    return knobs(
        vth_min + (vth_max - vth_min) / 3.0,
        tox_min_a + (tox_max_a - tox_min_a) * 0.5,
    )


def default_l2_knobs(technology: Optional[Technology] = None) -> Knobs:
    """Node-correct default L2 knobs: 2/3 up the Vth range, 3/4 Tox.

    Exactly ``DEFAULT_L2_KNOBS`` (0.40 V, 13 Å) inside the 65 nm box;
    conservative in every node's own design box.
    """
    box = _tech_box(technology)
    if box == _ANCHOR_BOX:
        return DEFAULT_L2_KNOBS
    vth_min, vth_max, tox_min_a, tox_max_a = box
    return knobs(
        vth_min + (vth_max - vth_min) * 2.0 / 3.0,
        tox_min_a + (tox_max_a - tox_min_a) * 0.75,
    )


@dataclass(frozen=True)
class TwoLevelDesignPoint:
    """One capacity point of an exploration sweep.

    ``varied_leakage`` is the leakage (W) of the cache being swept under
    its optimal assignment; ``total_leakage`` adds the fixed cache.
    ``feasible`` is False when no assignment met the AMAT budget at this
    capacity (the point is reported rather than dropped so curves show
    where the feasible region ends).
    """

    size_bytes: int
    feasible: bool
    amat: float
    varied_leakage: float
    total_leakage: float
    assignment: Optional[Assignment]
    l1_miss_rate: float
    l2_local_miss_rate: float
    associativity: Optional[int] = None

    @property
    def size_kb(self) -> float:
        return units.to_kb(self.size_bytes)


def _scheme_for(split: bool) -> Scheme:
    return Scheme.CELL_VS_PERIPHERY if split else Scheme.UNIFORM


def explore_l2_sizes(
    miss_model: MissRateModel,
    amat_budget: float,
    l2_sizes_kb: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    l1_size_kb: int = 16,
    l1_knobs: Optional[Knobs] = None,
    split: bool = False,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
    memory: MainMemoryModel = MainMemoryModel(),
    l2_assocs: Sequence[int] = (8,),
) -> List[TwoLevelDesignPoint]:
    """Sweep L2 capacity, optimising L2 knobs at an AMAT budget.

    Parameters
    ----------
    miss_model:
        Workload miss-rate curves.
    amat_budget:
        The AMAT (s) every design point must meet.
    split:
        False: one (Vth, Tox) pair for the whole L2 (the paper's first
        experiment).  True: separate pairs for the L2 cell array and its
        periphery (the second experiment).
    l2_assocs:
        Associativities to evaluate at every capacity; one design point
        per (size, assoc) combination.  Non-reference values require
        ``miss_model`` to carry the matching assoc curves.
    """
    technology = technology if technology is not None else bptm65()
    if space is None:
        space = default_space(technology=technology)
    if l1_knobs is None:
        l1_knobs = default_l1_knobs(technology)
    l1_model = CacheModel(l1_config(l1_size_kb), technology=technology)
    l1_eval = l1_model.uniform(l1_knobs)
    l1_time = l1_eval.access_time
    l1_leak = l1_eval.leakage_power
    m1 = miss_model.l1_miss_rate(l1_model.config.size_bytes)

    results: List[TwoLevelDesignPoint] = []
    for size_kb in l2_sizes_kb:
        for assoc in l2_assocs:
            l2_model = CacheModel(
                l2_config(size_kb, associativity=assoc), technology=technology
            )
            m2 = miss_model.l2_local_miss_rate(
                l2_model.config.size_bytes, associativity=assoc
            )
            assignments, delays, leaks = enumerate_candidates(
                l2_model, _scheme_for(split), space
            )
            amats = l1_time + m1 * (delays + m2 * memory.latency)
            feasible = amats <= amat_budget
            if not np.any(feasible):
                fastest = int(np.argmin(amats))
                results.append(
                    TwoLevelDesignPoint(
                        size_bytes=l2_model.config.size_bytes,
                        feasible=False,
                        amat=float(amats[fastest]),
                        varied_leakage=float(leaks[fastest]),
                        total_leakage=float(leaks[fastest] + l1_leak),
                        assignment=None,
                        l1_miss_rate=m1,
                        l2_local_miss_rate=m2,
                        associativity=assoc,
                    )
                )
                continue
            masked = np.where(feasible, leaks, np.inf)
            best = int(np.argmin(masked))
            results.append(
                TwoLevelDesignPoint(
                    size_bytes=l2_model.config.size_bytes,
                    feasible=True,
                    amat=float(amats[best]),
                    varied_leakage=float(leaks[best]),
                    total_leakage=float(leaks[best] + l1_leak),
                    assignment=assignments[best],
                    l1_miss_rate=m1,
                    l2_local_miss_rate=m2,
                    associativity=assoc,
                )
            )
    return results


def explore_l1_sizes(
    miss_model: MissRateModel,
    amat_budget: float,
    l1_sizes_kb: Sequence[int] = (4, 8, 16, 32, 64),
    l2_size_kb: int = 1024,
    l2_knobs: Optional[Knobs] = None,
    split: bool = True,
    technology: Optional[Technology] = None,
    space: Optional[DesignSpace] = None,
    memory: MainMemoryModel = MainMemoryModel(),
    l1_assocs: Sequence[int] = (2,),
) -> List[TwoLevelDesignPoint]:
    """Sweep L1 capacity under a fixed L2, minimising total leakage.

    The L1's own knobs are optimised per capacity (``split`` chooses
    Scheme II vs Scheme III freedom); the L2 stays at ``l2_knobs``.
    ``l1_assocs`` adds an associativity axis: one design point per
    (size, assoc) combination, using the miss model's assoc curves.
    """
    technology = technology if technology is not None else bptm65()
    if space is None:
        space = default_space(technology=technology)
    if l2_knobs is None:
        l2_knobs = default_l2_knobs(technology)
    l2_model = CacheModel(l2_config(l2_size_kb), technology=technology)
    l2_eval = l2_model.evaluate(
        Assignment.split(cell=l2_knobs, periphery=default_l1_knobs(technology))
    )
    l2_time = l2_eval.access_time
    l2_leak = l2_eval.leakage_power
    m2 = miss_model.l2_local_miss_rate(l2_model.config.size_bytes)

    results: List[TwoLevelDesignPoint] = []
    for size_kb in l1_sizes_kb:
        for assoc in l1_assocs:
            l1_model = CacheModel(
                l1_config(size_kb, associativity=assoc), technology=technology
            )
            m1 = miss_model.l1_miss_rate(
                l1_model.config.size_bytes, associativity=assoc
            )
            assignments, delays, leaks = enumerate_candidates(
                l1_model, _scheme_for(split), space
            )
            amats = delays + m1 * (l2_time + m2 * memory.latency)
            feasible = amats <= amat_budget
            if not np.any(feasible):
                fastest = int(np.argmin(amats))
                results.append(
                    TwoLevelDesignPoint(
                        size_bytes=l1_model.config.size_bytes,
                        feasible=False,
                        amat=float(amats[fastest]),
                        varied_leakage=float(leaks[fastest]),
                        total_leakage=float(leaks[fastest] + l2_leak),
                        assignment=None,
                        l1_miss_rate=m1,
                        l2_local_miss_rate=m2,
                        associativity=assoc,
                    )
                )
                continue
            masked = np.where(feasible, leaks, np.inf)
            best = int(np.argmin(masked))
            results.append(
                TwoLevelDesignPoint(
                    size_bytes=l1_model.config.size_bytes,
                    feasible=True,
                    amat=float(amats[best]),
                    varied_leakage=float(leaks[best]),
                    total_leakage=float(leaks[best] + l2_leak),
                    assignment=assignments[best],
                    l1_miss_rate=m1,
                    l2_local_miss_rate=m2,
                    associativity=assoc,
                )
            )
    return results


def best_point(points: Sequence[TwoLevelDesignPoint]) -> TwoLevelDesignPoint:
    """Return the feasible point with the least total leakage."""
    feasible = [point for point in points if point.feasible]
    if not feasible:
        raise OptimizationError("no feasible capacity in the sweep")
    return min(feasible, key=lambda point: point.total_leakage)
